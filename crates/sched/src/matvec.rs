//! Device-sharded H2 matvec: the three-pass algorithm executed level by
//! level over contiguous node chunks on the fabric, with per-device partial
//! outputs and explicit transfers.
//!
//! Phase mapping (§IV.A chunking, §IV.B communication):
//!
//! * **upsweep** — each level's nodes shard by [`h2_runtime::owner`]; a
//!   parent whose second child lives across a chunk boundary reads that
//!   child's `x̂` through a [`TransferKind::ChildGather`] (the matvec
//!   analogue of the line-24 sibling merge);
//! * **coupling** — rows shard per level; reading the `x̂_t` of an
//!   off-device partner is a [`TransferKind::OmegaFetch`], deduplicated per
//!   `(device, partner)` per level exactly like the construction's `Ω_b`
//!   fetches;
//! * **downsweep** — children shard per level; a child on a different
//!   device than its parent reads the parent's `ŷ` partial sum
//!   ([`TransferKind::PartialSum`]);
//! * **leaves** — leaf row ranges are disjoint, so the per-device partial
//!   outputs assemble into `y` without a reduction.
//!
//! ## Pipelined schedule
//!
//! On a [`h2_runtime::PipelineMode::Pipelined`] fabric the same arithmetic
//! runs under an overlapped schedule:
//!
//! * upsweep child-gather descriptors are **issued one level ahead** (their
//!   predicate depends only on basis shapes), so the virtual copies for
//!   level *l* run behind level *l+1*'s compute; the level-*l* jobs are
//!   gated on the tickets instead of a synchronous service;
//! * the **whole upsweep and the coupling phase form one chain scope**
//!   ([`DeviceFabric::chain_begin`]): jobs write the device-resident `x̂`
//!   slot table directly (no per-level host assembly), each level's flush
//!   records a dependency boundary instead of blocking, and level *l*'s
//!   jobs are gated on level *l+1*'s completion tickets across devices —
//!   per-device FIFO order covers the same-device edges;
//! * the **coupling products of all levels continue that scope**: every
//!   level's `x̂_t` fetches are prefetched up front, per-device jobs for
//!   every level are enqueued on the ordered queues, and the single real
//!   barrier ([`DeviceFabric::chain_end`]) closes the merged region — a
//!   device that finishes level *l* immediately starts level *l+1* instead
//!   of idling at a per-level join. The coupling phase closes as one epoch,
//!   so the makespan projection sees `max_dev Σ_levels` instead of
//!   `Σ_levels max_dev`;
//! * downsweep partial-sum descriptors are data-dependent (a parent's `ŷ`
//!   may be empty), so they are issued at their own level — still as
//!   prefetches the level's jobs are gated on.
//!
//! Per-device queue order plus per-level job granularity keeps the
//! floating-point accumulation order identical to the synchronous schedule,
//! so outputs are bit-identical — the property the pipeline tests assert.
//!
//! The global input `x` (and the stored blocks) are treated as
//! device-resident, consistent with the simulator treating the generator
//! and initial sample scatter as free — only `x̂`/`ŷ` movement counts.

use crate::exec::SimComparison;
use crate::fabric::{DeviceFabric, ExecReport};
use h2_dense::Mat;
use h2_matrix::H2Matrix;
use h2_runtime::multidev::cost;
use h2_runtime::DeviceModel;
use h2_runtime::{chunk_bounds, owner, PipelineMode, Precision, ShardJob, Transfer, TransferKind};
use std::collections::HashSet;

/// `y = K x` (or `Kᵀ x`) executed sharded on the fabric, in tree-permuted
/// coordinates. Numerically identical to [`H2Matrix::apply_permuted`] /
/// `apply_transpose_permuted` — the same [`h2_matrix::ApplyPhases`] kernels
/// run, only the scheduling differs (synchronous fork-join or the
/// pipelined overlap described in the module docs, depending on the
/// fabric's mode).
pub fn shard_matvec(fabric: &DeviceFabric, h2: &H2Matrix, x: &Mat, transpose: bool) -> Mat {
    let n = h2.n();
    assert_eq!(x.rows(), n, "shard_matvec: x rows");
    let d = x.cols();
    let devices = fabric.devices();
    let pipelined = fabric.mode() == PipelineMode::Pipelined;
    // Every x̂/ŷ block that crosses a device boundary ships at the fabric's
    // wire precision, and the staged copies occupy arena space at the same
    // width — the simulator uses the identical formulas, so byte totals
    // stay exactly equal at either width.
    let wire = fabric.wire();
    let ph = h2.apply_phases(transpose);
    let in_basis = ph.in_basis();
    let out_basis = ph.out_basis();
    let tree = &h2.tree;
    let nnodes = tree.nodes.len();
    let leaf_level = tree.leaf_level();

    // Child-gather descriptors of one upsweep level (predicate is basis
    // shapes only, so these can be issued a level ahead).
    let upsweep_transfers = |l: usize| -> Vec<Transfer> {
        let mut out = Vec::new();
        if l >= leaf_level {
            return out;
        }
        let ids: Vec<usize> = tree.level(l).collect();
        let nl = ids.len();
        let ncl = tree.level_len(l + 1);
        for (local, &id) in ids.iter().enumerate() {
            if in_basis[id].cols() == 0 {
                continue;
            }
            let dev = owner(local, nl, devices);
            let (c1, c2) = tree.nodes[id].children.unwrap();
            for c in [c1, c2] {
                let cdev = owner(tree.local_index(c), ncl, devices);
                if cdev != dev && in_basis[c].cols() > 0 {
                    out.push(Transfer {
                        src: cdev,
                        dst: dev,
                        bytes: cost::fetch_bytes_p(in_basis[c].cols(), d, wire),
                        kind: TransferKind::ChildGather,
                        prec: wire,
                    });
                }
            }
        }
        out
    };

    // Issue a transfer list as prefetches, grouping the tickets by
    // destination device so only the consuming device's queue gates on
    // each copy.
    let prefetch_by_dev = |ts: Vec<Transfer>| -> Vec<Vec<u64>> {
        let mut by = vec![Vec::new(); devices];
        for t in ts {
            let tk = fabric.prefetch_transfer(t);
            if tk != 0 {
                by[t.dst].push(tk);
            }
        }
        by
    };

    // ---- upward pass: x̂_τ, leaf level first ----
    //
    // `x̂` lives in one device-resident slot table the jobs write directly:
    // no host-side assembly between levels, so on the pipelined fabric the
    // whole upsweep *and* the coupling phase run in a single chain scope
    // (see [`DeviceFabric::chain_begin`]) — level `l`'s jobs are gated on
    // level `l+1`'s completion tickets across devices, the coupling jobs on
    // the last upsweep kernel's, and one barrier closes the merged scope.
    // Raw-slice access is sound for the same reason the construction chain
    // is: writers and readers of any slot are ordered by tickets (cross
    // device) or queue order (same device), and the host only touches the
    // table after the closing barrier.
    let mut xhat: Vec<Mat> = vec![Mat::zeros(0, 0); nnodes];
    let xhat_addr = xhat.as_mut_ptr() as usize;
    // Per-level id lists, hoisted so chained jobs' borrows outlive the
    // closing barrier.
    let level_ids: Vec<Vec<usize>> = (0..tree.nlevels())
        .map(|l| tree.level(l).collect())
        .collect();
    fabric.chain_begin();
    // Tickets pre-issued for the next level's gathers (pipelined only).
    let mut ahead: Option<(usize, Vec<Vec<u64>>)> = None;
    for l in (0..tree.nlevels()).rev() {
        let ids = &level_ids[l];
        let nl = ids.len();
        let bounds = chunk_bounds(nl, devices);
        let mut any = false;
        for (local, &id) in ids.iter().enumerate() {
            let v = &in_basis[id];
            if v.cols() == 0 {
                continue;
            }
            any = true;
            let dev = owner(local, nl, devices);
            fabric.record_flops(dev, cost::upsweep_flops(v.rows(), v.cols(), d));
            fabric.arena_charge(dev, v.cols() * d * wire.bytes());
        }
        let tickets: Vec<Vec<u64>> = if pipelined {
            match ahead.take() {
                Some((al, tk)) if al == l => tk,
                _ => prefetch_by_dev(upsweep_transfers(l)),
            }
        } else {
            for t in upsweep_transfers(l) {
                fabric.record_transfer(t);
            }
            vec![Vec::new(); devices]
        };
        if !any {
            continue;
        }
        {
            let ph_ref = &ph;
            for dev in 0..devices {
                let (b, e) = (bounds[dev], bounds[dev + 1]);
                if e > b {
                    fabric.record_launches(dev, 1);
                }
                let job: ShardJob<'_> = Box::new(move || {
                    // SAFETY: slot accesses are ordered by the chain's
                    // completion tickets / queue order; each job writes only
                    // its own chunk's ids and reads only completed children.
                    let xh =
                        unsafe { std::slice::from_raw_parts_mut(xhat_addr as *mut Mat, nnodes) };
                    for local in b..e {
                        let id = ids[local];
                        if let Some(m) = ph_ref.upsweep_node(id, x.rf(), xh) {
                            xh[id] = m;
                        }
                    }
                });
                // SAFETY: barriered by the flush below (synchronous) or the
                // chain scope's closing barrier before any borrow ends.
                unsafe { fabric.enqueue(dev, &tickets[dev], job) };
            }
            // Issue the next level's gathers while this level computes.
            if pipelined && l > 0 {
                ahead = Some((l - 1, prefetch_by_dev(upsweep_transfers(l - 1))));
            }
            fabric.flush();
        }
        fabric.close_epoch(&format!("matvec upsweep L{l}"));
    }

    // ---- coupling products per level: ŷ_s = Σ_t op(B) x̂_t ----
    let mut yhat: Vec<Mat> = vec![Mat::zeros(0, 0); nnodes];
    let yhat_addr = yhat.as_mut_ptr() as usize;
    if pipelined {
        // All levels continue the upsweep's chain scope: prefetch every
        // level's fetches up front, enqueue every level's per-device jobs on
        // the ordered queues — gated on the upsweep's completion tickets —
        // and let `chain_end` run the single real barrier for the merged
        // upsweep+coupling region. Levels only read the completed `xhat`,
        // and each level's output nodes are disjoint, so per-device FIFO
        // order reproduces the synchronous arithmetic exactly. The planning
        // below touches only basis shapes and the partition, never `xhat`
        // data, so it legally proceeds while the upsweep still drains.
        struct LevelPlan {
            ids: Vec<usize>,
            bounds: Vec<usize>,
            /// Fetch tickets grouped by destination device.
            tickets: Vec<Vec<u64>>,
            /// Per-device workspace bytes of this level (outputs + fetches).
            arena: Vec<usize>,
        }
        let mut plans: Vec<LevelPlan> = Vec::new();
        for l in 0..tree.nlevels() {
            let ids: Vec<usize> = tree.level(l).collect();
            let nl = ids.len();
            let bounds = chunk_bounds(nl, devices);
            let mut any = false;
            let mut fetched: HashSet<(usize, usize)> = HashSet::new();
            let mut tickets: Vec<Vec<u64>> = vec![Vec::new(); devices];
            let mut arena = vec![0usize; devices];
            for (local, &s) in ids.iter().enumerate() {
                if h2.partition.far_of[s].is_empty() {
                    continue;
                }
                any = true;
                let dev = owner(local, nl, devices);
                let ks = out_basis[s].cols();
                arena[dev] += ks * d * wire.bytes();
                for &t in &h2.partition.far_of[s] {
                    let kt = in_basis[t].cols();
                    if ks == 0 || kt == 0 {
                        continue;
                    }
                    fabric.record_flops(dev, cost::bsr_flops(ks, kt, d));
                    let tdev = owner(tree.local_index(t), nl, devices);
                    if tdev != dev && fetched.insert((dev, t)) {
                        let bytes = cost::fetch_bytes_p(kt, d, wire);
                        let tk = fabric.prefetch_transfer(Transfer {
                            src: tdev,
                            dst: dev,
                            bytes,
                            kind: TransferKind::OmegaFetch,
                            prec: wire,
                        });
                        if tk != 0 {
                            tickets[dev].push(tk);
                        }
                        arena[dev] += bytes as usize;
                    }
                }
            }
            if any {
                plans.push(LevelPlan {
                    ids,
                    bounds,
                    tickets,
                    arena,
                });
            }
        }
        // Double-buffered workspace discipline across the merged phase: a
        // device's level-l workspace is dead once its level-l job drains,
        // while level l+1's is already marshaled — so the live peak per
        // device is the largest *adjacent pair* of level workspaces, not
        // the sum over all levels.
        for dev in 0..devices {
            let peak = (0..plans.len())
                .map(|i| plans[i].arena[dev] + plans.get(i + 1).map(|p| p.arena[dev]).unwrap_or(0))
                .max()
                .unwrap_or(0);
            if peak > 0 {
                fabric.arena_charge(dev, peak);
            }
        }
        {
            let ph_ref = &ph;
            for plan in plans.iter() {
                for dev in 0..devices {
                    let (b, e) = (plan.bounds[dev], plan.bounds[dev + 1]);
                    if e > b {
                        fabric.record_launches(dev, 1);
                    }
                    let ids_ref = &plan.ids;
                    let job: ShardJob<'_> = Box::new(move || {
                        // SAFETY: `xhat` writers all precede these jobs in
                        // the chain (completion tickets / queue order), and
                        // each `yhat` slot has exactly one writer — the
                        // node's owning level/device job.
                        let xh =
                            unsafe { std::slice::from_raw_parts(xhat_addr as *const Mat, nnodes) };
                        let yh = unsafe {
                            std::slice::from_raw_parts_mut(yhat_addr as *mut Mat, nnodes)
                        };
                        for local in b..e {
                            let s = ids_ref[local];
                            if let Some(m) = ph_ref.coupling_node(s, xh, d) {
                                yh[s] = m;
                            }
                        }
                    });
                    // SAFETY: barriered by `chain_end` below before `plans`
                    // (and the `xhat`/`yhat` tables) drop.
                    unsafe { fabric.enqueue(dev, &plan.tickets[dev], job) };
                }
            }
            fabric.flush();
        }
        // One real barrier closes the merged upsweep+coupling region; every
        // host-side read of `xhat`/`yhat` sits after this point.
        fabric.chain_end();
        fabric.close_epoch("matvec coupling (overlapped)");
    } else {
        for l in 0..tree.nlevels() {
            let ids: Vec<usize> = tree.level(l).collect();
            let nl = ids.len();
            let bounds = chunk_bounds(nl, devices);
            let mut any = false;
            let mut fetched: HashSet<(usize, usize)> = HashSet::new();
            for (local, &s) in ids.iter().enumerate() {
                if h2.partition.far_of[s].is_empty() {
                    continue;
                }
                any = true;
                let dev = owner(local, nl, devices);
                let ks = out_basis[s].cols();
                fabric.arena_charge(dev, ks * d * wire.bytes());
                for &t in &h2.partition.far_of[s] {
                    let kt = in_basis[t].cols();
                    if ks == 0 || kt == 0 {
                        continue;
                    }
                    fabric.record_flops(dev, cost::bsr_flops(ks, kt, d));
                    let tdev = owner(tree.local_index(t), nl, devices);
                    if tdev != dev && fetched.insert((dev, t)) {
                        let bytes = cost::fetch_bytes_p(kt, d, wire);
                        fabric.record_transfer(Transfer {
                            src: tdev,
                            dst: dev,
                            bytes,
                            kind: TransferKind::OmegaFetch,
                            prec: wire,
                        });
                        fabric.arena_charge(dev, bytes as usize);
                    }
                }
            }
            if !any {
                continue;
            }
            let mut results: Vec<Vec<(usize, Mat)>> = (0..devices).map(|_| Vec::new()).collect();
            {
                let (xhat_ref, ids_ref, ph_ref) = (&xhat, &ids, &ph);
                let mut jobs: Vec<ShardJob<'_>> = Vec::with_capacity(devices);
                for (dev, slot) in results.iter_mut().enumerate() {
                    let (b, e) = (bounds[dev], bounds[dev + 1]);
                    if e > b {
                        fabric.record_launches(dev, 1);
                    }
                    jobs.push(Box::new(move || {
                        for local in b..e {
                            let s = ids_ref[local];
                            if let Some(m) = ph_ref.coupling_node(s, xhat_ref, d) {
                                slot.push((s, m));
                            }
                        }
                    }));
                }
                fabric.run_jobs(jobs);
            }
            for (s, m) in results.into_iter().flatten() {
                yhat[s] = m;
            }
            fabric.close_epoch(&format!("matvec coupling L{l}"));
        }
    }

    // ---- downward pass: children read the parent's ŷ partial sum ----
    for l in 0..leaf_level {
        let ids: Vec<usize> = tree.level(l + 1).collect();
        let nl = ids.len();
        let np = tree.level_len(l);
        let bounds = chunk_bounds(nl, devices);
        let mut any = false;
        let mut tickets: Vec<Vec<u64>> = vec![Vec::new(); devices];
        for (local, &child) in ids.iter().enumerate() {
            let Some(parent) = tree.nodes[child].parent else {
                continue;
            };
            if yhat[parent].rows() == 0
                || out_basis[parent].cols() == 0
                || out_basis[child].cols() == 0
            {
                continue;
            }
            any = true;
            let dev = owner(local, nl, devices);
            let kp = out_basis[parent].cols();
            fabric.record_flops(dev, cost::upsweep_flops(out_basis[child].cols(), kp, d));
            let pdev = owner(tree.local_index(parent), np, devices);
            if pdev != dev {
                let t = Transfer {
                    src: pdev,
                    dst: dev,
                    bytes: cost::fetch_bytes_p(kp, d, wire),
                    kind: TransferKind::PartialSum,
                    prec: wire,
                };
                if pipelined {
                    // Data-dependent predicate (the parent's partial sum
                    // must exist), so issue at this level — still an async
                    // prefetch the consuming device's jobs are gated on.
                    let tk = fabric.prefetch_transfer(t);
                    if tk != 0 {
                        tickets[dev].push(tk);
                    }
                } else {
                    fabric.record_transfer(t);
                }
            }
        }
        if !any {
            continue;
        }
        let mut results: Vec<Vec<(usize, Mat)>> = (0..devices).map(|_| Vec::new()).collect();
        {
            let (yhat_ref, ids_ref, ph_ref) = (&yhat, &ids, &ph);
            for (dev, slot) in results.iter_mut().enumerate() {
                let (b, e) = (bounds[dev], bounds[dev + 1]);
                if e > b {
                    fabric.record_launches(dev, 1);
                }
                let job: ShardJob<'_> = Box::new(move || {
                    for local in b..e {
                        let child = ids_ref[local];
                        if let Some(m) = ph_ref.downsweep_child(child, yhat_ref, d) {
                            slot.push((child, m));
                        }
                    }
                });
                // SAFETY: flushed below before `results`/`yhat` borrows end.
                unsafe { fabric.enqueue(dev, &tickets[dev], job) };
            }
            fabric.flush();
        }
        for (child, m) in results.into_iter().flatten() {
            if yhat[child].rows() == 0 {
                yhat[child] = m;
            } else {
                yhat[child].axpy(1.0, &m);
            }
        }
        fabric.close_epoch(&format!("matvec downsweep L{}", l + 1));
    }

    // ---- leaf expansion + dense near field: disjoint per-device partial
    // outputs, assembled without reduction ----
    let ids: Vec<usize> = tree.level(leaf_level).collect();
    let nl = ids.len();
    let bounds = chunk_bounds(nl, devices);
    for (local, &s) in ids.iter().enumerate() {
        let dev = owner(local, nl, devices);
        let (b, e) = tree.range(s);
        fabric.arena_charge(dev, (e - b) * d * wire.bytes());
        if yhat[s].rows() > 0 && out_basis[s].cols() > 0 {
            fabric.record_flops(dev, cost::upsweep_flops(e - b, out_basis[s].cols(), d));
        }
        for &t in &h2.partition.near_of[s] {
            let (tb, te) = tree.range(t);
            fabric.record_flops(dev, cost::bsr_flops(e - b, te - tb, d));
        }
    }
    let mut y = Mat::zeros(n, d);
    let mut results: Vec<Vec<(usize, Mat)>> = (0..devices).map(|_| Vec::new()).collect();
    {
        let (yhat_ref, ids_ref, ph_ref) = (&yhat, &ids, &ph);
        let mut jobs: Vec<ShardJob<'_>> = Vec::with_capacity(devices);
        for (dev, slot) in results.iter_mut().enumerate() {
            let (b, e) = (bounds[dev], bounds[dev + 1]);
            if e > b {
                fabric.record_launches(dev, 1);
            }
            jobs.push(Box::new(move || {
                for local in b..e {
                    let s = ids_ref[local];
                    slot.push(ph_ref.leaf_node(s, x.rf(), yhat_ref));
                }
            }));
        }
        fabric.run_jobs(jobs);
    }
    for (b, m) in results.into_iter().flatten() {
        y.view_mut(b, 0, m.rows(), d).copy_from(m.rf());
    }
    fabric.close_epoch("matvec leaves");
    y
}

/// [`shard_matvec`] with a fresh accounting scope: resets the fabric, runs,
/// and returns the result together with the execution report.
pub fn shard_matvec_with_report(
    fabric: &DeviceFabric,
    h2: &H2Matrix,
    x: &Mat,
    transpose: bool,
) -> (Mat, ExecReport) {
    fabric.reset();
    let y = shard_matvec(fabric, h2, x, transpose);
    (y, fabric.report("matvec tail"))
}

/// One modeled epoch of [`simulate_matvec`] — the closed-form counterpart
/// of a fabric [`crate::Epoch`].
#[derive(Clone, Debug)]
pub struct MatvecSimEpoch {
    pub label: String,
    /// Modeled batched-kernel flops per device.
    pub flops: Vec<f64>,
    /// Kernel launches per device.
    pub launches: Vec<usize>,
    /// Cross-device bytes issued during the epoch (at the wire precision).
    pub comm_bytes: u64,
    pub comm_messages: usize,
}

/// Closed-form prediction of one [`shard_matvec`] run: the same per-level
/// owner/chunk sharding, transfer predicates, byte formulas and epoch
/// boundaries evaluated from the matrix structure alone (basis shapes and
/// the partition), without executing any arithmetic.
///
/// The executor and this model walk the identical guards — `x̂`/`ŷ`
/// activity is derived structurally (`ŷ_s` is live iff the node has
/// far-field rank and either couples directly or inherits a live parent) —
/// so flop and byte totals must be *equal*, and
/// [`MatvecSim::makespan`] applies the same projection as
/// [`ExecReport::modeled_makespan`], making the makespan ratio 1 up to
/// floating-point rounding. [`compare_matvec_with_simulator`] packages the
/// cross-check.
#[derive(Clone, Debug)]
pub struct MatvecSim {
    pub devices: usize,
    pub mode: PipelineMode,
    /// Wire precision the byte formulas were evaluated at.
    pub wire: Precision,
    pub epochs: Vec<MatvecSimEpoch>,
}

impl MatvecSim {
    pub fn total_comm_bytes(&self) -> u64 {
        self.epochs.iter().map(|e| e.comm_bytes).sum()
    }

    pub fn total_comm_messages(&self) -> usize {
        self.epochs.iter().map(|e| e.comm_messages).sum()
    }

    pub fn total_flops(&self) -> f64 {
        self.epochs.iter().flat_map(|e| e.flops.iter()).sum()
    }

    /// Project the modeled epochs through a [`DeviceModel`] with the same
    /// formula as [`ExecReport::modeled_makespan`]
    /// ([`h2_runtime::combine_terms`]): per epoch the busiest device's
    /// compute, the communication, and the per-device launch overhead —
    /// summed when synchronous, mutually overlapped (max of the three) when
    /// pipelined, since job-level dependency chaining hides launch gaps
    /// behind whichever of compute or communication dominates; epochs are
    /// sequential.
    pub fn makespan(&self, model: &DeviceModel) -> f64 {
        self.epochs
            .iter()
            .map(|e| {
                let compute_max = e
                    .flops
                    .iter()
                    .map(|f| f / model.flops_per_sec)
                    .fold(0.0, f64::max);
                let comm = e.comm_bytes as f64 / model.link_bandwidth
                    + e.comm_messages as f64 * model.link_latency;
                let launches_max = e.launches.iter().copied().max().unwrap_or(0);
                h2_runtime::combine_terms(
                    self.mode,
                    compute_max,
                    comm,
                    launches_max as f64 * model.launch_overhead,
                )
            })
            .sum()
    }
}

/// Closed-form model of one sharded matvec (see [`MatvecSim`]).
///
/// `wire` must match the fabric's wire precision for byte totals to line
/// up; `mode` decides both the epoch structure (the pipelined coupling
/// phase merges all levels into one epoch, and upsweep gathers are issued
/// one level ahead) and the makespan projection.
pub fn simulate_matvec(
    h2: &H2Matrix,
    d: usize,
    devices: usize,
    mode: PipelineMode,
    wire: Precision,
    transpose: bool,
) -> MatvecSim {
    let pipelined = mode == PipelineMode::Pipelined;
    let ph = h2.apply_phases(transpose);
    let in_basis = ph.in_basis();
    let out_basis = ph.out_basis();
    let tree = &h2.tree;
    let nnodes = tree.nodes.len();
    let leaf_level = tree.leaf_level();
    let mut epochs: Vec<MatvecSimEpoch> = Vec::new();

    // Per-device launch pattern of one level: every device with a
    // non-empty chunk issues exactly one batched launch.
    let chunk_launches = |nl: usize| -> Vec<usize> {
        let bounds = chunk_bounds(nl, devices);
        (0..devices)
            .map(|dev| usize::from(bounds[dev + 1] > bounds[dev]))
            .collect()
    };

    // Child-gather traffic of one upsweep level (the executor's
    // `upsweep_transfers` predicate).
    let gathers = |l: usize| -> (u64, usize) {
        let (mut bytes, mut msgs) = (0u64, 0usize);
        if l >= leaf_level {
            return (bytes, msgs);
        }
        let ids: Vec<usize> = tree.level(l).collect();
        let nl = ids.len();
        let ncl = tree.level_len(l + 1);
        for (local, &id) in ids.iter().enumerate() {
            if in_basis[id].cols() == 0 {
                continue;
            }
            let dev = owner(local, nl, devices);
            let (c1, c2) = tree.nodes[id].children.unwrap();
            for c in [c1, c2] {
                let cdev = owner(tree.local_index(c), ncl, devices);
                if cdev != dev && in_basis[c].cols() > 0 {
                    bytes += cost::fetch_bytes_p(in_basis[c].cols(), d, wire);
                    msgs += 1;
                }
            }
        }
        (bytes, msgs)
    };

    // ---- upsweep, leaf level first. The pipelined executor issues level
    // l-1's gathers during level l's epoch window (issue-epoch tagging
    // charges them one epoch early); a level skipped for having no based
    // nodes drops the look-ahead, so the next level issues its own. ----
    let mut preissued: Option<usize> = None;
    for l in (0..tree.nlevels()).rev() {
        let ids: Vec<usize> = tree.level(l).collect();
        let nl = ids.len();
        let mut flops = vec![0.0; devices];
        let mut any = false;
        for (local, &id) in ids.iter().enumerate() {
            let v = &in_basis[id];
            if v.cols() == 0 {
                continue;
            }
            any = true;
            flops[owner(local, nl, devices)] += cost::upsweep_flops(v.rows(), v.cols(), d);
        }
        let (mut bytes, mut msgs) = (0u64, 0usize);
        if preissued.take() != Some(l) {
            let (b, m) = gathers(l);
            bytes += b;
            msgs += m;
        }
        if !any {
            continue;
        }
        if pipelined && l > 0 {
            let (b, m) = gathers(l - 1);
            bytes += b;
            msgs += m;
            preissued = Some(l - 1);
        }
        epochs.push(MatvecSimEpoch {
            label: format!("matvec upsweep L{l}"),
            flops,
            launches: chunk_launches(nl),
            comm_bytes: bytes,
            comm_messages: msgs,
        });
    }

    // ---- coupling: deduplicated partner fetches per (device, partner)
    // per level; one merged epoch when pipelined, one per level when
    // synchronous. ----
    struct LevelAcc {
        flops: Vec<f64>,
        launches: Vec<usize>,
        bytes: u64,
        msgs: usize,
        any: bool,
    }
    let couple_level = |l: usize| -> LevelAcc {
        let ids: Vec<usize> = tree.level(l).collect();
        let nl = ids.len();
        let mut acc = LevelAcc {
            flops: vec![0.0; devices],
            launches: vec![0; devices],
            bytes: 0,
            msgs: 0,
            any: false,
        };
        let mut fetched: HashSet<(usize, usize)> = HashSet::new();
        for (local, &s) in ids.iter().enumerate() {
            if h2.partition.far_of[s].is_empty() {
                continue;
            }
            acc.any = true;
            let dev = owner(local, nl, devices);
            let ks = out_basis[s].cols();
            for &t in &h2.partition.far_of[s] {
                let kt = in_basis[t].cols();
                if ks == 0 || kt == 0 {
                    continue;
                }
                acc.flops[dev] += cost::bsr_flops(ks, kt, d);
                let tdev = owner(tree.local_index(t), nl, devices);
                if tdev != dev && fetched.insert((dev, t)) {
                    acc.bytes += cost::fetch_bytes_p(kt, d, wire);
                    acc.msgs += 1;
                }
            }
        }
        if acc.any {
            acc.launches = chunk_launches(nl);
        }
        acc
    };
    if pipelined {
        let mut flops = vec![0.0; devices];
        let mut launches = vec![0usize; devices];
        let (mut bytes, mut msgs) = (0u64, 0usize);
        for l in 0..tree.nlevels() {
            let acc = couple_level(l);
            for dev in 0..devices {
                flops[dev] += acc.flops[dev];
                launches[dev] += acc.launches[dev];
            }
            bytes += acc.bytes;
            msgs += acc.msgs;
        }
        // The executor closes this epoch unconditionally.
        epochs.push(MatvecSimEpoch {
            label: "matvec coupling (overlapped)".to_string(),
            flops,
            launches,
            comm_bytes: bytes,
            comm_messages: msgs,
        });
    } else {
        for l in 0..tree.nlevels() {
            let acc = couple_level(l);
            if !acc.any {
                continue;
            }
            epochs.push(MatvecSimEpoch {
                label: format!("matvec coupling L{l}"),
                flops: acc.flops,
                launches: acc.launches,
                comm_bytes: acc.bytes,
                comm_messages: acc.msgs,
            });
        }
    }

    // ---- downsweep: structural ŷ activity. After coupling, ŷ_s is live
    // iff the node couples directly with positive rank; a child goes live
    // when its parent is live and both ranks are positive. ----
    let mut active: Vec<bool> = (0..nnodes)
        .map(|s| !h2.partition.far_of[s].is_empty() && out_basis[s].cols() > 0)
        .collect();
    for l in 0..leaf_level {
        let ids: Vec<usize> = tree.level(l + 1).collect();
        let nl = ids.len();
        let np = tree.level_len(l);
        let mut flops = vec![0.0; devices];
        let (mut bytes, mut msgs) = (0u64, 0usize);
        let mut any = false;
        let mut newly_live: Vec<usize> = Vec::new();
        for (local, &child) in ids.iter().enumerate() {
            let Some(parent) = tree.nodes[child].parent else {
                continue;
            };
            if !active[parent] || out_basis[parent].cols() == 0 || out_basis[child].cols() == 0 {
                continue;
            }
            any = true;
            let dev = owner(local, nl, devices);
            let kp = out_basis[parent].cols();
            flops[dev] += cost::upsweep_flops(out_basis[child].cols(), kp, d);
            let pdev = owner(tree.local_index(parent), np, devices);
            if pdev != dev {
                // Partial-sum reads are per child, not deduplicated.
                bytes += cost::fetch_bytes_p(kp, d, wire);
                msgs += 1;
            }
            newly_live.push(child);
        }
        if !any {
            continue;
        }
        for c in newly_live {
            active[c] = true;
        }
        epochs.push(MatvecSimEpoch {
            label: format!("matvec downsweep L{}", l + 1),
            flops,
            launches: chunk_launches(nl),
            comm_bytes: bytes,
            comm_messages: msgs,
        });
    }

    // ---- leaf expansion + dense near field (no transfers) ----
    let ids: Vec<usize> = tree.level(leaf_level).collect();
    let nl = ids.len();
    let mut flops = vec![0.0; devices];
    for (local, &s) in ids.iter().enumerate() {
        let dev = owner(local, nl, devices);
        let (b, e) = tree.range(s);
        if active[s] && out_basis[s].cols() > 0 {
            flops[dev] += cost::upsweep_flops(e - b, out_basis[s].cols(), d);
        }
        for &t in &h2.partition.near_of[s] {
            let (tb, te) = tree.range(t);
            flops[dev] += cost::bsr_flops(e - b, te - tb, d);
        }
    }
    epochs.push(MatvecSimEpoch {
        label: "matvec leaves".to_string(),
        flops,
        launches: chunk_launches(nl),
        comm_bytes: 0,
        comm_messages: 0,
    });

    MatvecSim {
        devices,
        mode,
        wire,
        epochs,
    }
}

/// Measured-vs-simulated comparison of one sharded matvec against
/// [`simulate_matvec`] — the matvec arm of the simulator-equivalence
/// suite. Byte and flop totals must match exactly; the makespan ratio is
/// 1 up to floating-point rounding, since both sides project the same
/// per-epoch counts through the same formula.
pub fn compare_matvec_with_simulator(
    report: &ExecReport,
    h2: &H2Matrix,
    d: usize,
    transpose: bool,
    model: &DeviceModel,
) -> SimComparison {
    let sim = simulate_matvec(h2, d, report.devices, report.mode, report.wire, transpose);
    SimComparison {
        measured_flop_equiv: report.flop_equiv(model.entry_cost),
        predicted_flop_equiv: sim.total_flops(),
        measured_bytes: report.total_comm_bytes(),
        predicted_bytes: sim.total_comm_bytes(),
        measured_makespan: report.modeled_makespan(model),
        predicted_makespan: sim.makespan(model),
    }
}
