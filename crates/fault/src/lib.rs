//! # h2-fault
//!
//! Deterministic fault injection and bounded recovery for the virtual
//! device fabric (`h2_sched::DeviceFabric`) and the construction level
//! loop (`h2_core::construct`).
//!
//! The fabric/simulator pair of PRs 2–8 assumes a perfect machine: every
//! `Transfer` is serviced, every prefetch ticket completes, every device
//! survives the run, and every kernel output is finite. This crate is the
//! resilience layer that drops those assumptions *without giving up the
//! trust invariant* — measured bytes (now including retry traffic) stay
//! exactly equal to an extended simulator prediction, and faulted runs
//! stay bit-identical to fault-free ones.
//!
//! ## Fault taxonomy
//!
//! A [`FaultPlan`] can inject five kinds of fault, each at a named site in
//! the executor:
//!
//! | kind | site | detection | recovery |
//! |---|---|---|---|
//! | [`FaultKind::TransferDrop`] | copy engine / inline transfer service | ticket deadline ([`FabricError::TransferTimeout`] when no plan bounds the retry) | re-issue the transfer after exponential backoff; bytes re-charged |
//! | [`FaultKind::TransferCorrupt`] | arena landing | per-transfer checksum ([`checksum`] over the payload) | re-issue after backoff; bytes re-charged |
//! | [`FaultKind::DelaySpike`] | copy engine service time | none needed (slow, not wrong) | absorbed by the flight-time account |
//! | [`FaultKind::DeviceFailStop`] | epoch close `k` | worker stops accepting work | surviving devices adopt the lost shard's nodes via the reshard map (`ShardDispatch::reshard_version`); sealed level checkpoints bound the rework |
//! | [`FaultKind::KernelPoison`] | `rand_mat` / `batchedGen` output | finite scan at the producing kernel | deterministic recompute of the poisoned columns/blocks |
//!
//! ## Determinism contract
//!
//! Every fault decision is a **pure function** of three values: the plan's
//! single `u64` seed, a *site fingerprint* (for transfers,
//! [`transfer_fingerprint`] over the transfer's `(kind, src, dst, bytes,
//! wire-precision)` descriptor), and the fingerprint's *occurrence index*
//! (how many transfers with that exact fingerprint were issued before this
//! one, tracked by an [`OccurrenceMap`]). Nothing depends on wall-clock
//! time, thread interleaving, or issue order across distinct fingerprints.
//! Because the fabric issues a deterministic *multiset* of transfers for a
//! given schedule (pinned by the equivalence tests), the multiset of
//! `(fingerprint, occurrence)` pairs — and therefore the multiset of
//! injected faults and charged retries — is identical between the
//! synchronous and pipelined executors *and* reproducible by a closed-form
//! enumeration of the same transfers (`h2_runtime::transfer_census`).
//! That is what lets the extended simulator predict faulted byte totals
//! exactly.
//!
//! ## Recovery invariants
//!
//! 1. **Bounded**: an attempt sequence for one transfer fails at most
//!    [`FaultPlan::max_retries`] times — the final attempt always succeeds
//!    — so recovery cost per site is bounded and enumerable in advance.
//! 2. **Charged**: every failed attempt re-ships the transfer's bytes and
//!    pays detection latency (deadline or checksum) plus exponential
//!    backoff; all of it lands in the same epoch accounts as first-try
//!    traffic, so `ExecReport::total_comm_bytes` needs no special cases.
//! 3. **Bit-identical**: recovery never changes *values*. Poisoned kernel
//!    outputs are recomputed from the same per-column/per-block seeds;
//!    a resharded run executes the same job closures over the same host
//!    data on a different worker thread; retried transfers move descriptor
//!    bytes, not numerics. A chaos sweep therefore reproduces the
//!    fault-free result exactly (`sched/tests/faults.rs`).

use std::fmt;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Seed mixing
// ---------------------------------------------------------------------------

/// SplitMix64 finalizer: the diffusion primitive behind every fault
/// decision. Good avalanche, no state — ideal for counter-based
/// (site, occurrence)-keyed draws, the CPU analogue of cuRAND's
/// counter-based generators already used by `rand_mat`.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combine two words into one well-mixed word (order-sensitive).
pub fn mix(a: u64, b: u64) -> u64 {
    splitmix64(a ^ splitmix64(b))
}

/// Map a mixed word onto `[0, 1)` with 53 bits of precision.
fn to_unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Fingerprint of a transfer descriptor: the fault site identity for
/// everything the copy engine services. Two transfers with the same kind,
/// endpoints, byte count, and wire precision share a fingerprint and are
/// distinguished by their occurrence index.
pub fn transfer_fingerprint(kind: u8, src: u64, dst: u64, bytes: u64, prec_bytes: u8) -> u64 {
    let mut h = splitmix64(0xFA17_5EED ^ kind as u64);
    h = mix(h, src);
    h = mix(h, dst);
    h = mix(h, bytes);
    mix(h, prec_bytes as u64)
}

/// Fingerprint of a kernel-output poison site (`salt` names the kernel,
/// `a`/`b` the entry coordinates — e.g. column index, block index).
pub fn poison_site(salt: u64, a: u64, b: u64) -> u64 {
    mix(mix(splitmix64(0x0150_0150 ^ salt), a), b)
}

// ---------------------------------------------------------------------------
// Fault kinds and plans
// ---------------------------------------------------------------------------

/// The injectable fault taxonomy (see the module docs for the site /
/// detection / recovery triple of each kind).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A transfer attempt is silently lost; detected at its ticket deadline.
    TransferDrop,
    /// A transfer attempt lands with a flipped payload bit; detected by the
    /// checksum verified at arena landing.
    TransferCorrupt,
    /// The copy engine services an attempt pathologically slowly.
    DelaySpike,
    /// A device stops accepting work after epoch `k` closes.
    DeviceFailStop,
    /// A kernel writes NaN/Inf into part of its output.
    KernelPoison,
}

impl FaultKind {
    /// Stable lowercase name used in traces and bench rows.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::TransferDrop => "transfer-drop",
            FaultKind::TransferCorrupt => "transfer-corrupt",
            FaultKind::DelaySpike => "delay-spike",
            FaultKind::DeviceFailStop => "device-fail-stop",
            FaultKind::KernelPoison => "kernel-poison",
        }
    }

    /// All kinds, in taxonomy order — the chaos sweep iterates this.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::TransferDrop,
        FaultKind::TransferCorrupt,
        FaultKind::DelaySpike,
        FaultKind::DeviceFailStop,
        FaultKind::KernelPoison,
    ];
}

/// A scheduled device fail-stop: logical `device` stops accepting work
/// once epoch index `epoch` closes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FailStop {
    /// Logical device index that dies.
    pub device: usize,
    /// Epoch index after whose close the device is lost.
    pub epoch: usize,
}

/// A deterministic seeded fault-injection plan.
///
/// All rates are per-attempt probabilities evaluated by pure seeded draws
/// (see the module-level determinism contract); durations parameterize the
/// *modeled* latency cost of detection and backoff, charged to the same
/// virtual-time accounts as ordinary transfer flight.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// The single seed every decision derives from.
    pub seed: u64,
    /// Per-attempt probability that a transfer is silently dropped.
    pub drop_rate: f64,
    /// Per-attempt probability that a transfer lands corrupted.
    pub corrupt_rate: f64,
    /// Per-transfer probability of a copy-engine delay spike.
    pub spike_rate: f64,
    /// Duration of one delay spike.
    pub spike: Duration,
    /// Scheduled device loss, if any.
    pub fail_stop: Option<FailStop>,
    /// Per-site probability that a kernel output is poisoned.
    pub poison_rate: f64,
    /// Maximum failed attempts per transfer; attempt `max_retries` always
    /// succeeds, bounding recovery.
    pub max_retries: u32,
    /// Base of the exponential backoff: retry `a` waits `base * 2^a`.
    pub backoff_base: Duration,
    /// Modeled deadline after which a dropped attempt is detected.
    pub detect_timeout: Duration,
}

const SALT_DROP: u64 = 0xD80D_D80D;
const SALT_CORRUPT: u64 = 0xC0DE_C0DE;
const SALT_SPIKE: u64 = 0x5B1C_E5B1;
const SALT_POISON: u64 = 0xBAD0_F00D;

impl FaultPlan {
    /// A quiescent plan (all rates zero) with sane recovery parameters.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_rate: 0.0,
            corrupt_rate: 0.0,
            spike_rate: 0.0,
            spike: Duration::from_micros(300),
            fail_stop: None,
            poison_rate: 0.0,
            max_retries: 4,
            backoff_base: Duration::from_micros(20),
            detect_timeout: Duration::from_micros(100),
        }
    }

    /// Set the per-attempt transfer-drop rate.
    pub fn with_drops(mut self, rate: f64) -> Self {
        self.drop_rate = rate;
        self
    }

    /// Set the per-attempt transfer-corruption rate.
    pub fn with_corruption(mut self, rate: f64) -> Self {
        self.corrupt_rate = rate;
        self
    }

    /// Set the per-transfer delay-spike rate.
    pub fn with_spikes(mut self, rate: f64) -> Self {
        self.spike_rate = rate;
        self
    }

    /// Schedule a device fail-stop after epoch `epoch` closes.
    pub fn with_fail_stop(mut self, device: usize, epoch: usize) -> Self {
        self.fail_stop = Some(FailStop { device, epoch });
        self
    }

    /// Set the kernel-output poison rate.
    pub fn with_poison(mut self, rate: f64) -> Self {
        self.poison_rate = rate;
        self
    }

    /// Set the retry bound.
    pub fn with_max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// The canonical single-kind chaos plan used by the sweep grid: one
    /// fault kind at a rate high enough to fire on small problems, all
    /// other kinds quiet.
    pub fn chaos(seed: u64, kind: FaultKind) -> Self {
        let p = Self::new(seed);
        match kind {
            FaultKind::TransferDrop => p.with_drops(0.2),
            FaultKind::TransferCorrupt => p.with_corruption(0.2),
            FaultKind::DelaySpike => p.with_spikes(0.3),
            FaultKind::DeviceFailStop => p.with_fail_stop(1, 0),
            FaultKind::KernelPoison => p.with_poison(0.15),
        }
    }

    /// Whether any fault kind can fire under this plan.
    pub fn is_active(&self) -> bool {
        self.drop_rate > 0.0
            || self.corrupt_rate > 0.0
            || self.spike_rate > 0.0
            || self.fail_stop.is_some()
            || self.poison_rate > 0.0
    }

    fn unit(&self, salt: u64, fp: u64, occ: u32, attempt: u32) -> f64 {
        let h = mix(
            self.seed ^ salt,
            mix(fp, ((occ as u64) << 32) | attempt as u64),
        );
        to_unit(h)
    }

    /// Does attempt `attempt` (0 = the original issue) of occurrence `occ`
    /// of transfer site `fp` fail, and how? Attempt `max_retries` always
    /// succeeds — the bounded-recovery guarantee.
    pub fn attempt_failure(&self, fp: u64, occ: u32, attempt: u32) -> Option<FaultKind> {
        if attempt >= self.max_retries {
            return None;
        }
        if self.drop_rate > 0.0 && self.unit(SALT_DROP, fp, occ, attempt) < self.drop_rate {
            return Some(FaultKind::TransferDrop);
        }
        if self.corrupt_rate > 0.0 && self.unit(SALT_CORRUPT, fp, occ, attempt) < self.corrupt_rate
        {
            return Some(FaultKind::TransferCorrupt);
        }
        None
    }

    /// Number of failed attempts (= retries charged) for `(fp, occ)`.
    pub fn failed_attempts(&self, fp: u64, occ: u32) -> u32 {
        let mut a = 0;
        while self.attempt_failure(fp, occ, a).is_some() {
            a += 1;
        }
        a
    }

    /// Extra bytes the retries of `(fp, occ)` re-ship for a transfer of
    /// `bytes` — the closed-form mirror the extended simulator sums.
    pub fn retry_bytes(&self, fp: u64, occ: u32, bytes: u64) -> u64 {
        self.failed_attempts(fp, occ) as u64 * bytes
    }

    /// Copy-engine delay spike for `(fp, occ)`, if one fires.
    pub fn delay_spike(&self, fp: u64, occ: u32) -> Option<Duration> {
        (self.spike_rate > 0.0 && self.unit(SALT_SPIKE, fp, occ, 0) < self.spike_rate)
            .then_some(self.spike)
    }

    /// Exponential backoff before retrying after failed attempt `attempt`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        self.backoff_base * 2u32.saturating_pow(attempt.min(16))
    }

    /// Does occurrence `occ` of kernel-output site `site` get poisoned?
    pub fn poison_hit(&self, site: u64, occ: u32) -> bool {
        self.poison_rate > 0.0 && self.unit(SALT_POISON, site, occ, 0) < self.poison_rate
    }
}

// ---------------------------------------------------------------------------
// Occurrence tracking
// ---------------------------------------------------------------------------

/// Per-fingerprint occurrence counters — the replay clock of the
/// determinism contract. The executor and the extended simulator each walk
/// their transfer multiset through one of these; identical multisets give
/// identical `(fingerprint, occurrence)` streams.
#[derive(Debug, Default)]
pub struct OccurrenceMap {
    counts: std::collections::HashMap<u64, u32>,
}

impl OccurrenceMap {
    /// Fresh map with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Return the occurrence index for the next event at `fp` and advance.
    pub fn next(&mut self, fp: u64) -> u32 {
        let c = self.counts.entry(fp).or_insert(0);
        let occ = *c;
        *c += 1;
        occ
    }

    /// Roll back one occurrence of `fp` (a canceled speculative transfer
    /// never happened, so its fault draw must be re-usable).
    pub fn unwind(&mut self, fp: u64) {
        if let Some(c) = self.counts.get_mut(&fp) {
            *c = c.saturating_sub(1);
        }
    }

    /// Reset all counters.
    pub fn clear(&mut self) {
        self.counts.clear();
    }
}

// ---------------------------------------------------------------------------
// Checksums
// ---------------------------------------------------------------------------

/// Fletcher-style 64-bit checksum over a byte payload — the per-transfer
/// integrity check verified at arena landing.
pub fn checksum(data: &[u8]) -> u64 {
    let (mut a, mut b) = (1u64, 0u64);
    for chunk in data.chunks(4) {
        let mut w = 0u64;
        for (i, &byte) in chunk.iter().enumerate() {
            w |= (byte as u64) << (8 * i);
        }
        a = (a + w) % 0xFFFF_FFFB;
        b = (b + a) % 0xFFFF_FFFB;
    }
    (b << 32) | a
}

/// The fabric moves descriptors, not payloads, so corruption detection is
/// exercised on a synthetic 64-byte payload derived from the transfer
/// fingerprint — deterministic, and enough to prove the checksum catches
/// every injected bit flip.
pub fn synthetic_payload(fp: u64) -> [u8; 64] {
    let mut out = [0u8; 64];
    let mut h = fp;
    for word in out.chunks_mut(8) {
        h = splitmix64(h);
        word.copy_from_slice(&h.to_le_bytes());
    }
    out
}

/// Flip one payload bit chosen deterministically from `fp`.
pub fn corrupt_bit(buf: &mut [u8], fp: u64) {
    if buf.is_empty() {
        return;
    }
    let bit = (splitmix64(fp ^ 0xF11B) as usize) % (buf.len() * 8);
    buf[bit / 8] ^= 1 << (bit % 8);
}

/// Emulate one arena landing of transfer site `fp`: rebuild the payload,
/// optionally corrupt it, and return whether the checksum verifies.
pub fn verify_landing(fp: u64, corrupted: bool) -> bool {
    let good = synthetic_payload(fp);
    let want = checksum(&good);
    if !corrupted {
        return checksum(&good) == want;
    }
    let mut bad = good;
    corrupt_bit(&mut bad, fp);
    checksum(&bad) == want
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Typed fabric failure surfaced when detection fires but recovery is not
/// possible (no plan to bound retries, or a genuinely hung ticket).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FabricError {
    /// A ticket missed its deadline — a silent hang turned into a type.
    TransferTimeout {
        /// The incomplete ticket.
        ticket: u64,
        /// How long the waiter had been blocked, in nanoseconds.
        waited_nanos: u64,
    },
    /// A device fail-stopped and its shard was adopted by survivors.
    DeviceLost {
        /// The lost logical device.
        device: usize,
        /// The epoch index after which it was lost.
        epoch: usize,
    },
    /// A queued job panicked on its worker thread.
    JobPanic {
        /// The logical device whose job panicked.
        device: usize,
    },
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::TransferTimeout {
                ticket,
                waited_nanos,
            } => write!(
                f,
                "transfer timeout: ticket {ticket} incomplete after {waited_nanos} ns"
            ),
            FabricError::DeviceLost { device, epoch } => {
                write!(f, "device {device} lost after epoch {epoch}")
            }
            FabricError::JobPanic { device } => write!(f, "job panicked on device {device}"),
        }
    }
}

impl std::error::Error for FabricError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_and_seeded() {
        let p = FaultPlan::new(42).with_drops(0.3).with_corruption(0.1);
        let fp = transfer_fingerprint(0, 1, 2, 4096, 8);
        for occ in 0..16 {
            assert_eq!(p.failed_attempts(fp, occ), p.failed_attempts(fp, occ));
        }
        let q = FaultPlan::new(43).with_drops(0.3).with_corruption(0.1);
        let differs = (0..64).any(|occ| p.failed_attempts(fp, occ) != q.failed_attempts(fp, occ));
        assert!(differs, "different seeds must give different fault streams");
    }

    #[test]
    fn retries_are_bounded() {
        // Even at rate 1.0 the attempt sequence succeeds at max_retries.
        let p = FaultPlan::new(7).with_drops(1.0).with_max_retries(3);
        let fp = transfer_fingerprint(1, 0, 3, 128, 4);
        for occ in 0..8 {
            assert_eq!(p.failed_attempts(fp, occ), 3);
            assert_eq!(p.attempt_failure(fp, occ, 3), None);
        }
        assert_eq!(p.retry_bytes(fp, 0, 100), 300);
    }

    #[test]
    fn rates_land_in_expected_band() {
        let p = FaultPlan::new(11).with_drops(0.25);
        let mut hits = 0;
        for i in 0..4000u64 {
            let fp = transfer_fingerprint(0, i % 4, (i + 1) % 4, 1000 + i, 8);
            if p.attempt_failure(fp, 0, 0).is_some() {
                hits += 1;
            }
        }
        let rate = hits as f64 / 4000.0;
        assert!((0.2..0.3).contains(&rate), "empirical drop rate {rate}");
    }

    #[test]
    fn checksum_catches_every_injected_flip() {
        for i in 0..256u64 {
            let fp = splitmix64(i);
            assert!(verify_landing(fp, false), "clean landing must verify");
            assert!(!verify_landing(fp, true), "corrupt landing must not");
        }
    }

    #[test]
    fn occurrence_map_advances_and_unwinds() {
        let mut m = OccurrenceMap::new();
        assert_eq!(m.next(5), 0);
        assert_eq!(m.next(5), 1);
        m.unwind(5);
        assert_eq!(m.next(5), 1);
        assert_eq!(m.next(9), 0);
        m.clear();
        assert_eq!(m.next(5), 0);
    }

    #[test]
    fn backoff_is_exponential() {
        let p = FaultPlan::new(0);
        assert_eq!(p.backoff(1), 2 * p.backoff(0));
        assert_eq!(p.backoff(3), 8 * p.backoff(0));
    }

    #[test]
    fn chaos_presets_activate_exactly_one_kind() {
        for kind in FaultKind::ALL {
            let p = FaultPlan::chaos(1, kind);
            assert!(p.is_active(), "{} preset inactive", kind.name());
        }
        assert!(!FaultPlan::new(1).is_active());
    }
}
