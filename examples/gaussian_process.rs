//! Gaussian-process regression with an H2-compressed covariance matrix —
//! the spatial-statistics motivation from the paper's introduction
//! (covariance matrices of a 3-D Gaussian spatial process, kernel ridge
//! regression / GP posterior means).
//!
//! The posterior mean solve `(K + σ²I) α = y` runs CG with the O(N) H2
//! matvec; predictions use kernel entry evaluation.
//!
//! ```sh
//! cargo run --release --example gaussian_process
//! ```

use h2sketch::dense::{LinOp, Mat};
use h2sketch::kernels::{ExponentialKernel, Kernel, KernelMatrix};
use h2sketch::matrix::{direct_construct, DirectConfig, H2Matrix};
use h2sketch::runtime::Runtime;
use h2sketch::sketch::{sketch_construct, SketchConfig};
use h2sketch::tree::{dist, uniform_cube, Admissibility, ClusterTree, Partition};
use std::sync::Arc;

/// The latent function we pretend to observe.
fn truth(p: &[f64; 3]) -> f64 {
    (3.0 * p[0]).sin() + (2.0 * p[1]).cos() + p[2] * p[2]
}

fn main() {
    let n = 8192;
    let noise = 1e-2;
    let points = uniform_cube(n, 41);
    let tree = Arc::new(ClusterTree::build(&points, 64));
    let partition = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
    let kern = ExponentialKernel { l: 0.2 };
    let kernel = KernelMatrix::new(kern, tree.points.clone());

    // Compress the covariance with the sketching construction.
    let reference = direct_construct(
        &kernel,
        tree.clone(),
        partition.clone(),
        &DirectConfig {
            tol: 1e-9,
            ..Default::default()
        },
    );
    let rt = Runtime::parallel();
    let cfg = SketchConfig {
        tol: 1e-6,
        initial_samples: 128,
        ..Default::default()
    };
    let (h2, stats) = sketch_construct(&reference, &kernel, tree.clone(), partition, &rt, &cfg);
    println!(
        "covariance compressed: {:.1} MiB, {} samples, {:.3}s",
        h2.memory_bytes() as f64 / (1 << 20) as f64,
        stats.total_samples,
        stats.elapsed.as_secs_f64()
    );

    // Observations in tree order (y_i = f(x_i) + noise-free here; the jitter
    // goes into the solve).
    let y: Vec<f64> = tree.points.iter().map(truth).collect();

    // Solve (K + σ² I) α = y with CG on the compressed operator.
    let alpha = cg_regularized(&h2, &y, noise, 400, 1e-10);

    // Predict at fresh points: mean(x*) = Σ_i k(x*, x_i) α_i.
    let test_points = uniform_cube(500, 42);
    let mut mse = 0.0;
    let mut var0 = 0.0;
    let mean_y: f64 = y.iter().sum::<f64>() / n as f64;
    for tp in &test_points {
        let mut pred = 0.0;
        for (i, xi) in tree.points.iter().enumerate() {
            let r = dist(tp, xi);
            let k = if r == 0.0 { 1.0 } else { kern.eval_r(r) };
            pred += k * alpha[i];
        }
        let t = truth(tp);
        mse += (pred - t) * (pred - t);
        var0 += (t - mean_y) * (t - mean_y);
    }
    let r2 = 1.0 - mse / var0;
    println!("GP posterior mean on 500 held-out points: R² = {r2:.4}");
    assert!(r2 > 0.95, "GP regression should fit the smooth truth well");
}

/// CG for (A + σ² I) x = b using the H2 matvec.
fn cg_regularized(a: &H2Matrix, b: &[f64], sigma2: f64, max_iters: usize, rtol: f64) -> Vec<f64> {
    let n = b.len();
    let apply = |v: &[f64]| -> Vec<f64> {
        let vm = Mat::from_vec(n, 1, v.to_vec());
        let mut av = Mat::zeros(n, 1);
        a.apply(vm.rf(), av.rm());
        (0..n).map(|i| av[(i, 0)] + sigma2 * v[i]).collect()
    };
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut rs: f64 = r.iter().map(|v| v * v).sum();
    let rs0 = rs;
    for it in 0..max_iters {
        let ap = apply(&p);
        let denom: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
        let alpha = rs / denom;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rs_new: f64 = r.iter().map(|v| v * v).sum();
        if rs_new.sqrt() < rtol * rs0.sqrt() {
            println!("CG converged in {} iterations", it + 1);
            break;
        }
        let beta = rs_new / rs;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs = rs_new;
    }
    x
}
