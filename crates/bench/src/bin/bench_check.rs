//! Bench-envelope validator for CI: re-checks the invariants the bench
//! binaries assert at generation time from the *outside*, against the
//! checked-in (or freshly regenerated) `BENCH_*.json` envelopes — so a
//! change that regresses the modeled-makespan story or breaks the
//! bytes-equal-simulator contract fails CI even if nobody re-reads the
//! numbers.
//!
//! Checks per envelope (each file is optional; pass the ones to check):
//!
//! * **all** — the file parses ([`h2_obs::Json::parse`]), carries the
//!   unified `meta.schema == 2` envelope, and names the expected bench;
//! * **`--fabric`** — every row reconciles with the cost model
//!   (`bytes_equal`, `sim_ratio` within the `--band` window), the
//!   pipelined schedule never loses to the synchronous one on the same
//!   counters, `headline_speedup_at_4plus` clears `--headline-floor`,
//!   (when present) the f32 wire ships at most ~half the bytes, and
//!   (when present, i.e. the bench ran with `--faults`) every
//!   `resilience` row is `bytes_equal` against the *extended* simulator
//!   with a finite faulted/clean makespan ratio at or above 1.0;
//! * **`--solve`** — ULV residuals stay below 1e-10 and the batched vs
//!   per-node schedule gap below 1e-13, ULV preconditioning never takes
//!   more iterations than the unpreconditioned solve, every sweep row is
//!   `bytes_equal` with its measured/simulated makespan ratio in the
//!   band and its pipelined makespan no worse than synchronous, and every
//!   `krylov_residency` row shows resident vector traffic strictly below
//!   staged;
//! * **`--kernels`** — the packed GEMM beats the naive kernel at every
//!   size ≥ `--gemm-floor-n` and all throughput numbers are positive;
//! * **`--serve`** — every blocked-sweep amortization row is
//!   `bytes_equal` with pipelined never losing to synchronous, the
//!   amortized per-RHS makespan at k = 32 is strictly below k = 1 for
//!   every device count, `amortized_speedup_at_k32_d4` clears
//!   `--serve-floor`, and the serve_sim workload coalesced (batches <
//!   requests), hit the cache at least once, and matched the simulator's
//!   byte prediction on every batch.
//!
//! Usage: `bench_check [--fabric BENCH_fabric.json]
//! [--solve BENCH_solve.json] [--kernels BENCH_kernels.json]
//! [--serve BENCH_serve.json] [--headline-floor 1.25] [--band 2.0]
//! [--gemm-floor-n 256] [--serve-floor 4.0]`
//!
//! Exits non-zero with a diagnostic on the first violation.

use h2_bench::Args;
use h2_obs::Json;

fn fail(msg: &str) -> ! {
    eprintln!("bench_check: FAIL: {msg}");
    std::process::exit(1);
}

/// Sync-vs-pipelined comparisons project *different runs'* counters
/// (identical flop/byte totals, launch counts may legitimately shrink
/// under chaining), so allow one part in 10^9 of float slack.
const REL_SLACK: f64 = 1.0 + 1e-9;

fn load(path: &str, bench: &str) -> Json {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let json =
        Json::parse(&text).unwrap_or_else(|e| fail(&format!("{path} is not valid JSON: {e}")));
    let Some(meta) = json.get("meta") else {
        fail(&format!("{path}: missing meta envelope"));
    };
    if meta.get("schema").and_then(|s| s.as_u64()) != Some(2) {
        fail(&format!("{path}: meta.schema != 2"));
    }
    match meta.get("bench").and_then(|b| b.as_str()) {
        Some(b) if b == bench => {}
        other => fail(&format!("{path}: meta.bench {other:?}, expected {bench:?}")),
    }
    json
}

fn num(row: &Json, key: &str, ctx: &str) -> f64 {
    row.get(key)
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| fail(&format!("{ctx}: missing numeric field {key}")))
}

fn uint(row: &Json, key: &str, ctx: &str) -> u64 {
    row.get(key)
        .and_then(|v| v.as_u64())
        .unwrap_or_else(|| fail(&format!("{ctx}: missing integer field {key}")))
}

fn boolean(row: &Json, key: &str, ctx: &str) -> bool {
    row.get(key)
        .and_then(|v| v.as_bool())
        .unwrap_or_else(|| fail(&format!("{ctx}: missing boolean field {key}")))
}

fn rows<'a>(json: &'a Json, key: &str, path: &str) -> &'a [Json] {
    let r = json
        .get(key)
        .and_then(|r| r.as_array())
        .unwrap_or_else(|| fail(&format!("{path}: missing {key} array")));
    if r.is_empty() {
        fail(&format!("{path}: {key} array is empty"));
    }
    r
}

fn row_ctx(row: &Json, path: &str, section: &str, i: usize) -> String {
    let regime = row.get("regime").and_then(|r| r.as_str()).unwrap_or("?");
    let prec = row.get("precision").and_then(|p| p.as_str()).unwrap_or("?");
    let dev = row
        .get("devices")
        .and_then(|d| d.as_u64())
        .map(|d| format!(" D={d}"))
        .unwrap_or_default();
    format!("{path} {section}[{i}] ({regime}/{prec}{dev})")
}

fn check_fabric(path: &str, headline_floor: f64, band: f64) {
    let json = load(path, "fabric");
    for (i, row) in rows(&json, "rows", path).iter().enumerate() {
        let ctx = row_ctx(row, path, "rows", i);
        if !boolean(row, "bytes_equal", &ctx) {
            fail(&format!("{ctx}: executor bytes diverged from simulator"));
        }
        let ratio = num(row, "sim_ratio", &ctx);
        if !(1.0 / band..=band).contains(&ratio) {
            fail(&format!(
                "{ctx}: sim_ratio {ratio:.3} outside the {band:.1}x band"
            ));
        }
        let (sync, pipe) = (
            row.get("sync").unwrap_or_else(|| fail(&ctx)),
            row.get("pipelined").unwrap_or_else(|| fail(&ctx)),
        );
        for model in ["makespan_weak", "makespan_a100"] {
            let (s, p) = (num(sync, model, &ctx), num(pipe, model, &ctx));
            if p > s * REL_SLACK {
                fail(&format!(
                    "{ctx}: pipelined {model} {p:.6e} exceeds synchronous {s:.6e}"
                ));
            }
        }
    }
    let headline = json
        .get("headline_speedup_at_4plus")
        .and_then(|h| h.as_f64())
        .unwrap_or_else(|| fail(&format!("{path}: missing headline_speedup_at_4plus")));
    if headline < headline_floor {
        fail(&format!(
            "{path}: headline pipelined speedup at D>=4 is {headline:.3}x, \
             below the {headline_floor:.2}x floor"
        ));
    }
    if let Some(r) = json.get("f32_byte_ratio_worst").and_then(|r| r.as_f64()) {
        if r > 0.55 {
            fail(&format!("{path}: worst f32/f64 byte ratio {r:.3} > 0.55"));
        }
    }
    // Resilience section (present when the bench ran with --faults): every
    // chaos row must have reconciled with the extended simulator — charged
    // retry bytes included — and fault handling must never make the
    // modeled makespan *shorter* than the fault-free baseline (a ratio
    // below 1.0 would mean work or traffic silently vanished under
    // faults).
    let mut resilience_rows = 0;
    if let Some(res) = json.get("resilience").and_then(|r| r.as_array()) {
        if res.is_empty() {
            fail(&format!("{path}: resilience section is empty"));
        }
        for (i, row) in res.iter().enumerate() {
            let kind = row.get("kind").and_then(|k| k.as_str()).unwrap_or("?");
            let mode = row.get("mode").and_then(|m| m.as_str()).unwrap_or("?");
            let ctx = format!("{path} resilience[{i}] ({kind}/{mode})");
            if !boolean(row, "bytes_equal", &ctx) {
                fail(&format!(
                    "{ctx}: faulted bytes diverged from the extended simulator"
                ));
            }
            let ratio = num(row, "makespan_ratio", &ctx);
            if !ratio.is_finite() || ratio < 1.0 / REL_SLACK {
                fail(&format!(
                    "{ctx}: faulted/clean makespan ratio {ratio:.6} below 1.0"
                ));
            }
            uint(row, "retries", &ctx);
            resilience_rows = i + 1;
        }
    }
    println!(
        "bench_check: OK: {path} (headline {headline:.3}x, band {band:.1}x, \
         {resilience_rows} resilience rows)"
    );
}

fn check_solve(path: &str, band: f64) {
    let json = load(path, "solvers_fabric");
    for (i, row) in rows(&json, "factor", path).iter().enumerate() {
        let ctx = row_ctx(row, path, "factor", i);
        let residual = num(row, "residual", &ctx);
        if residual > 1e-10 {
            fail(&format!("{ctx}: ULV residual {residual:.2e} > 1e-10"));
        }
        let gap = num(row, "schedule_gap", &ctx);
        if gap > 1e-13 {
            fail(&format!("{ctx}: batched vs per-node gap {gap:.2e} > 1e-13"));
        }
    }
    for (i, row) in rows(&json, "krylov", path).iter().enumerate() {
        let ctx = row_ctx(row, path, "krylov", i);
        let (plain, precond) = (
            uint(row, "plain_iters", &ctx),
            uint(row, "precond_iters", &ctx),
        );
        if precond > plain {
            fail(&format!(
                "{ctx}: ULV preconditioning regressed iterations ({precond} > {plain})"
            ));
        }
    }
    for (i, row) in rows(&json, "sharded_sweep", path).iter().enumerate() {
        let ctx = row_ctx(row, path, "sharded_sweep", i);
        if !boolean(row, "bytes_equal", &ctx) {
            fail(&format!("{ctx}: sweep bytes diverged from simulator"));
        }
        let (measured, sim) = (
            num(row, "makespan_weak", &ctx),
            num(row, "sim_makespan_weak", &ctx),
        );
        if sim > 0.0 {
            let ratio = measured / sim;
            if !(1.0 / band..=band).contains(&ratio) {
                fail(&format!(
                    "{ctx}: measured/simulated makespan ratio {ratio:.3} outside the {band:.1}x band"
                ));
            }
        }
        // Rows predating the pipelined arm lack these fields; skip then.
        if let Some(pipe) = row.get("pipe_makespan_weak").and_then(|p| p.as_f64()) {
            if pipe > measured * REL_SLACK {
                fail(&format!(
                    "{ctx}: pipelined sweep makespan {pipe:.6e} exceeds synchronous {measured:.6e}"
                ));
            }
        }
    }
    if let Some(residency) = json.get("krylov_residency").and_then(|r| r.as_array()) {
        for (i, row) in residency.iter().enumerate() {
            let ctx = row_ctx(row, path, "krylov_residency", i);
            let (staged, resident) = (
                uint(row, "staged_vector_bytes", &ctx),
                uint(row, "resident_vector_bytes", &ctx),
            );
            if staged == 0 {
                fail(&format!("{ctx}: staged run recorded no vector staging"));
            }
            if resident >= staged {
                fail(&format!(
                    "{ctx}: resident vector traffic {resident} did not collapse below staged {staged}"
                ));
            }
        }
    }
    if let Some(r) = json
        .get("f32_sweep_wire_ratio_worst")
        .and_then(|r| r.as_f64())
    {
        if r > 0.55 {
            fail(&format!("{path}: worst f32 sweep wire ratio {r:.3} > 0.55"));
        }
    }
    println!("bench_check: OK: {path} (band {band:.1}x)");
}

fn check_serve(path: &str, serve_floor: f64) {
    let json = load(path, "serve");
    // Every amortization row must keep the trust invariant, the pipelined
    // schedule must never lose, and within each device count the amortized
    // per-RHS makespan at k = 32 must be strictly below k = 1 — the whole
    // point of coalescing requests into blocked sweeps.
    let mut per_rhs: Vec<(u64, u64, f64)> = Vec::new();
    for (i, row) in rows(&json, "amortization", path).iter().enumerate() {
        let d = row.get("devices").and_then(|d| d.as_u64()).unwrap_or(0);
        let k = row.get("k").and_then(|k| k.as_u64()).unwrap_or(0);
        let ctx = format!("{path} amortization[{i}] (D={d} k={k})");
        if !boolean(row, "bytes_equal", &ctx) {
            fail(&format!(
                "{ctx}: blocked sweep bytes diverged from simulator"
            ));
        }
        for model in ["makespan_a100", "makespan_weak"] {
            let (s, p) = (
                num(row, model, &ctx),
                num(row, &format!("pipe_{model}"), &ctx),
            );
            if p > s * REL_SLACK {
                fail(&format!(
                    "{ctx}: pipelined {model} {p:.6e} exceeds synchronous {s:.6e}"
                ));
            }
        }
        per_rhs.push((d, k, num(row, "per_rhs_a100", &ctx)));
    }
    for &(d, _, p1) in per_rhs.iter().filter(|&&(_, k, _)| k == 1) {
        let p32 = per_rhs
            .iter()
            .find(|&&(dd, k, _)| dd == d && k == 32)
            .map(|&(_, _, p)| p)
            .unwrap_or_else(|| fail(&format!("{path}: no k=32 amortization row for D={d}")));
        if p32 * REL_SLACK >= p1 {
            fail(&format!(
                "{path}: per-RHS makespan at k=32 ({p32:.6e}) is not strictly \
                 below k=1 ({p1:.6e}) for D={d}"
            ));
        }
    }
    let headline = json
        .get("amortized_speedup_at_k32_d4")
        .and_then(|h| h.as_f64())
        .unwrap_or_else(|| fail(&format!("{path}: missing amortized_speedup_at_k32_d4")));
    if headline < serve_floor {
        fail(&format!(
            "{path}: amortized speedup at k=32 D=4 is {headline:.3}x, \
             below the {serve_floor:.2}x floor"
        ));
    }
    let sim = json
        .get("serve_sim")
        .unwrap_or_else(|| fail(&format!("{path}: missing serve_sim section")));
    let ctx = format!("{path} serve_sim");
    if !boolean(sim, "bytes_equal", &ctx) {
        fail(&format!(
            "{ctx}: served batches diverged from the simulator"
        ));
    }
    if uint(sim, "batches", &ctx) >= uint(sim, "completed", &ctx) {
        fail(&format!("{ctx}: no coalescing (batches >= requests)"));
    }
    if uint(sim, "cache_hits", &ctx) == 0 {
        fail(&format!("{ctx}: workload recorded no cache hit"));
    }
    if num(sim, "throughput_rhs_per_sec", &ctx) <= 0.0 {
        fail(&format!("{ctx}: non-positive modeled throughput"));
    }
    let (p50, p99) = (num(sim, "p50_latency", &ctx), num(sim, "p99_latency", &ctx));
    if p99 < p50 {
        fail(&format!("{ctx}: p99 latency {p99:.6e} below p50 {p50:.6e}"));
    }
    println!("bench_check: OK: {path} (amortized speedup {headline:.3}x, floor {serve_floor:.1}x)");
}

fn check_kernels(path: &str, gemm_floor_n: u64) {
    let json = load(path, "kernels");
    for (i, row) in rows(&json, "gemm", path).iter().enumerate() {
        let ctx = format!("{path} gemm[{i}]");
        let n = uint(row, "n", &ctx);
        let (naive, packed) = (
            num(row, "naive_gflops", &ctx),
            num(row, "packed_gflops", &ctx),
        );
        if naive <= 0.0 || packed <= 0.0 {
            fail(&format!("{ctx}: non-positive throughput"));
        }
        if n >= gemm_floor_n && packed < naive {
            fail(&format!(
                "{ctx}: packed GEMM ({packed:.2} GF/s) lost to naive ({naive:.2} GF/s) at n={n}"
            ));
        }
    }
    let batched = json
        .get("batched_apply")
        .unwrap_or_else(|| fail(&format!("{path}: missing batched_apply")));
    if num(batched, "gflops", path) <= 0.0 {
        fail(&format!("{path}: batched_apply throughput non-positive"));
    }
    let cm = json
        .get("construct_matvec")
        .unwrap_or_else(|| fail(&format!("{path}: missing construct_matvec")));
    for key in ["construct_secs", "matvec_secs"] {
        if num(cm, key, path) <= 0.0 {
            fail(&format!("{path}: construct_matvec.{key} non-positive"));
        }
    }
    println!("bench_check: OK: {path} (gemm floor at n>={gemm_floor_n})");
}

fn main() {
    let args = Args::parse();
    let headline_floor: f64 = args.get("headline-floor", 1.25);
    let band: f64 = args.get("band", 2.0);
    let gemm_floor_n: u64 = args.get("gemm-floor-n", 256);
    let serve_floor: f64 = args.get("serve-floor", 4.0);
    let mut checked = 0;
    if let Some(path) = args.get_opt("fabric") {
        check_fabric(&path, headline_floor, band);
        checked += 1;
    }
    if let Some(path) = args.get_opt("solve") {
        check_solve(&path, band);
        checked += 1;
    }
    if let Some(path) = args.get_opt("kernels") {
        check_kernels(&path, gemm_floor_n);
        checked += 1;
    }
    if let Some(path) = args.get_opt("serve") {
        check_serve(&path, serve_floor);
        checked += 1;
    }
    if checked == 0 {
        fail("nothing to check: pass --fabric, --solve, --kernels and/or --serve");
    }
    println!("bench_check: all {checked} envelope(s) OK");
}
