//! The device fabric: N virtual devices, each a **persistent worker thread
//! with an ordered job queue**, a double-buffered memory arena and a
//! work/traffic account, plus the explicit transfer queue with an
//! asynchronous prefetch stage and per-epoch accounting.
//!
//! Paper mapping:
//!
//! * one **virtual device** = one GPU of §IV.B — a dedicated worker thread
//!   (kernel stream) that executes the contiguous node chunk assigned to
//!   the device at every level, in queue order;
//! * the **arena** mirrors §IV.A's per-level single workspace allocation
//!   (prefix sum + one `cudaMalloc`), *double-buffered*: charges land in
//!   the current bank, prefetch-stage charges for the next level land in
//!   the standby bank, and the banks rotate at the epoch boundary — so the
//!   peak reflects two live level workspaces exactly when marshaling for
//!   level *l+1* overlaps level *l*'s compute;
//! * the **transfer queue** holds the only two communication patterns of
//!   §IV.B (`Ω_b` partner fetches in `batchedBSRGemm`, boundary sibling
//!   merges at line 24) plus the matvec's partial-sum reads. In
//!   [`PipelineMode::Pipelined`] transfers are issued as *prefetches* on a
//!   virtual copy engine and compute jobs are gated on their tickets; in
//!   [`PipelineMode::Synchronous`] they are serviced inline (exposed);
//! * **job-level dependencies**: every queued job owns a completion ticket
//!   on the same board as transfer tickets, and a **chain scope**
//!   ([`DeviceFabric::chain_begin`] … [`DeviceFabric::chain_end`]) turns
//!   the per-kernel `flush` into a recorded boundary — the next kernel's
//!   jobs depend on the previous kernel's tickets on other devices instead
//!   of a global barrier, the CUDA-graph shape of back-to-back batched
//!   launches in §IV.B;
//! * an **epoch** is one processed level (or matvec phase): the per-epoch
//!   per-device stats line up one-to-one with the per-level costs of the
//!   [`h2_runtime::multidev`] simulator, which is what
//!   [`crate::SimComparison`] validates.
//!
//! ## Issue-epoch accounting
//!
//! Transfers and modeled flops are tagged with the epoch that **issued**
//! them, under a single lock (epoch index and record push are one critical
//! section, so a concurrent `close_epoch` can never mis-attribute a
//! record). Under overlap this means a prefetch for level *l+1* issued
//! during level *l*'s compute is charged to epoch *l* — totals across
//! epochs are invariant, which is what the simulator cross-check asserts.
//! Measured *busy* time is snapshotted at close time, so a job still
//! draining when an overlapped phase group closes its epoch lands in the
//! following epoch; [`DeviceEpochStats`] therefore reports, per device:
//!
//! * `busy` — wall time executing jobs,
//! * `stall` — wall time a worker (or, synchronously, the issuing thread)
//!   waited on an unfinished transfer: the *exposed* communication,
//! * `overlapped` — in-flight prefetch time that did **not** expose as a
//!   stall: the communication hidden behind compute,
//! * `idle` — the rest of the epoch's wall span.

use h2_fault::{FabricError, FaultKind, FaultPlan, OccurrenceMap};
use h2_obs::{ArgValue, Tracer};
use h2_runtime::{
    DeviceModel, FetchKey, PipelineMode, Precision, ShardDispatch, ShardJob, Transfer, TransferKind,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Poison-tolerant locking for every fabric mutex. A queued job that
/// panics is captured on its worker and re-raised at the next barrier on
/// the *host* thread — which can itself unwind through a lock guard (the
/// barrier's own panic, or a caller's `catch_unwind` scope). Every
/// critical section in this file leaves its data consistent at every exit
/// point, so a poisoned flag is noise: clearing it (instead of
/// `.unwrap()`-cascading a `PoisonError`) is what keeps the other device
/// workers live and the fabric reusable after a propagated job panic —
/// the regression tests in `tests/faults.rs` pin this down.
trait PoisonTolerant<T> {
    fn plock(&self) -> MutexGuard<'_, T>;
}

impl<T> PoisonTolerant<T> for Mutex<T> {
    fn plock(&self) -> MutexGuard<'_, T> {
        self.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The virtual inter-device link the fabric emulates when servicing
/// transfers. The default link is free (zero service time), which keeps
/// unit-test runs instant; benches set a CPU-scale link so exposed vs.
/// hidden communication shows up in measured wall time.
#[derive(Clone, Copy, Debug)]
pub struct LinkModel {
    /// Bytes per second (`f64::INFINITY` = free link).
    pub bandwidth: f64,
    /// Per-message latency in seconds.
    pub latency: f64,
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel {
            bandwidth: f64::INFINITY,
            latency: 0.0,
        }
    }
}

impl LinkModel {
    /// A link whose compute:bandwidth ratio roughly matches
    /// [`DeviceModel`]'s A100-flavored defaults scaled to CPU worker
    /// throughput — transfers take visible but non-dominant wall time.
    pub fn cpu_scale() -> Self {
        LinkModel {
            bandwidth: 2.0e8,
            latency: 2.0e-5,
        }
    }

    /// Service time of one transfer on this link.
    pub fn service(&self, t: &Transfer) -> Duration {
        let secs = t.bytes as f64 / self.bandwidth + self.latency;
        if secs <= 0.0 || !secs.is_finite() {
            Duration::ZERO
        } else {
            Duration::from_secs_f64(secs)
        }
    }
}

/// Injected per-transfer extra delay (stress tests randomize prefetch
/// completion order through this hook).
pub type TransferDelay = Arc<dyn Fn(&Transfer) -> Duration + Send + Sync>;

/// Snapshot of one device's counters over one epoch.
#[derive(Clone, Debug, Default)]
pub struct DeviceEpochStats {
    /// Modeled batched-kernel flops (the simulator's formulas), tagged by
    /// issuing epoch.
    pub flops: f64,
    /// `batchedGen` entry evaluations (flop-equivalents are
    /// `entry_cost × gen_entries`).
    pub gen_entries: f64,
    /// Kernel launches issued by this device.
    pub launches: usize,
    /// Measured wall-clock the worker spent executing jobs.
    pub busy: Duration,
    /// Exposed communication: wall-clock spent waiting on unfinished
    /// transfers (worker dep-stalls, or inline waits in synchronous mode).
    pub stall: Duration,
    /// Hidden communication: in-flight prefetch time that did not expose
    /// as a stall.
    pub overlapped: Duration,
    /// Wall-clock of the epoch window not spent busy or stalled.
    pub idle: Duration,
    /// Peak arena bytes held during the epoch (both banks combined).
    pub arena_peak: usize,
}

/// One closed accounting epoch (a construction level or matvec phase).
#[derive(Clone, Debug)]
pub struct Epoch {
    pub label: String,
    pub per_device: Vec<DeviceEpochStats>,
    /// Cross-device bytes issued during the epoch.
    pub comm_bytes: u64,
    /// Number of cross-device messages issued during the epoch.
    pub comm_messages: usize,
    /// Wall-clock span of the epoch window (close-to-close).
    pub span: Duration,
}

#[derive(Default)]
struct Account {
    flops: f64,
    gen_entries: f64,
    launches: usize,
    busy_nanos: u64,
    stall_nanos: u64,
}

/// Double-buffered bump-arena accounting: `cur` is the open level's
/// workspace, `ahead` collects prefetch-stage charges for the next level;
/// `close_epoch` rotates `ahead` into `cur` (per-level workspace discipline
/// with one level of overlap).
#[derive(Default)]
struct Arena {
    cur: usize,
    ahead: usize,
    peak_epoch: usize,
    peak_total: usize,
    allocated_total: usize,
}

impl Arena {
    fn bump_peaks(&mut self) {
        let live = self.cur + self.ahead;
        self.peak_epoch = self.peak_epoch.max(live);
        self.peak_total = self.peak_total.max(live);
    }
}

/// One recorded transfer: the queue entry plus its issue epoch and modeled
/// flight time (service on the virtual link + any injected delay).
#[derive(Clone, Debug)]
struct TransferRecord {
    /// Prefetch ticket (0 for synchronously serviced transfers). Retry
    /// records share their parent's ticket so hint cancellation removes
    /// the whole attempt group.
    ticket: u64,
    epoch: usize,
    t: Transfer,
    flight_nanos: u64,
    prefetched: bool,
    /// `true` for a charged re-transfer attempt injected by the fault
    /// plan: same bytes as the parent, but it must not advance or unwind
    /// occurrence counters (the parent's fingerprint owns those).
    retry: bool,
}

/// Epoch index, transfer records and the epoch wall-clock window — one
/// mutex, so issue-epoch tagging is race-free by construction.
struct EpochLog {
    epochs: Vec<Epoch>,
    records: Vec<TransferRecord>,
    window_start: Instant,
    run_start: Instant,
}

/// Ticket completion board, shared by prefetched transfers **and** queued
/// jobs: both allocate tickets from the same sequence, so a job's `deps`
/// list can mix transfer tickets with prior jobs' completion tickets.
/// `gen` invalidates tickets across `reset` so a straggling virtual copy
/// can never complete into a new run.
struct TicketState {
    gen: u64,
    done: Vec<bool>,
    inflight: usize,
}

struct TicketBoard {
    state: Mutex<TicketState>,
    cv: Condvar,
}

/// Per-worker completion progress (submitted counts live on the worker
/// handle; `done` is bumped by the worker thread and awaited by `flush`).
struct Progress {
    done: Mutex<u64>,
    cv: Condvar,
}

/// Pending virtual copies, ordered by completion deadline. One engine
/// thread services the whole queue — completion *order* still follows the
/// per-transfer deadlines (issue time + service + injected delay), so
/// delayed copies land out of issue order exactly as a real copy engine's
/// streams would.
struct CopyQueue {
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(Instant, u64, u64)>>,
    shutdown: bool,
}

/// Aggregate fault/recovery event counts over the current accounting
/// scope (cleared by [`DeviceFabric::reset`] and when a new plan is
/// installed). `faults` counts injected fault instants of every kind;
/// `retries` counts charged re-transfer attempts; `recoveries` counts
/// completed recovery actions (device adoption, poisoned-column
/// re-sketches reported through [`ShardDispatch::note_recovery`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    pub faults: u64,
    pub retries: u64,
    pub recoveries: u64,
}

/// Mutable resilience state behind one mutex: the installed plan, the
/// per-fingerprint occurrence counters that make injection replayable,
/// the logical→physical queue routing (identity until a fail-stop), the
/// first typed error observed, and the event counters.
///
/// Lock-order contract: the fault mutex is **leaf-level** — it is never
/// acquired while the epoch log lock is held (`log → fault` would-be
/// edges are broken by dropping the log guard first), and no other fabric
/// lock is taken while it is held.
struct FaultState {
    plan: Option<Arc<FaultPlan>>,
    occ: OccurrenceMap,
    route: Vec<usize>,
    error: Option<FabricError>,
    counters: FaultCounters,
}

struct Shared {
    devices: usize,
    mode: PipelineMode,
    /// Wire precision (0 = f64, 1 = f32): the element width every
    /// cross-device block ships at. Configuration, not accounting — it
    /// survives [`DeviceFabric::reset`].
    wire: AtomicU8,
    link: Mutex<LinkModel>,
    delay: Mutex<Option<TransferDelay>>,
    accounts: Vec<Mutex<Account>>,
    arenas: Vec<Mutex<Arena>>,
    log: Mutex<EpochLog>,
    tickets: TicketBoard,
    progress: Vec<Progress>,
    hints: Mutex<HashMap<FetchKey, u64>>,
    chain: Mutex<Option<ChainState>>,
    panicked: Mutex<Option<String>>,
    copy: Mutex<CopyQueue>,
    copy_cv: Condvar,
    /// Observability tracer; `traced` is the lock-free fast-path flag so
    /// the untraced hot paths pay one relaxed load, not a mutex.
    tracer: Mutex<Option<Arc<Tracer>>>,
    traced: AtomicBool,
    /// Resilience state; `faulty` is its lock-free fast-path flag (set
    /// while a plan is installed), mirroring the tracer's discipline so a
    /// fault-free run pays one relaxed load per transfer.
    fault: Mutex<FaultState>,
    faulty: AtomicBool,
    /// Monotone reshard-map version: bumped on every device-loss adoption
    /// so construction drivers can detect a topology change between level
    /// checkpoints without taking the fault lock.
    reshard: AtomicU64,
    /// Ticket-wait deadline in nanoseconds (0 = none). Read lock-free on
    /// the worker hot path; turns a silent dependency hang into a typed
    /// [`FabricError::TransferTimeout`] surfaced at the next barrier.
    deadline_nanos: AtomicU64,
}

impl Shared {
    /// Cloned tracer handle when tracing is on (one relaxed load when off).
    fn tracer(&self) -> Option<Arc<Tracer>> {
        if !self.traced.load(Ordering::Relaxed) {
            return None;
        }
        self.tracer.plock().clone()
    }
}

impl Shared {
    /// Append a transfer record under the single log lock (issue-epoch
    /// tagging is atomic with the epoch index read).
    fn log_transfer(&self, ticket: u64, t: Transfer, flight: Duration, prefetched: bool) {
        self.log_transfer_full(ticket, t, flight, prefetched, false)
    }

    fn log_transfer_full(
        &self,
        ticket: u64,
        t: Transfer,
        flight: Duration,
        prefetched: bool,
        retry: bool,
    ) {
        let mut log = self.log.plock();
        let epoch = log.epochs.len();
        log.records.push(TransferRecord {
            ticket,
            epoch,
            t,
            flight_nanos: flight.as_nanos() as u64,
            prefetched,
            retry,
        });
    }

    /// Draw this transfer's fault context: the installed plan plus the
    /// transfer's fingerprint and occurrence index (advanced atomically
    /// under the fault lock, which is released before any logging so the
    /// `log → fault` lock order is never reversed). One relaxed load when
    /// no plan is installed.
    fn begin_fault(&self, t: &Transfer) -> Option<(Arc<FaultPlan>, u64, u32)> {
        if !self.faulty.load(Ordering::Relaxed) {
            return None;
        }
        let mut fs = self.fault.plock();
        let plan = fs.plan.clone()?;
        if !plan.is_active() {
            return None;
        }
        let fp = t.fingerprint();
        let occ = fs.occ.next(fp);
        Some((plan, fp, occ))
    }

    /// Allocate a prefetch ticket; `complete` pre-marks it done.
    fn alloc_ticket(&self, complete: bool) -> u64 {
        let mut st = self.tickets.state.plock();
        st.done.push(complete);
        if !complete {
            st.inflight += 1;
        }
        st.done.len() as u64
    }

    /// Allocate a job-completion ticket, returning `(gen, ticket)` so the
    /// worker can complete it against the allocating run even if a `reset`
    /// races in between.
    fn alloc_job_ticket(&self) -> (u64, u64) {
        let mut st = self.tickets.state.plock();
        st.done.push(false);
        st.inflight += 1;
        (st.gen, st.done.len() as u64)
    }

    fn complete_ticket(&self, gen: u64, ticket: u64) {
        let mut st = self.tickets.state.plock();
        if st.gen == gen {
            st.done[ticket as usize - 1] = true;
            st.inflight -= 1;
            self.tickets.cv.notify_all();
        }
    }

    /// Block until every ticket in `deps` has completed; returns the wall
    /// time spent waiting (the exposed portion of the communication).
    ///
    /// When a ticket deadline is configured
    /// ([`DeviceFabric::set_ticket_deadline`]) a dependency that has not
    /// completed within it stops being a silent hang: the wait gives up,
    /// records a typed [`FabricError::TransferTimeout`] and arms the
    /// panic slot so the next barrier raises it on the host thread. The
    /// waiter itself *proceeds* (transfers are virtual, so running the
    /// dependent job is harmless) — giving up instead of panicking here
    /// keeps the worker thread alive to complete its ticket, which is
    /// what prevents the barrier from deadlocking on the very hang the
    /// deadline just diagnosed.
    fn wait_tickets(&self, deps: &[u64]) -> Duration {
        if deps.iter().all(|&d| d == 0) {
            return Duration::ZERO;
        }
        let t0 = Instant::now();
        let deadline = self.deadline_nanos.load(Ordering::Relaxed);
        let mut st = self.tickets.state.plock();
        let gen = st.gen;
        loop {
            if st.gen != gen
                || deps
                    .iter()
                    .all(|&d| d == 0 || st.done.get(d as usize - 1).copied().unwrap_or(true))
            {
                return t0.elapsed();
            }
            if deadline == 0 {
                st = self.tickets.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                continue;
            }
            let budget = Duration::from_nanos(deadline);
            let waited = t0.elapsed();
            if waited >= budget {
                let stuck = deps
                    .iter()
                    .copied()
                    .find(|&d| d != 0 && !st.done.get(d as usize - 1).copied().unwrap_or(true))
                    .unwrap_or(0);
                drop(st);
                let err = FabricError::TransferTimeout {
                    ticket: stuck,
                    waited_nanos: waited.as_nanos() as u64,
                };
                let msg = err.to_string();
                self.fault.plock().error = Some(err);
                let mut p = self.panicked.plock();
                if p.is_none() {
                    *p = Some(msg);
                }
                return waited;
            }
            st = self
                .tickets
                .cv
                .wait_timeout(st, budget - waited)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }
}

/// Extra flight time the fault plan adds to one transfer: a possible
/// copy-engine delay spike, plus — per failed attempt — the detection
/// latency (a dropped attempt surfaces at the plan's detect timeout; a
/// corrupted one ships fully and is caught by the landing checksum, i.e.
/// after `base`) and the exponential backoff before the re-issue. The
/// re-issued attempts' own service times are carried by their retry
/// records, so summing record flight times reproduces the full timeline
/// without double counting.
fn fault_flight(plan: &FaultPlan, fp: u64, occ: u32, base: Duration) -> Duration {
    let mut extra = plan.delay_spike(fp, occ).unwrap_or(Duration::ZERO);
    for attempt in 0..plan.failed_attempts(fp, occ) {
        let detect = match plan.attempt_failure(fp, occ, attempt) {
            Some(FaultKind::TransferDrop) => plan.detect_timeout,
            _ => base,
        };
        extra += detect + plan.backoff(attempt);
    }
    extra
}

/// Sub-millisecond-accurate wait used to emulate link service time.
fn virtual_wait(d: Duration) {
    if d.is_zero() {
        return;
    }
    if d >= Duration::from_micros(200) {
        std::thread::sleep(d);
        return;
    }
    let t0 = Instant::now();
    while t0.elapsed() < d {
        std::hint::spin_loop();
        std::thread::yield_now();
    }
}

/// Open cross-kernel chain scope: per-device job tickets of the kernel
/// closed at the last chain boundary (`prev`) and of the kernel currently
/// enqueuing (`cur`). While a chain is open, `flush` records a boundary
/// instead of blocking, and every new job automatically depends on the
/// previous kernel's tickets **on other devices** — same-device ordering
/// is already guaranteed by the FIFO queue, so a device that finishes its
/// slice of kernel *k* starts kernel *k+1* while slower devices drain.
struct ChainState {
    prev: Vec<Vec<u64>>,
    cur: Vec<Vec<u64>>,
}

enum Cmd {
    Job {
        deps: Vec<u64>,
        /// Ticket generation + completion ticket of this job (completed by
        /// the worker right after the job body runs, before the progress
        /// counter bumps, so dependents can start as soon as possible).
        gen: u64,
        ticket: u64,
        run: Box<dyn FnOnce() + Send + 'static>,
    },
    Stop,
}

struct Worker {
    tx: Sender<Cmd>,
    submitted: AtomicU64,
    handle: Option<JoinHandle<()>>,
}

/// A fabric of `N` virtual devices. Create with [`DeviceFabric::new`]
/// (fork-join execution) or [`DeviceFabric::pipelined`] (ordered queues,
/// prefetched transfers, double-buffered arenas), hand the `Arc` to
/// [`h2_runtime::Runtime::sharded`] (it implements [`ShardDispatch`]), run
/// work, then collect an [`ExecReport`].
pub struct DeviceFabric {
    shared: Arc<Shared>,
    workers: Vec<Worker>,
    copy_engine: Mutex<Option<JoinHandle<()>>>,
}

impl DeviceFabric {
    /// Spin up `devices` worker threads in synchronous (fork-join) mode.
    pub fn new(devices: usize) -> Arc<Self> {
        Self::with_config(devices, PipelineMode::Synchronous, LinkModel::default())
    }

    /// Spin up `devices` worker threads in pipelined mode.
    pub fn pipelined(devices: usize) -> Arc<Self> {
        Self::with_config(devices, PipelineMode::Pipelined, LinkModel::default())
    }

    /// Full-control constructor: execution mode plus the virtual link the
    /// transfer stage emulates.
    pub fn with_config(devices: usize, mode: PipelineMode, link: LinkModel) -> Arc<Self> {
        assert!(devices > 0, "at least one device");
        let now = Instant::now();
        let shared = Arc::new(Shared {
            devices,
            mode,
            wire: AtomicU8::new(0),
            link: Mutex::new(link),
            delay: Mutex::new(None),
            accounts: (0..devices)
                .map(|_| Mutex::new(Account::default()))
                .collect(),
            arenas: (0..devices).map(|_| Mutex::new(Arena::default())).collect(),
            log: Mutex::new(EpochLog {
                epochs: Vec::new(),
                records: Vec::new(),
                window_start: now,
                run_start: now,
            }),
            tickets: TicketBoard {
                state: Mutex::new(TicketState {
                    gen: 0,
                    done: Vec::new(),
                    inflight: 0,
                }),
                cv: Condvar::new(),
            },
            progress: (0..devices)
                .map(|_| Progress {
                    done: Mutex::new(0),
                    cv: Condvar::new(),
                })
                .collect(),
            hints: Mutex::new(HashMap::new()),
            chain: Mutex::new(None),
            panicked: Mutex::new(None),
            copy: Mutex::new(CopyQueue {
                heap: std::collections::BinaryHeap::new(),
                shutdown: false,
            }),
            copy_cv: Condvar::new(),
            tracer: Mutex::new(None),
            traced: AtomicBool::new(false),
            fault: Mutex::new(FaultState {
                plan: None,
                occ: OccurrenceMap::new(),
                route: (0..devices).collect(),
                error: None,
                counters: FaultCounters::default(),
            }),
            faulty: AtomicBool::new(false),
            reshard: AtomicU64::new(0),
            deadline_nanos: AtomicU64::new(0),
        });
        // The virtual copy engine: one thread servicing every prefetch by
        // completion deadline (no per-transfer thread spawns).
        let copy_engine = {
            let sh = shared.clone();
            std::thread::Builder::new()
                .name("h2-copy-engine".to_string())
                .spawn(move || loop {
                    let q = sh.copy.plock();
                    let head = q.heap.peek().copied();
                    match head {
                        None => {
                            if q.shutdown {
                                return;
                            }
                            drop(sh.copy_cv.wait(q).unwrap_or_else(|e| e.into_inner()));
                        }
                        Some(std::cmp::Reverse((deadline, gen, ticket))) => {
                            let now = Instant::now();
                            if deadline <= now {
                                let mut q = q;
                                q.heap.pop();
                                drop(q);
                                sh.complete_ticket(gen, ticket);
                            } else {
                                drop(
                                    sh.copy_cv
                                        .wait_timeout(q, deadline - now)
                                        .unwrap_or_else(|e| e.into_inner())
                                        .0,
                                );
                            }
                        }
                    }
                })
                .expect("spawn copy engine")
        };
        let workers = (0..devices)
            .map(|dev| {
                let (tx, rx) = channel::<Cmd>();
                let sh = shared.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("h2-device-{dev}"))
                    .spawn(move || {
                        while let Ok(cmd) = rx.recv() {
                            match cmd {
                                Cmd::Job {
                                    deps,
                                    gen,
                                    ticket,
                                    run,
                                } => {
                                    let stall = sh.wait_tickets(&deps);
                                    let tracer = sh.tracer();
                                    let span = tracer.as_ref().map(|t| {
                                        let mut s =
                                            t.span_on_device("job", format!("dev{dev} job"), dev);
                                        s.arg("stall_ns", ArgValue::U64(stall.as_nanos() as u64));
                                        s.arg("deps", ArgValue::U64(deps.len() as u64));
                                        s
                                    });
                                    let t0 = Instant::now();
                                    let result =
                                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(run));
                                    drop(span);
                                    let busy = t0.elapsed();
                                    {
                                        let mut a = sh.accounts[dev].plock();
                                        a.busy_nanos += busy.as_nanos() as u64;
                                        a.stall_nanos += stall.as_nanos() as u64;
                                    }
                                    if result.is_err() {
                                        let mut p = sh.panicked.plock();
                                        if p.is_none() {
                                            *p = Some(format!("device {dev} job panicked"));
                                        }
                                    }
                                    // Complete even on panic so dependents
                                    // never deadlock; the panic surfaces at
                                    // the next real barrier.
                                    sh.complete_ticket(gen, ticket);
                                    let mut done = sh.progress[dev].done.plock();
                                    *done += 1;
                                    sh.progress[dev].cv.notify_all();
                                }
                                Cmd::Stop => break,
                            }
                        }
                    })
                    .expect("spawn device worker");
                Worker {
                    tx,
                    submitted: AtomicU64::new(0),
                    handle: Some(handle),
                }
            })
            .collect();
        Arc::new(DeviceFabric {
            shared,
            workers,
            copy_engine: Mutex::new(Some(copy_engine)),
        })
    }

    pub fn devices(&self) -> usize {
        self.shared.devices
    }

    pub fn mode(&self) -> PipelineMode {
        self.shared.mode
    }

    /// Replace the virtual link model (affects subsequent transfers).
    pub fn set_link(&self, link: LinkModel) {
        *self.shared.link.plock() = link;
    }

    /// Set the wire precision: the element width every cross-device block
    /// ships at (and the width transfer-landing arena charges use). The
    /// sharded drivers read it through [`ShardDispatch::wire`] when sizing
    /// their transfer descriptors, and the simulator cross-checks use the
    /// same width — so byte totals stay exactly equal at either setting.
    /// Configuration rather than accounting: preserved across
    /// [`DeviceFabric::reset`].
    pub fn set_wire(&self, prec: Precision) {
        let tag = match prec {
            Precision::F64 => 0,
            Precision::F32 => 1,
        };
        self.shared.wire.store(tag, Ordering::SeqCst);
    }

    /// Current wire precision (defaults to [`Precision::F64`]).
    pub fn wire(&self) -> Precision {
        if self.shared.wire.load(Ordering::SeqCst) == 1 {
            Precision::F32
        } else {
            Precision::F64
        }
    }

    /// Install (or clear) the injected per-transfer delay hook used by the
    /// prefetch-ordering stress tests.
    pub fn set_transfer_delay(&self, hook: Option<TransferDelay>) {
        *self.shared.delay.plock() = hook;
    }

    /// Install (or clear) a deterministic [`FaultPlan`]. Installing resets
    /// the occurrence counters, the reshard routing and the event
    /// counters, so two runs under the same plan and seed inject the
    /// identical fault sequence — the chaos tests' replayability contract.
    /// The plan itself is configuration and survives
    /// [`DeviceFabric::reset`] (counters and routing do not).
    pub fn set_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        let on = plan.as_ref().is_some_and(|p| p.is_active());
        {
            let mut fs = self.shared.fault.plock();
            fs.plan = plan;
            fs.occ.clear();
            fs.route = (0..self.shared.devices).collect();
            fs.error = None;
            fs.counters = FaultCounters::default();
        }
        self.shared.reshard.store(0, Ordering::SeqCst);
        self.shared.faulty.store(on, Ordering::Relaxed);
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        if !self.shared.faulty.load(Ordering::Relaxed) {
            return None;
        }
        self.shared.fault.plock().plan.clone()
    }

    /// Arm (or disarm with `None`) the ticket-wait deadline: a dependency
    /// not completed within `d` surfaces as a typed
    /// [`FabricError::TransferTimeout`] at the next barrier instead of a
    /// silent hang. Configuration; survives [`DeviceFabric::reset`].
    pub fn set_ticket_deadline(&self, d: Option<Duration>) {
        let nanos = d.map(|d| (d.as_nanos() as u64).max(1)).unwrap_or(0);
        self.shared.deadline_nanos.store(nanos, Ordering::Relaxed);
    }

    /// Take the first typed fabric error observed since the last
    /// [`DeviceFabric::reset`] / plan install (clearing it).
    pub fn take_fault_error(&self) -> Option<FabricError> {
        self.shared.fault.plock().error.take()
    }

    /// Fault/retry/recovery event counts of the current accounting scope.
    pub fn fault_counters(&self) -> FaultCounters {
        self.shared.fault.plock().counters
    }

    /// Monotone reshard-map version: 0 until a device loss, bumped on
    /// every adoption. Construction drivers compare it across level
    /// checkpoints to detect that recovery replay is needed.
    pub fn reshard_version(&self) -> u64 {
        self.shared.reshard.load(Ordering::SeqCst)
    }

    /// Draw the next occurrence index for a non-transfer fault site (the
    /// kernel-poison sites in `h2_runtime::ops` key their injection and
    /// deterministic re-sketch off this counter).
    pub fn fault_occurrence(&self, site: u64) -> u32 {
        if !self.shared.faulty.load(Ordering::Relaxed) {
            return 0;
        }
        self.shared.fault.plock().occ.next(site)
    }

    /// Record one completed recovery action (poisoned-column re-sketch,
    /// checkpoint replay) and emit a trace instant for it.
    pub fn note_recovery(&self, site: &str) {
        self.shared.fault.plock().counters.recoveries += 1;
        if let Some(tracer) = self.shared.tracer() {
            tracer.instant("fault", format!("recovery: {site}"), Vec::new());
        }
    }

    /// Attach (or detach) an observability tracer. When attached, the
    /// fabric emits device-track job spans (with their ticket-stall time),
    /// per-transfer instants tagged with byte/precision payloads, flush
    /// spans on the issuing thread, and epoch-boundary / arena-rotation
    /// marks — all against the tracer's shared clock, so they interleave
    /// correctly with `Runtime::phase` spans in one Chrome trace. Untraced
    /// fabrics pay a single relaxed atomic load per hook site.
    pub fn set_tracer(&self, tracer: Option<Arc<Tracer>>) {
        let on = tracer.is_some();
        *self.shared.tracer.plock() = tracer;
        self.shared.traced.store(on, Ordering::Relaxed);
    }

    /// The tracer currently attached, if any. [`crate::sharded_runtime`]
    /// propagates it into the `Runtime` it builds so one `set_tracer` call
    /// covers both the fabric's device-side hooks and the host-side phase
    /// spans.
    pub fn tracer(&self) -> Option<Arc<Tracer>> {
        self.shared.tracer()
    }

    /// Submit `job` to device `dev`'s ordered queue without blocking and
    /// return its **completion ticket** (same board as transfer tickets, so
    /// a later job's `deps` can mix both). The worker runs queue entries in
    /// FIFO order, waiting on the tickets in `deps` first (wait time is
    /// accounted as stall) and completing the job's own ticket right after
    /// the body runs. Inside a chain scope (see
    /// [`DeviceFabric::chain_begin`]) the previous kernel's tickets on
    /// *other* devices are added as dependencies automatically.
    ///
    /// # Safety
    ///
    /// Every borrow captured by `job` must outlive its execution on the
    /// worker thread: the caller must call [`DeviceFabric::flush`] (or,
    /// inside a chain scope, [`DeviceFabric::chain_end`]) before the
    /// borrowed data is dropped or mutably re-aliased. This is the standard
    /// scoped-threadpool lifetime erasure, with the scope-end moved to the
    /// explicit barrier.
    pub unsafe fn enqueue<'a>(&self, dev: usize, deps: &[u64], job: ShardJob<'a>) -> u64 {
        let run: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(job) };
        let (gen, ticket) = self.shared.alloc_job_ticket();
        let mut all_deps = deps.to_vec();
        {
            let mut chain = self.shared.chain.plock();
            if let Some(ch) = chain.as_mut() {
                for (d, tickets) in ch.prev.iter().enumerate() {
                    if d != dev {
                        all_deps.extend_from_slice(tickets);
                    }
                }
                ch.cur[dev].push(ticket);
            }
        }
        // Device loss: `dev` stays the *logical* device (ownership,
        // accounting and transfer endpoints are unchanged, so byte totals
        // still match the simulator); only the physical worker executing
        // the queue moves to the adopter.
        let phys = self.route_of(dev);
        self.workers[phys].submitted.fetch_add(1, Ordering::SeqCst);
        self.workers[phys]
            .tx
            .send(Cmd::Job {
                deps: all_deps,
                gen,
                ticket,
                run,
            })
            .expect("device worker alive");
        ticket
    }

    /// Physical worker currently executing logical device `dev`'s queue
    /// (identity until a fail-stop adoption; one relaxed load when no
    /// fault plan is installed).
    fn route_of(&self, dev: usize) -> usize {
        if !self.shared.faulty.load(Ordering::Relaxed) {
            return dev;
        }
        self.shared.fault.plock().route[dev]
    }

    /// Open a cross-kernel chain scope (pipelined fabrics only; a no-op in
    /// synchronous mode, where every kernel's fork-join barrier stays
    /// exposed). While the scope is open, [`DeviceFabric::flush`] records a
    /// **chain boundary** instead of blocking: the kernel that just
    /// finished enqueuing becomes the dependency set for the next kernel's
    /// jobs — cross-device ordering via completion tickets, same-device
    /// ordering via the FIFO queue. The host thread never blocks between
    /// kernels, so launch overhead hides behind the still-draining queues.
    /// Close with [`DeviceFabric::chain_end`], which performs the real
    /// barrier and discharges the `enqueue` borrow contract.
    pub fn chain_begin(&self) {
        if self.shared.mode != PipelineMode::Pipelined {
            return;
        }
        let d = self.shared.devices;
        *self.shared.chain.plock() = Some(ChainState {
            prev: vec![Vec::new(); d],
            cur: vec![Vec::new(); d],
        });
    }

    /// Close the chain scope opened by [`DeviceFabric::chain_begin`] and
    /// run the real barrier (safe to call with no chain open — then it is
    /// exactly [`DeviceFabric::flush`]).
    pub fn chain_end(&self) {
        *self.shared.chain.plock() = None;
        self.barrier();
    }

    /// Record a chain boundary if a chain scope is open; returns `false`
    /// (caller should run the real barrier) otherwise. Devices whose
    /// current-kernel ticket list is empty keep their previous tickets, so
    /// dependency transitivity survives kernels that skip a device.
    fn chain_boundary(&self) -> bool {
        let mut chain = self.shared.chain.plock();
        match chain.as_mut() {
            None => false,
            Some(ch) => {
                for dev in 0..self.shared.devices {
                    if !ch.cur[dev].is_empty() {
                        ch.prev[dev] = std::mem::take(&mut ch.cur[dev]);
                    }
                }
                if let Some(tracer) = self.shared.tracer() {
                    tracer.instant("fabric", "chain boundary", Vec::new());
                }
                true
            }
        }
    }

    /// Kernel-boundary synchronization point. Outside a chain scope this is
    /// the barrier: wait until every enqueued job has run, then propagate
    /// any worker panic. Inside a chain scope it records a **chain
    /// boundary** and returns immediately — the finished kernel's job
    /// tickets become automatic dependencies for the next kernel's enqueues
    /// on other devices, so the barrier cost leaves the critical path.
    /// Deliberately does **not** wait for in-flight virtual copies — a
    /// compute-stream sync must not serialize against the copy engine, or
    /// early-issued prefetches would lose their overlap; only
    /// [`DeviceFabric::report`] and [`DeviceFabric::reset`] drain those.
    pub fn flush(&self) {
        if self.chain_boundary() {
            return;
        }
        self.barrier();
    }

    /// The unconditional barrier behind [`DeviceFabric::flush`] /
    /// [`DeviceFabric::chain_end`].
    fn barrier(&self) {
        let tracer = self.shared.tracer();
        let _span = tracer.as_ref().map(|t| t.span("fabric", "flush"));
        for (dev, w) in self.workers.iter().enumerate() {
            let target = w.submitted.load(Ordering::SeqCst);
            let mut done = self.shared.progress[dev].done.plock();
            while *done < target {
                done = self.shared.progress[dev]
                    .cv
                    .wait(done)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
        if let Some(msg) = self.shared.panicked.plock().take() {
            panic!("a device job panicked on its worker thread: {msg}");
        }
    }

    /// Wait for every in-flight virtual copy to land.
    fn drain_copies(&self) {
        let mut st = self.shared.tickets.state.plock();
        while st.inflight > 0 {
            st = self
                .shared
                .tickets
                .cv
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Execute `jobs[d]` on device `d`'s worker thread and block until all
    /// complete (the fork-join entry point; [`DeviceFabric::enqueue`] +
    /// [`DeviceFabric::flush`] is the pipelined one). Job wall time is
    /// credited to each device's busy counter.
    pub fn run_jobs<'a>(&self, jobs: Vec<ShardJob<'a>>) {
        assert!(jobs.len() <= self.shared.devices, "more jobs than devices");
        for (dev, job) in jobs.into_iter().enumerate() {
            // SAFETY: the barrier below blocks until every job has
            // completed, so all borrows strictly outlive their execution
            // (fork-join semantics even inside a chain scope).
            unsafe { self.enqueue(dev, &[], job) };
        }
        self.barrier();
    }

    /// Issue a transfer as an asynchronous prefetch on the virtual copy
    /// engine and return its completion ticket. The record is tagged with
    /// the issuing epoch; the flight time is the link service time plus
    /// any injected delay, widened by the fault plan's detection and
    /// backoff latencies when the plan fails attempts of this transfer.
    pub fn prefetch_transfer(&self, t: Transfer) -> u64 {
        let base = self.service_time(&t);
        let fault = self.shared.begin_fault(&t);
        let extra = fault
            .as_ref()
            .map(|(plan, fp, occ)| fault_flight(plan, *fp, *occ, base))
            .unwrap_or(Duration::ZERO);
        let service = base + extra;
        let ticket = self.shared.alloc_ticket(service.is_zero());
        self.shared.log_transfer(ticket, t, service, true);
        self.trace_transfer(&t, true, service);
        if let Some((plan, fp, occ)) = fault {
            self.charge_fault_retries(ticket, &t, base, true, &plan, fp, occ);
        }
        if !service.is_zero() {
            let gen = self.shared.tickets.state.plock().gen;
            let deadline = Instant::now() + service;
            self.shared
                .copy
                .plock()
                .heap
                .push(std::cmp::Reverse((deadline, gen, ticket)));
            self.shared.copy_cv.notify_all();
        }
        ticket
    }

    /// Record a cross-device transfer on the explicit queue and service it
    /// inline (synchronous semantics: the copy is exposed; the wait is
    /// charged to the destination device as stall). Fault-plan detection
    /// and backoff latencies extend the exposed wait the same way they
    /// extend a prefetch's flight.
    pub fn record_transfer(&self, t: Transfer) {
        let base = self.service_time(&t);
        let fault = self.shared.begin_fault(&t);
        let extra = fault
            .as_ref()
            .map(|(plan, fp, occ)| fault_flight(plan, *fp, *occ, base))
            .unwrap_or(Duration::ZERO);
        let service = base + extra;
        self.shared.log_transfer(0, t, service, false);
        self.trace_transfer(&t, false, service);
        if let Some((plan, fp, occ)) = fault {
            self.charge_fault_retries(0, &t, base, false, &plan, fp, occ);
        }
        if !service.is_zero() {
            virtual_wait(service);
            self.shared.accounts[t.dst].plock().stall_nanos += service.as_nanos() as u64;
        }
    }

    /// Charge the fault plan's consequences for one issued transfer: one
    /// extra [`TransferRecord`] per failed attempt (same bytes, same
    /// parent ticket — the re-transfer traffic the accounts and the
    /// extended simulator both count), a fault instant per injected
    /// event, and the retry/fault counters. The landing checksum of the
    /// synthetic payload is exercised in debug builds: a corrupted
    /// attempt must be *detectable* and the final attempt must verify.
    fn charge_fault_retries(
        &self,
        ticket: u64,
        t: &Transfer,
        base: Duration,
        prefetched: bool,
        plan: &FaultPlan,
        fp: u64,
        occ: u32,
    ) {
        if plan.delay_spike(fp, occ).is_some() {
            self.note_fault(FaultKind::DelaySpike, t, 0);
        }
        let failures = plan.failed_attempts(fp, occ);
        for attempt in 0..failures {
            let kind = plan
                .attempt_failure(fp, occ, attempt)
                .expect("attempt counted as failed");
            if kind == FaultKind::TransferCorrupt {
                debug_assert!(
                    !h2_fault::verify_landing(fp, true),
                    "corrupted landing must fail its checksum"
                );
            }
            self.shared
                .log_transfer_full(ticket, *t, base, prefetched, true);
            self.note_fault(kind, t, attempt);
            self.trace_retry(t, attempt, base);
        }
        debug_assert!(
            h2_fault::verify_landing(fp, false),
            "clean landing must verify"
        );
        if failures > 0 {
            self.shared.fault.plock().counters.retries += failures as u64;
        }
    }

    /// Count one injected fault instant and emit it on the destination
    /// device's trace track.
    fn note_fault(&self, kind: FaultKind, t: &Transfer, attempt: u32) {
        self.shared.fault.plock().counters.faults += 1;
        if let Some(tracer) = self.shared.tracer() {
            tracer.instant_on_device(
                "fault",
                kind.name(),
                t.dst,
                vec![
                    ("bytes", ArgValue::U64(t.bytes)),
                    ("src", ArgValue::U64(t.src as u64)),
                    ("attempt", ArgValue::U64(attempt as u64)),
                ],
            );
        }
    }

    /// Emit one re-transfer instant (category `transfer`, like every
    /// charged copy, so trace byte reconciliation keeps summing to the
    /// counter — distinguished by `stage: "retry"`).
    fn trace_retry(&self, t: &Transfer, attempt: u32, service: Duration) {
        if let Some(tracer) = self.shared.tracer() {
            tracer.instant_on_device(
                "transfer",
                t.kind.name(),
                t.dst,
                vec![
                    ("bytes", ArgValue::U64(t.bytes)),
                    ("src", ArgValue::U64(t.src as u64)),
                    (
                        "prec",
                        ArgValue::Str(match t.prec {
                            Precision::F64 => "f64",
                            Precision::F32 => "f32",
                        }),
                    ),
                    ("stage", ArgValue::Str("retry")),
                    ("flight_ns", ArgValue::U64(service.as_nanos() as u64)),
                    ("retry", ArgValue::U64(attempt as u64 + 1)),
                ],
            );
        }
    }

    /// Emit one transfer instant on the destination device's track (no-op
    /// without a tracer).
    fn trace_transfer(&self, t: &Transfer, prefetched: bool, service: Duration) {
        if let Some(tracer) = self.shared.tracer() {
            tracer.instant_on_device(
                "transfer",
                t.kind.name(),
                t.dst,
                vec![
                    ("bytes", ArgValue::U64(t.bytes)),
                    ("src", ArgValue::U64(t.src as u64)),
                    (
                        "prec",
                        ArgValue::Str(match t.prec {
                            Precision::F64 => "f64",
                            Precision::F32 => "f32",
                        }),
                    ),
                    (
                        "stage",
                        ArgValue::Str(if prefetched { "prefetch" } else { "inline" }),
                    ),
                    ("flight_ns", ArgValue::U64(service.as_nanos() as u64)),
                ],
            );
        }
    }

    fn service_time(&self, t: &Transfer) -> Duration {
        let base = self.shared.link.plock().service(t);
        let extra = self
            .shared
            .delay
            .plock()
            .as_ref()
            .map(|h| h(t))
            .unwrap_or(Duration::ZERO);
        base + extra
    }

    /// Early prefetch of a keyed `Ω`/`Ψ` fetch descriptor: starts the copy
    /// now, charges the destination's *standby* arena bank (it is the next
    /// level's workspace), and parks the ticket for a later
    /// [`DeviceFabric::claim_or_fetch`] with the same key.
    pub fn hint_prefetch(&self, key: FetchKey, t: Transfer) {
        let ticket = self.prefetch_transfer(t);
        {
            let mut a = self.shared.arenas[t.dst].plock();
            a.ahead += t.bytes as usize;
            a.allocated_total += t.bytes as usize;
            a.bump_peaks();
        }
        self.shared.hints.plock().insert(key, ticket);
    }

    /// Claim a hinted prefetch (already recorded and arena-charged), or
    /// issue a fresh one on a miss.
    pub fn claim_or_fetch(&self, key: FetchKey, t: Transfer) -> u64 {
        if let Some(ticket) = self.shared.hints.plock().remove(&key) {
            return ticket;
        }
        let ticket = self.prefetch_transfer(t);
        self.arena_charge(t.dst, t.bytes as usize);
        ticket
    }

    /// Drop unclaimed hints of one stream, removing their transfer records
    /// (and best-effort un-charging the standby banks) so a stale hint
    /// never double-counts bytes against the simulator.
    pub fn cancel_hints(&self, stream: u8) {
        let stale: Vec<(FetchKey, u64)> = {
            let mut hints = self.shared.hints.plock();
            let keys: Vec<FetchKey> = hints
                .keys()
                .filter(|k| k.stream == stream)
                .copied()
                .collect();
            keys.into_iter()
                .map(|k| {
                    let t = hints.remove(&k).unwrap();
                    (k, t)
                })
                .collect()
        };
        if stale.is_empty() {
            return;
        }
        let tickets: Vec<u64> = stale.iter().map(|&(_, t)| t).collect();
        let mut removed_fps = Vec::new();
        {
            let mut log = self.shared.log.plock();
            log.records.retain(|r| {
                let keep = r.ticket == 0 || !tickets.contains(&r.ticket);
                if !keep && !r.retry {
                    removed_fps.push(r.t.fingerprint());
                }
                keep
            });
        }
        // A canceled hint never happened as far as the simulator census is
        // concerned: rewind its fingerprint's occurrence counter (retry
        // records rode the parent's draw, so only the parent rewinds) so a
        // later re-issue of the same transfer replays the same fault
        // decision the census predicts for it.
        if !removed_fps.is_empty() && self.shared.faulty.load(Ordering::Relaxed) {
            let mut fs = self.shared.fault.plock();
            for fp in removed_fps {
                fs.occ.unwind(fp);
            }
        }
        for (k, _) in &stale {
            let mut a = self.shared.arenas[k.dst].plock();
            a.ahead = a.ahead.saturating_sub(k.bytes as usize);
        }
    }

    pub fn record_flops(&self, dev: usize, flops: f64) {
        self.shared.accounts[dev].plock().flops += flops;
    }

    pub fn record_gen_entries(&self, dev: usize, entries: f64) {
        self.shared.accounts[dev].plock().gen_entries += entries;
    }

    pub fn record_launches(&self, dev: usize, n: usize) {
        self.shared.accounts[dev].plock().launches += n;
    }

    /// Charge workspace bytes to a device arena's current bank.
    pub fn arena_charge(&self, dev: usize, bytes: usize) {
        let mut a = self.shared.arenas[dev].plock();
        a.cur += bytes;
        a.allocated_total += bytes;
        a.bump_peaks();
    }

    /// Charge workspace bytes to a device arena's *standby* bank (the next
    /// epoch's workspace, populated by the prefetch stage while the current
    /// level computes). Rotated into the current bank at the next epoch
    /// boundary.
    pub fn arena_charge_ahead(&self, dev: usize, bytes: usize) {
        let mut a = self.shared.arenas[dev].plock();
        a.ahead += bytes;
        a.allocated_total += bytes;
        a.bump_peaks();
    }

    /// Close the current epoch: snapshot and reset per-device counters,
    /// release the current arena banks and rotate the standby banks in
    /// (double-buffered per-level workspace), and aggregate the epoch's
    /// issued transfer traffic.
    ///
    /// The per-device stats **exactly tile** the epoch span:
    /// `busy + stall + overlapped + idle == span` on every device, with the
    /// span widened to the busiest device's `busy + stall` when a still-
    /// draining job from an overlapped phase group lands after the window
    /// elapsed. Hidden communication (`overlapped`) is the prefetch flight
    /// time that did not expose as a stall, clipped to the device's
    /// non-working remainder so the tiling is an identity, not a bound.
    pub fn close_epoch(&self, label: &str) {
        let mut log = self.shared.log.plock();
        let idx = log.epochs.len();
        let window = log.window_start.elapsed();
        log.window_start = Instant::now();
        let (mut bytes, mut msgs) = (0u64, 0usize);
        let mut flight = vec![0u64; self.shared.devices];
        for r in log.records.iter().filter(|r| r.epoch == idx) {
            bytes += r.t.bytes;
            msgs += 1;
            if r.prefetched {
                flight[r.t.dst] += r.flight_nanos;
            }
        }
        let taken: Vec<Account> = (0..self.shared.devices)
            .map(|dev| std::mem::take(&mut *self.shared.accounts[dev].plock()))
            .collect();
        let span = taken
            .iter()
            .map(|a| Duration::from_nanos(a.busy_nanos + a.stall_nanos))
            .max()
            .unwrap_or_default()
            .max(window);
        let per_device: Vec<DeviceEpochStats> = taken
            .into_iter()
            .enumerate()
            .map(|(dev, a)| {
                let mut ar = self.shared.arenas[dev].plock();
                let busy = Duration::from_nanos(a.busy_nanos);
                let stall = Duration::from_nanos(a.stall_nanos);
                let rest = span - busy - stall;
                let overlapped =
                    Duration::from_nanos(flight[dev].saturating_sub(a.stall_nanos)).min(rest);
                let stats = DeviceEpochStats {
                    flops: a.flops,
                    gen_entries: a.gen_entries,
                    launches: a.launches,
                    busy,
                    stall,
                    overlapped,
                    idle: rest - overlapped,
                    arena_peak: ar.peak_epoch,
                };
                ar.cur = ar.ahead;
                ar.ahead = 0;
                ar.peak_epoch = ar.cur;
                stats
            })
            .collect();
        if let Some(tracer) = self.shared.tracer() {
            tracer.instant(
                "fabric",
                format!("epoch close: {label}"),
                vec![
                    ("epoch", ArgValue::U64(idx as u64)),
                    ("comm_bytes", ArgValue::U64(bytes)),
                    ("comm_messages", ArgValue::U64(msgs as u64)),
                ],
            );
            for (dev, d) in per_device.iter().enumerate() {
                tracer.instant_on_device(
                    "arena",
                    "arena rotate",
                    dev,
                    vec![("peak_bytes", ArgValue::U64(d.arena_peak as u64))],
                );
            }
        }
        log.epochs.push(Epoch {
            label: label.to_string(),
            per_device,
            comm_bytes: bytes,
            comm_messages: msgs,
            span,
        });
        // Lock order is log → fault, never the reverse: release the log
        // guard before the fail-stop check takes the fault lock.
        drop(log);
        self.maybe_fail_stop(idx);
    }

    /// Apply a scheduled device fail-stop once its epoch has closed: the
    /// lost device's queue routing moves to the lowest surviving device,
    /// which adopts the shard's jobs from the next enqueue on. Ownership,
    /// accounting and transfer endpoints stay *logical* — byte totals and
    /// simulator comparisons are untouched; what changes is which
    /// physical worker drains the queue, which is the point of the
    /// recovery. Skipped on single-device fabrics (nothing to adopt).
    fn maybe_fail_stop(&self, closed_epoch: usize) {
        let devices = self.shared.devices;
        if devices <= 1 || !self.shared.faulty.load(Ordering::Relaxed) {
            return;
        }
        let adoption = {
            let mut fs = self.shared.fault.plock();
            let Some(stop) = fs.plan.as_ref().and_then(|p| p.fail_stop) else {
                return;
            };
            let dead = stop.device;
            if stop.epoch != closed_epoch || dead >= devices || fs.route[dead] != dead {
                return;
            }
            let adopter = (0..devices)
                .find(|&d| d != dead && fs.route[d] == d)
                .expect("at least one surviving device");
            fs.route[dead] = adopter;
            fs.counters.faults += 1;
            fs.counters.recoveries += 1;
            Some((dead, adopter))
        };
        if let Some((dead, adopter)) = adoption {
            self.shared.reshard.fetch_add(1, Ordering::SeqCst);
            if let Some(tracer) = self.shared.tracer() {
                tracer.instant_on_device(
                    "fault",
                    FaultKind::DeviceFailStop.name(),
                    dead,
                    vec![("epoch", ArgValue::U64(closed_epoch as u64))],
                );
                tracer.instant_on_device(
                    "fault",
                    "reshard-adopt",
                    adopter,
                    vec![("adopted", ArgValue::U64(dead as u64))],
                );
            }
        }
    }

    /// Whether any counter has accumulated since the last epoch boundary.
    fn has_open_work(&self) -> bool {
        {
            let log = self.shared.log.plock();
            let idx = log.epochs.len();
            if log.records.iter().any(|r| r.epoch == idx) {
                return true;
            }
        }
        (0..self.shared.devices).any(|dev| {
            let a = self.shared.accounts[dev].plock();
            a.flops > 0.0
                || a.gen_entries > 0.0
                || a.launches > 0
                || a.busy_nanos > 0
                || a.stall_nanos > 0
        })
    }

    /// Collect everything recorded so far into a report, closing a trailing
    /// epoch under `tail_label` if work is pending. Flushes first so no job
    /// or copy is still in flight.
    pub fn report(&self, tail_label: &str) -> ExecReport {
        *self.shared.chain.plock() = None;
        self.barrier();
        self.drain_copies();
        if self.has_open_work() {
            self.close_epoch(tail_label);
        }
        let log = self.shared.log.plock();
        let epochs = log.epochs.clone();
        let transfers = log
            .records
            .iter()
            .map(|r| (r.epoch, r.t, r.retry))
            .collect();
        let wall = log.run_start.elapsed();
        drop(log);
        let arena_peaks = (0..self.shared.devices)
            .map(|dev| self.shared.arenas[dev].plock().peak_total)
            .collect();
        ExecReport {
            devices: self.shared.devices,
            mode: self.shared.mode,
            wire: self.wire(),
            epochs,
            transfers,
            arena_peaks,
            wall,
        }
    }

    /// Clear all accounting (reuse the fabric for another run). Flushes and
    /// invalidates outstanding prefetch tickets first.
    pub fn reset(&self) {
        *self.shared.chain.plock() = None;
        self.barrier();
        self.drain_copies();
        for dev in 0..self.shared.devices {
            *self.shared.accounts[dev].plock() = Account::default();
            *self.shared.arenas[dev].plock() = Arena::default();
            self.workers[dev].submitted.store(0, Ordering::SeqCst);
            *self.shared.progress[dev].done.plock() = 0;
        }
        {
            let mut st = self.shared.tickets.state.plock();
            st.gen += 1;
            st.done.clear();
            st.inflight = 0;
        }
        self.shared.hints.plock().clear();
        {
            // Accounting-scope fault state restarts with the run (the plan
            // and ticket deadline are configuration and survive, like the
            // wire precision), so the next run replays the identical fault
            // sequence from occurrence zero.
            let mut fs = self.shared.fault.plock();
            fs.occ.clear();
            fs.route = (0..self.shared.devices).collect();
            fs.error = None;
            fs.counters = FaultCounters::default();
        }
        self.shared.reshard.store(0, Ordering::SeqCst);
        let mut log = self.shared.log.plock();
        log.epochs.clear();
        log.records.clear();
        log.window_start = Instant::now();
        log.run_start = log.window_start;
    }
}

impl Drop for DeviceFabric {
    fn drop(&mut self) {
        for w in &self.workers {
            let _ = w.tx.send(Cmd::Stop);
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
        self.shared.copy.plock().shutdown = true;
        self.shared.copy_cv.notify_all();
        if let Some(h) = self.copy_engine.plock().take() {
            let _ = h.join();
        }
    }
}

impl ShardDispatch for DeviceFabric {
    fn devices(&self) -> usize {
        DeviceFabric::devices(self)
    }

    fn run<'a>(&self, jobs: Vec<ShardJob<'a>>) {
        self.run_jobs(jobs)
    }

    fn push_transfer(&self, t: Transfer) {
        self.record_transfer(t)
    }

    fn add_flops(&self, dev: usize, flops: f64) {
        self.record_flops(dev, flops)
    }

    fn add_gen_entries(&self, dev: usize, entries: f64) {
        self.record_gen_entries(dev, entries)
    }

    fn add_launches(&self, dev: usize, n: usize) {
        self.record_launches(dev, n)
    }

    fn arena_alloc(&self, dev: usize, bytes: usize) {
        self.arena_charge(dev, bytes)
    }

    fn epoch(&self, label: &str) {
        self.close_epoch(label)
    }

    fn mode(&self) -> PipelineMode {
        DeviceFabric::mode(self)
    }

    fn wire(&self) -> Precision {
        DeviceFabric::wire(self)
    }

    fn prefetch(&self, t: Transfer) -> u64 {
        self.prefetch_transfer(t)
    }

    unsafe fn enqueue<'a>(&self, dev: usize, deps: &[u64], job: ShardJob<'a>) -> u64 {
        // SAFETY: forwarded contract — the caller flushes before borrows end.
        unsafe { DeviceFabric::enqueue(self, dev, deps, job) }
    }

    fn flush(&self) {
        DeviceFabric::flush(self)
    }

    fn chain_begin(&self) {
        DeviceFabric::chain_begin(self)
    }

    fn chain_end(&self) {
        DeviceFabric::chain_end(self)
    }

    fn hint_prefetch(&self, key: FetchKey, t: Transfer) {
        DeviceFabric::hint_prefetch(self, key, t)
    }

    fn claim_or_fetch(&self, key: FetchKey, t: Transfer) -> u64 {
        DeviceFabric::claim_or_fetch(self, key, t)
    }

    fn cancel_hints(&self, stream: u8) {
        DeviceFabric::cancel_hints(self, stream)
    }

    fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        DeviceFabric::fault_plan(self)
    }

    fn fault_occurrence(&self, site: u64) -> u32 {
        DeviceFabric::fault_occurrence(self, site)
    }

    fn reshard_version(&self) -> u64 {
        DeviceFabric::reshard_version(self)
    }

    fn note_recovery(&self, site: &str) {
        DeviceFabric::note_recovery(self, site)
    }
}

/// Everything a sharded run recorded: per-epoch per-device timing and
/// modeled work, the full transfer queue, arena peaks, mode and wall time.
/// The measured totals are validated against [`h2_runtime::simulate`] by
/// [`crate::compare_with_simulator`].
#[derive(Clone, Debug)]
pub struct ExecReport {
    pub devices: usize,
    /// Execution discipline the run used (affects the makespan projection).
    pub mode: PipelineMode,
    /// Wire precision the run shipped blocks at (the width behind every
    /// transfer's `bytes`); the simulator cross-checks re-use it.
    pub wire: Precision,
    pub epochs: Vec<Epoch>,
    /// `(issuing epoch index, transfer, is_retry)` in queue order; retry
    /// entries are the charged re-transfers of a fault plan (same bytes
    /// as their parent, flagged so exporters can label them).
    pub transfers: Vec<(usize, Transfer, bool)>,
    /// Per-device peak arena bytes over the whole run (both banks).
    pub arena_peaks: Vec<usize>,
    /// Wall-clock of the whole accounting scope (reset to report).
    pub wall: Duration,
}

impl ExecReport {
    /// Modeled batched-kernel flops summed over devices and epochs
    /// (excluding `batchedGen` entries).
    pub fn total_flops(&self) -> f64 {
        self.epochs
            .iter()
            .flat_map(|e| e.per_device.iter())
            .map(|d| d.flops)
            .sum()
    }

    pub fn total_gen_entries(&self) -> f64 {
        self.epochs
            .iter()
            .flat_map(|e| e.per_device.iter())
            .map(|d| d.gen_entries)
            .sum()
    }

    /// Total work in flop-equivalents under a device model's per-entry
    /// generation cost — the simulator's compute currency.
    pub fn flop_equiv(&self, entry_cost: f64) -> f64 {
        self.total_flops() + entry_cost * self.total_gen_entries()
    }

    pub fn total_comm_bytes(&self) -> u64 {
        self.transfers.iter().map(|(_, t, _)| t.bytes).sum()
    }

    pub fn total_comm_messages(&self) -> usize {
        self.transfers.len()
    }

    pub fn total_launches(&self) -> usize {
        self.epochs
            .iter()
            .flat_map(|e| e.per_device.iter())
            .map(|d| d.launches)
            .sum()
    }

    /// Bytes moved for one transfer kind.
    pub fn bytes_of_kind(&self, kind: TransferKind) -> u64 {
        self.transfers
            .iter()
            .filter(|(_, t, _)| t.kind == kind)
            .map(|(_, t, _)| t.bytes)
            .sum()
    }

    /// Measured makespan under the epoch schedule: epochs are sequential,
    /// devices within an epoch run concurrently, so the makespan is the sum
    /// over epochs of the busiest device's busy + exposed-stall time.
    pub fn measured_makespan(&self) -> Duration {
        self.epochs
            .iter()
            .map(|e| {
                e.per_device
                    .iter()
                    .map(|d| d.busy + d.stall)
                    .max()
                    .unwrap_or_default()
            })
            .sum()
    }

    /// Total measured busy time per device across all epochs.
    pub fn busy_per_device(&self) -> Vec<Duration> {
        let mut out = vec![Duration::default(); self.devices];
        for e in &self.epochs {
            for (dev, d) in e.per_device.iter().enumerate() {
                out[dev] += d.busy;
            }
        }
        out
    }

    /// Total exposed transfer-wait time across devices and epochs.
    pub fn stall_total(&self) -> Duration {
        self.epochs
            .iter()
            .flat_map(|e| e.per_device.iter())
            .map(|d| d.stall)
            .sum()
    }

    /// Total hidden (overlapped) transfer flight time.
    pub fn overlapped_total(&self) -> Duration {
        self.epochs
            .iter()
            .flat_map(|e| e.per_device.iter())
            .map(|d| d.overlapped)
            .sum()
    }

    /// Total idle time across devices and epochs.
    pub fn idle_total(&self) -> Duration {
        self.epochs
            .iter()
            .flat_map(|e| e.per_device.iter())
            .map(|d| d.idle)
            .sum()
    }

    /// Project the *measured* counts through a [`DeviceModel`] the way the
    /// simulator projects a `LevelSpec`, honoring the run's execution
    /// discipline. Per epoch: the busiest device's modeled compute time,
    /// communication, and per-device launch overhead — with communication
    /// **serialized after compute** for a synchronous run (every copy was
    /// exposed) but **overlapped with compute** for a pipelined run
    /// (transfers were issued ahead on the copy engine, so only the excess
    /// over the epoch's compute can extend the critical path). Epochs are
    /// sequential.
    pub fn modeled_makespan(&self, model: &DeviceModel) -> f64 {
        (0..self.epochs.len())
            .map(|i| self.epoch_makespan(i, model))
            .sum()
    }

    /// The three schedule terms of epoch `i` under `model`:
    /// `(compute_max, comm, launch_overhead)` — the busiest device's modeled
    /// compute seconds, the epoch's link time, and the busiest device's
    /// launch overhead. How they combine depends on the run's discipline;
    /// [`ExecReport::epoch_makespan`] applies it.
    pub fn epoch_terms(&self, i: usize, model: &DeviceModel) -> (f64, f64, f64) {
        let e = &self.epochs[i];
        let compute_max = e
            .per_device
            .iter()
            .map(|d| (d.flops + model.entry_cost * d.gen_entries) / model.flops_per_sec)
            .fold(0.0, f64::max);
        let comm = e.comm_bytes as f64 / model.link_bandwidth
            + e.comm_messages as f64 * model.link_latency;
        let launches_max = e.per_device.iter().map(|d| d.launches).max().unwrap_or(0);
        (
            compute_max,
            comm,
            launches_max as f64 * model.launch_overhead,
        )
    }

    /// Modeled critical-path seconds of epoch `i`: compute, communication
    /// and launch overhead **serialized** for a synchronous run (every
    /// copy and every kernel-boundary barrier is exposed), but the **max**
    /// of the three for a pipelined one — transfers are issued ahead on the
    /// copy engine, and with job-level dependency chaining the host
    /// enqueues kernel *k+1* while kernel *k* still drains, so launch
    /// overhead also hides behind whichever of compute or communication
    /// dominates. [`ExecReport::modeled_makespan`] is exactly the sum of
    /// this over all epochs — the sim-drift attributor relies on that
    /// identity to make per-epoch shares sum to the whole.
    pub fn epoch_makespan(&self, i: usize, model: &DeviceModel) -> f64 {
        let (compute_max, comm, launch) = self.epoch_terms(i, model);
        match self.mode {
            PipelineMode::Synchronous => compute_max + comm + launch,
            PipelineMode::Pipelined => compute_max.max(comm).max(launch),
        }
    }

    /// Export the report's totals into an observability [`Registry`]
    /// (`h2_obs`): fabric byte/message/launch counters (total and per
    /// transfer kind) and per-device busy/stall/overlapped/idle nanosecond
    /// counters. The counter values are defined to equal the corresponding
    /// `ExecReport` accessors exactly — the reconciliation tests assert it.
    pub fn export_metrics(&self, registry: &h2_obs::Registry) {
        registry
            .counter("fabric.comm_bytes")
            .add(self.total_comm_bytes());
        registry
            .counter("fabric.comm_messages")
            .add(self.total_comm_messages() as u64);
        registry
            .counter("fabric.launches")
            .add(self.total_launches() as u64);
        registry
            .counter("fabric.epochs")
            .add(self.epochs.len() as u64);
        for kind in [
            TransferKind::OmegaFetch,
            TransferKind::ChildGather,
            TransferKind::PartialSum,
            TransferKind::VectorStage,
        ] {
            let bytes = self.bytes_of_kind(kind);
            if bytes > 0 {
                registry
                    .counter(&format!("fabric.bytes.{}", kind.name()))
                    .add(bytes);
            }
        }
        let busy = self.busy_per_device();
        for dev in 0..self.devices {
            let (mut stall, mut over, mut idle) = (0u64, 0u64, 0u64);
            for e in &self.epochs {
                let d = &e.per_device[dev];
                stall += d.stall.as_nanos() as u64;
                over += d.overlapped.as_nanos() as u64;
                idle += d.idle.as_nanos() as u64;
            }
            registry
                .counter(&format!("fabric.dev{dev}.busy_ns"))
                .add(busy[dev].as_nanos() as u64);
            registry
                .counter(&format!("fabric.dev{dev}.stall_ns"))
                .add(stall);
            registry
                .counter(&format!("fabric.dev{dev}.overlapped_ns"))
                .add(over);
            registry
                .counter(&format!("fabric.dev{dev}.idle_ns"))
                .add(idle);
        }
    }

    /// Modeled total compute seconds (device-invariant work currency).
    pub fn modeled_compute_total(&self, model: &DeviceModel) -> f64 {
        self.flop_equiv(model.entry_cost) / model.flops_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn jobs_run_on_distinct_worker_threads() {
        let fabric = DeviceFabric::new(3);
        let names = Mutex::new(Vec::new());
        let jobs: Vec<ShardJob<'_>> = (0..3)
            .map(|_| {
                Box::new(|| {
                    names
                        .lock()
                        .unwrap()
                        .push(std::thread::current().name().unwrap_or("?").to_string());
                }) as ShardJob<'_>
            })
            .collect();
        fabric.run_jobs(jobs);
        let mut got = names.into_inner().unwrap();
        got.sort();
        assert_eq!(got, vec!["h2-device-0", "h2-device-1", "h2-device-2"]);
    }

    #[test]
    fn run_blocks_until_all_jobs_complete() {
        let fabric = DeviceFabric::new(4);
        let hits = AtomicUsize::new(0);
        let jobs: Vec<ShardJob<'_>> = (0..4)
            .map(|_| {
                Box::new(|| {
                    std::thread::sleep(Duration::from_millis(5));
                    hits.fetch_add(1, Ordering::SeqCst);
                }) as ShardJob<'_>
            })
            .collect();
        fabric.run_jobs(jobs);
        assert_eq!(hits.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn panicking_job_propagates_instead_of_hanging() {
        let fabric = DeviceFabric::new(2);
        let jobs: Vec<ShardJob<'_>> = vec![
            Box::new(|| {}),
            Box::new(|| panic!("injected device fault")),
        ];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            fabric.run_jobs(jobs);
        }));
        assert!(result.is_err(), "the worker panic must reach the caller");
    }

    #[test]
    fn queue_preserves_per_device_order() {
        let fabric = DeviceFabric::pipelined(2);
        let seq = Mutex::new(Vec::new());
        let seq_ref = &seq;
        for i in 0..8 {
            // SAFETY: flushed below before `seq` is read or dropped.
            unsafe {
                fabric.enqueue(
                    i % 2,
                    &[],
                    Box::new(move || seq_ref.plock().push(i)) as ShardJob<'_>,
                );
            }
        }
        fabric.flush();
        let got = seq.into_inner().unwrap();
        let dev0: Vec<usize> = got.iter().copied().filter(|i| i % 2 == 0).collect();
        let dev1: Vec<usize> = got.iter().copied().filter(|i| i % 2 == 1).collect();
        assert_eq!(dev0, vec![0, 2, 4, 6], "device 0 must run in FIFO order");
        assert_eq!(dev1, vec![1, 3, 5, 7], "device 1 must run in FIFO order");
    }

    #[test]
    fn prefetch_tickets_gate_dependent_jobs() {
        let fabric = DeviceFabric::pipelined(1);
        fabric.set_transfer_delay(Some(Arc::new(|_| Duration::from_millis(20))));
        let t = Transfer {
            src: 0,
            dst: 0,
            bytes: 64,
            kind: TransferKind::OmegaFetch,
            prec: Precision::F64,
        };
        let ticket = fabric.prefetch_transfer(t);
        assert_ne!(ticket, 0);
        let seen = AtomicUsize::new(0);
        let t0 = Instant::now();
        // SAFETY: flushed below.
        unsafe {
            fabric.enqueue(
                0,
                &[ticket],
                Box::new(|| {
                    seen.store(1, Ordering::SeqCst);
                }) as ShardJob<'_>,
            );
        }
        fabric.flush();
        assert_eq!(seen.load(Ordering::SeqCst), 1);
        assert!(
            t0.elapsed() >= Duration::from_millis(15),
            "the job must have waited for the delayed copy"
        );
        let rep = fabric.report("tail");
        assert!(
            rep.stall_total() >= Duration::from_millis(10),
            "the exposed wait must be accounted as stall"
        );
    }

    #[test]
    fn enqueue_returns_completion_tickets_that_gate_jobs() {
        let fabric = DeviceFabric::pipelined(2);
        let order = Mutex::new(Vec::new());
        let order_ref = &order;
        // SAFETY: chain_end/flush below runs before `order` is read.
        let t0 = unsafe {
            fabric.enqueue(
                0,
                &[],
                Box::new(move || {
                    std::thread::sleep(Duration::from_millis(20));
                    order_ref.plock().push("producer");
                }) as ShardJob<'_>,
            )
        };
        assert_ne!(t0, 0);
        // SAFETY: flushed below.
        unsafe {
            fabric.enqueue(
                1,
                &[t0],
                Box::new(move || order_ref.plock().push("consumer")) as ShardJob<'_>,
            );
        }
        fabric.flush();
        assert_eq!(
            order.into_inner().unwrap(),
            vec!["producer", "consumer"],
            "the cross-device job must wait on the producer's ticket"
        );
    }

    #[test]
    fn chain_scope_orders_kernels_without_blocking_the_host() {
        let fabric = DeviceFabric::pipelined(2);
        let order = Mutex::new(Vec::new());
        let order_ref = &order;
        fabric.chain_begin();
        // Kernel A: slow job on device 0, fast on device 1.
        for (dev, ms, tag) in [(0usize, 25u64, "A0"), (1, 0, "A1")] {
            // SAFETY: chain_end below runs before `order` is read.
            unsafe {
                fabric.enqueue(
                    dev,
                    &[],
                    Box::new(move || {
                        std::thread::sleep(Duration::from_millis(ms));
                        order_ref.plock().push(tag);
                    }) as ShardJob<'_>,
                );
            }
        }
        let t_boundary = Instant::now();
        fabric.flush(); // chain boundary: must NOT block on A0
        let boundary_wait = t_boundary.elapsed();
        // Kernel B on device 1 must still wait for kernel A on device 0.
        // SAFETY: chain_end below.
        unsafe {
            fabric.enqueue(
                1,
                &[],
                Box::new(move || order_ref.plock().push("B1")) as ShardJob<'_>,
            );
        }
        fabric.chain_end();
        assert!(
            boundary_wait < Duration::from_millis(15),
            "the in-chain flush must not expose the slow device's drain"
        );
        let got = order.into_inner().unwrap();
        let pos = |t: &str| got.iter().position(|g| *g == t).unwrap();
        assert!(pos("A0") < pos("B1"), "B1 must wait on A0's ticket");
        assert!(pos("A1") < pos("B1"), "B1 follows A1 in device 1's FIFO");
    }

    #[test]
    fn chain_begin_is_a_noop_on_synchronous_fabrics() {
        let fabric = DeviceFabric::new(1);
        fabric.chain_begin();
        let hits = AtomicUsize::new(0);
        let hits_ref = &hits;
        // SAFETY: flushed below.
        unsafe {
            fabric.enqueue(
                0,
                &[],
                Box::new(move || {
                    std::thread::sleep(Duration::from_millis(5));
                    hits_ref.fetch_add(1, Ordering::SeqCst);
                }) as ShardJob<'_>,
            );
        }
        fabric.flush(); // must be a real barrier: no chain is open
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        fabric.chain_end();
    }

    #[test]
    fn epochs_snapshot_and_reset_counters() {
        let fabric = DeviceFabric::new(2);
        fabric.record_flops(0, 100.0);
        fabric.record_gen_entries(1, 7.0);
        fabric.record_launches(0, 3);
        fabric.arena_charge(0, 64);
        fabric.record_transfer(Transfer {
            src: 0,
            dst: 1,
            bytes: 128,
            kind: TransferKind::OmegaFetch,
            prec: Precision::F64,
        });
        fabric.close_epoch("e0");
        fabric.record_flops(0, 1.0);
        let rep = fabric.report("tail");
        assert_eq!(rep.epochs.len(), 2);
        assert_eq!(rep.epochs[0].per_device[0].flops, 100.0);
        assert_eq!(rep.epochs[0].per_device[1].gen_entries, 7.0);
        assert_eq!(rep.epochs[0].per_device[0].launches, 3);
        assert_eq!(rep.epochs[0].per_device[0].arena_peak, 64);
        assert_eq!(rep.epochs[0].comm_bytes, 128);
        assert_eq!(rep.epochs[0].comm_messages, 1);
        assert_eq!(rep.epochs[1].label, "tail");
        assert_eq!(rep.epochs[1].per_device[0].flops, 1.0);
        assert_eq!(rep.total_flops(), 101.0);
        assert_eq!(rep.total_comm_bytes(), 128);
        assert_eq!(rep.bytes_of_kind(TransferKind::OmegaFetch), 128);
        assert_eq!(rep.bytes_of_kind(TransferKind::ChildGather), 0);
    }

    #[test]
    fn double_buffered_arena_rotates_at_epoch_boundary() {
        let fabric = DeviceFabric::new(1);
        fabric.arena_charge(0, 100);
        fabric.arena_charge_ahead(0, 40);
        fabric.record_flops(0, 1.0);
        fabric.close_epoch("lvl0");
        // The standby bank became the current bank: charging on top of it
        // peaks at 40 + 60, and the epoch-0 peak saw both banks (140).
        fabric.arena_charge(0, 60);
        fabric.record_flops(0, 1.0);
        let rep = fabric.report("lvl1");
        assert_eq!(rep.epochs[0].per_device[0].arena_peak, 140);
        assert_eq!(rep.epochs[1].per_device[0].arena_peak, 100);
        assert_eq!(rep.arena_peaks[0], 140);
    }

    #[test]
    fn hint_claim_and_cancel_keep_byte_totals_exact() {
        let fabric = DeviceFabric::pipelined(2);
        let key = FetchKey {
            stream: 0,
            dst: 1,
            partner: 3,
            bytes: 256,
        };
        let t = Transfer {
            src: 0,
            dst: 1,
            bytes: 256,
            kind: TransferKind::OmegaFetch,
            prec: Precision::F64,
        };
        fabric.hint_prefetch(key, t);
        // Claim consumes the hint without recording a second transfer.
        let ticket = fabric.claim_or_fetch(key, t);
        assert_ne!(ticket, 0);
        fabric.record_flops(0, 1.0);
        let rep = fabric.report("tail");
        assert_eq!(rep.total_comm_bytes(), 256, "claimed hint counts once");
        // A stale hint is cancelled and leaves no bytes behind.
        fabric.reset();
        fabric.hint_prefetch(
            FetchKey {
                stream: 1,
                dst: 0,
                partner: 0,
                bytes: 64,
            },
            Transfer {
                src: 1,
                dst: 0,
                bytes: 64,
                kind: TransferKind::OmegaFetch,
                prec: Precision::F64,
            },
        );
        fabric.cancel_hints(1);
        fabric.record_flops(0, 1.0);
        let rep = fabric.report("tail");
        assert_eq!(rep.total_comm_bytes(), 0, "cancelled hint leaves nothing");
    }

    #[test]
    fn reset_clears_everything() {
        let fabric = DeviceFabric::new(2);
        fabric.record_flops(0, 5.0);
        fabric.close_epoch("x");
        fabric.reset();
        let rep = fabric.report("tail");
        assert!(rep.epochs.is_empty());
        assert_eq!(rep.total_flops(), 0.0);
    }

    #[test]
    fn modeled_makespan_tracks_busiest_device() {
        let fabric = DeviceFabric::new(2);
        fabric.record_flops(0, 2.0e10);
        fabric.record_flops(1, 1.0e10);
        fabric.close_epoch("lvl");
        let rep = fabric.report("tail");
        let model = DeviceModel {
            flops_per_sec: 1.0e10,
            link_bandwidth: 1.0e12,
            link_latency: 0.0,
            launch_overhead: 0.0,
            entry_cost: 20.0,
        };
        assert!((rep.modeled_makespan(&model) - 2.0).abs() < 1e-12);
        assert!((rep.modeled_compute_total(&model) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pipelined_projection_overlaps_comm_with_compute() {
        let model = DeviceModel {
            flops_per_sec: 1.0e10,
            link_bandwidth: 1.0e9,
            link_latency: 0.0,
            launch_overhead: 0.0,
            entry_cost: 20.0,
        };
        let mk = |fabric: Arc<DeviceFabric>| {
            fabric.record_flops(0, 1.0e10); // 1 s of compute
            let t = Transfer {
                src: 1,
                dst: 0,
                bytes: 5e8 as u64, // 0.5 s on the modeled link
                kind: TransferKind::OmegaFetch,
                prec: Precision::F64,
            };
            match fabric.mode() {
                PipelineMode::Synchronous => fabric.record_transfer(t),
                PipelineMode::Pipelined => {
                    fabric.prefetch_transfer(t);
                }
            }
            fabric.close_epoch("lvl");
            fabric.report("tail").modeled_makespan(&model)
        };
        let sync = mk(DeviceFabric::new(2));
        let pipe = mk(DeviceFabric::pipelined(2));
        assert!((sync - 1.5).abs() < 1e-12, "serialized: 1 s + 0.5 s");
        assert!((pipe - 1.0).abs() < 1e-12, "overlapped: max(1 s, 0.5 s)");
    }
}
