//! Wire-precision acceptance tests: with the fabric set to f32 wire
//! precision every cross-device byte total must (a) still exactly equal
//! the extended simulator's prediction at the reduced width, per epoch and
//! in total, and (b) be exactly half of the f64 baseline — the byte
//! formulas are linear in the element width and every count is even. The
//! arithmetic is untouched by the wire setting, so outputs stay bitwise
//! identical across widths.

use h2_core::{level_specs, SketchConfig};
use h2_dense::gaussian_mat;
use h2_kernels::{ExponentialKernel, KernelMatrix};
use h2_matrix::H2Matrix;
use h2_runtime::{DeviceModel, PipelineMode, Precision, Runtime};
use h2_sched::{
    compare_matvec_with_simulator, compare_with_simulator, shard_construct,
    shard_matvec_with_report, shard_ulv_solve_with_report, DeviceFabric,
};
use h2_solve::UlvFactor;
use h2_tree::{Admissibility, ClusterTree, Partition};
use std::sync::Arc;

const DEVICE_COUNTS: [usize; 3] = [1, 2, 4];

fn sym_problem(
    n: usize,
    leaf: usize,
    seed: u64,
) -> (
    Arc<ClusterTree>,
    Arc<Partition>,
    KernelMatrix<ExponentialKernel>,
) {
    let pts = h2_tree::uniform_cube(n, seed);
    let tree = Arc::new(ClusterTree::build(&pts, leaf));
    let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
    assert!(part.top_far_level(&tree).is_some(), "problem too small");
    let km = KernelMatrix::new(ExponentialKernel::default(), tree.points.clone());
    (tree, part, km)
}

fn cfg() -> SketchConfig {
    SketchConfig {
        initial_samples: 64,
        adaptive: false,
        ..Default::default()
    }
}

/// HSS-flavored problem for the solver arm (weak admissibility, 1-D line).
fn hss_matrix(n: usize, leaf: usize) -> H2Matrix {
    let pts: Vec<[f64; 3]> = (0..n).map(|i| [i as f64 / n as f64, 0.0, 0.0]).collect();
    let tree = Arc::new(ClusterTree::build(&pts, leaf));
    let part = Arc::new(Partition::build(&tree, Admissibility::Weak));
    let km = KernelMatrix::new(ExponentialKernel { l: 0.5 }, tree.points.clone());
    let rt = Runtime::parallel();
    let scfg = SketchConfig {
        tol: 1e-9,
        initial_samples: 64,
        max_rank: 96,
        ..Default::default()
    };
    let (mut h2, _) = h2_core::sketch_construct(&km, &km, tree, part, &rt, &scfg);
    // Diagonal shift for an invertible, well-conditioned operator.
    for i in 0..h2.dense.pairs.len() {
        let (s, t) = h2.dense.pairs[i];
        if s == t {
            let blk = &mut h2.dense.blocks[i];
            for j in 0..blk.rows() {
                blk[(j, j)] += 2.0;
            }
        }
    }
    h2
}

#[test]
fn construct_bytes_equal_simulator_at_both_widths() {
    let (tree, part, km) = sym_problem(1200, 16, 91);
    let model = DeviceModel::default();
    for devices in DEVICE_COUNTS {
        let mut totals = Vec::new();
        for wire in [Precision::F64, Precision::F32] {
            let fabric = DeviceFabric::new(devices);
            fabric.set_wire(wire);
            let (h2, _, report) =
                shard_construct(&fabric, &km, &km, tree.clone(), part.clone(), &cfg());
            assert_eq!(report.wire, wire);
            let specs = level_specs(&h2);
            let cmp = compare_with_simulator(&report, &specs, 64, &model);
            assert!(
                cmp.bytes_match(),
                "D={devices} wire={wire}: executor {} vs simulator {} bytes",
                cmp.measured_bytes,
                cmp.predicted_bytes
            );
            totals.push(report.total_comm_bytes());
        }
        if devices > 1 {
            assert!(totals[0] > 0, "D={devices}: expected cross-device traffic");
        }
        assert_eq!(
            totals[1] * 2,
            totals[0],
            "D={devices}: f32 wire must move exactly half the bytes"
        );
    }
}

#[test]
fn matvec_bytes_and_makespan_equal_simulator_at_both_widths() {
    let (tree, part, km) = sym_problem(1200, 16, 92);
    let rt = Runtime::parallel();
    let (h2, _) = h2_core::sketch_construct(&km, &km, tree, part, &rt, &cfg());
    let x = gaussian_mat(h2.n(), 4, 93);
    let model = DeviceModel::default();
    for devices in DEVICE_COUNTS {
        for mode in [PipelineMode::Synchronous, PipelineMode::Pipelined] {
            let mut totals = Vec::new();
            let mut outputs = Vec::new();
            for wire in [Precision::F64, Precision::F32] {
                let fabric = DeviceFabric::with_config(devices, mode, Default::default());
                fabric.set_wire(wire);
                let (y, report) = shard_matvec_with_report(&fabric, &h2, &x, false);
                let cmp = compare_matvec_with_simulator(&report, &h2, 4, false, &model);
                assert!(
                    cmp.bytes_match(),
                    "D={devices} {mode:?} wire={wire}: executor {} vs simulator {} bytes",
                    cmp.measured_bytes,
                    cmp.predicted_bytes
                );
                assert!(
                    cmp.flops_rel_err() < 1e-12,
                    "D={devices} {mode:?} wire={wire}: flop totals diverged"
                );
                let ratio = cmp.makespan_ratio();
                assert!(
                    (ratio - 1.0).abs() < 1e-9,
                    "D={devices} {mode:?} wire={wire}: makespan ratio {ratio}"
                );
                // Per-epoch traffic must line up, not just the totals.
                let sim = h2_sched::simulate_matvec(&h2, 4, devices, mode, wire, false);
                assert_eq!(report.epochs.len(), sim.epochs.len());
                for (got, want) in report.epochs.iter().zip(sim.epochs.iter()) {
                    assert_eq!(got.label, want.label);
                    assert_eq!(
                        got.comm_bytes, want.comm_bytes,
                        "D={devices} {mode:?} wire={wire} epoch {}: bytes",
                        got.label
                    );
                    assert_eq!(
                        got.comm_messages, want.comm_messages,
                        "D={devices} {mode:?} wire={wire} epoch {}: messages",
                        got.label
                    );
                }
                totals.push(report.total_comm_bytes());
                outputs.push(y);
            }
            assert_eq!(
                totals[1] * 2,
                totals[0],
                "D={devices} {mode:?}: f32 wire must move exactly half the bytes"
            );
            let mut diff = outputs[0].clone();
            diff.axpy(-1.0, &outputs[1]);
            assert_eq!(
                diff.norm_max(),
                0.0,
                "wire precision is accounting only: outputs must be bitwise equal"
            );
        }
    }
}

#[test]
fn solve_bytes_equal_simulator_at_both_widths() {
    let h2 = hss_matrix(640, 32);
    let ulv = UlvFactor::new(&h2).unwrap();
    let b = gaussian_mat(h2.n(), 2, 94);
    let spec = ulv.solve_spec(2);
    let model = DeviceModel::default();
    for devices in DEVICE_COUNTS {
        let mut totals = Vec::new();
        let mut outputs = Vec::new();
        for wire in [Precision::F64, Precision::F32] {
            let fabric = DeviceFabric::new(devices);
            fabric.set_wire(wire);
            let (x, report) = shard_ulv_solve_with_report(&fabric, &ulv, &b);
            let cmp = h2_sched::compare_solve_with_simulator(&report, &spec, &model);
            assert!(
                cmp.bytes_match(),
                "D={devices} wire={wire}: executor {} vs simulator {} bytes",
                cmp.measured_bytes,
                cmp.predicted_bytes
            );
            totals.push(report.total_comm_bytes());
            outputs.push(x);
        }
        if devices > 1 {
            assert!(totals[0] > 0, "D={devices}: expected sweep traffic");
        }
        assert_eq!(
            totals[1] * 2,
            totals[0],
            "D={devices}: f32 wire must move exactly half the sweep bytes"
        );
        let mut diff = outputs[0].clone();
        diff.axpy(-1.0, &outputs[1]);
        assert_eq!(diff.norm_max(), 0.0, "solve outputs must be bitwise equal");
    }
}

/// Wire precision survives a fabric reset (it is configuration, not
/// accounting state).
#[test]
fn wire_setting_survives_reset() {
    let fabric = DeviceFabric::new(2);
    assert_eq!(fabric.wire(), Precision::F64);
    fabric.set_wire(Precision::F32);
    fabric.reset();
    assert_eq!(fabric.wire(), Precision::F32);
}
