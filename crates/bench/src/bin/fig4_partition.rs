//! Fig. 4(a,b): block partitioning of a hierarchical matrix for a 3-D
//! problem with admissibility η = 0.5 and 0.7.
//!
//! The paper renders the partitions as block pictures for N = 2^15; we
//! report the equivalent quantitative content: per-level admissible /
//! inadmissible block counts, sparsity constants, and the dense/low-rank
//! area split ("smaller η leads to more refined partitioning ... and hence
//! larger sparsity constants Csp", §II.A).
//!
//! Usage: `cargo run --release -p h2-bench --bin fig4_partition -- [--n 32768] [--leaf 64]
//!         [--trace trace.json]`
//!
//! (`--trace` is accepted for uniformity with the other bins; partitioning
//! runs no traced runtime, so the trace records only host-side spans.)

use h2_bench::{header, row, Args, TraceSink};
use h2_tree::{Admissibility, ClusterTree, Partition};

fn main() {
    let args = Args::parse();
    let n: usize = args.get("n", 1 << 15);
    let leaf: usize = args.get("leaf", 64);
    let sink = TraceSink::from_args(&args);
    let pts = h2_tree::uniform_cube(n, 0xF164);
    let tree = ClusterTree::build(&pts, leaf);
    println!("# Fig. 4: block partition statistics (N = {n}, leaf = {leaf})\n");

    for eta in [0.5, 0.7] {
        let part = Partition::build(&tree, Admissibility::Strong { eta });
        assert!(part.is_complete(&tree), "partition must tile the matrix");
        println!("## eta = {eta}\n");
        header(&[
            "level",
            "nodes",
            "adm blocks",
            "Csp(adm)",
            "dense blocks",
            "Csp(dense)",
        ]);
        let mut adm_area = 0usize;
        let mut dense_area = 0usize;
        for s in part.level_stats(&tree) {
            row(&[
                s.level.to_string(),
                s.nodes.to_string(),
                s.far_blocks.to_string(),
                s.csp_far.to_string(),
                s.near_blocks.to_string(),
                s.csp_near.to_string(),
            ]);
        }
        for (id, list) in part.far_of.iter().enumerate() {
            for &t in list {
                adm_area += tree.nodes[id].len() * tree.nodes[t].len();
            }
        }
        for (id, list) in part.near_of.iter().enumerate() {
            for &t in list {
                dense_area += tree.nodes[id].len() * tree.nodes[t].len();
            }
        }
        let total = (n * n) as f64;
        println!(
            "\nadmissible area: {:.2}% of the matrix, dense area: {:.2}% \
             (areas tile exactly: {})\n",
            100.0 * adm_area as f64 / total,
            100.0 * dense_area as f64 / total,
            adm_area + dense_area == n * n
        );
    }
    sink.finish();
}
