//! ULV direct factorization of weak-admissibility (HSS-pattern) H2 matrices.
//!
//! The paper's bottom-up construction is motivated by fast H2 *arithmetic* —
//! inversion is its stated follow-up. For the weak-admissibility case the
//! classical ULV elimination (Chandrasekaran–Gu–Pals) applies directly to
//! our representation and gives an exact O(N k²) direct solver for the
//! *compressed* operator:
//!
//! At each node `τ` with reduced diagonal block `D_τ` (size `m`) and reduced
//! basis `W_τ` (`m × k`):
//!
//! 1. factor `W_τ = Q_τ [R_τ; 0]` (full Householder QR) and rotate
//!    `D̃ = Q_τᵀ D_τ Q_τ` — in the rotated coordinates all off-diagonal
//!    coupling of `τ` lives in the *top* `k` rows/columns,
//! 2. eliminate the bottom `e = m - k` rows/columns with an LU of `D̃₂₂`
//!    (they couple to nothing else), leaving the `k × k` Schur complement
//!    `S_τ = D̃₁₁ - D̃₁₂ D̃₂₂⁻¹ D̃₂₁`,
//! 3. pass up: the parent's reduced diagonal block stacks the children's
//!    Schur complements around the rotated sibling coupling
//!    `R_{c1} B_{c1,c2} R_{c2}ᵀ`, and the parent's reduced basis is
//!    `blkdiag(R_{c1}, R_{c2}) · [E_{c1}; E_{c2}]`.
//!
//! The root system is dense and small; one LU finishes the factorization.
//! The factorization is exact for the represented matrix (up to roundoff),
//! so `‖K_H2 x - b‖ ≈ ε_machine`, while `‖K x - b‖` reflects the
//! construction tolerance. A loosely-compressed HSS + ULV therefore makes an
//! effective *preconditioner* for iterating on the exact operator — the
//! multifrontal use case the paper's introduction motivates.

use crate::precond::Preconditioner;
use h2_dense::{gemm, lu_factor, qr_factor, LuFactor, Mat, Op, QrFactor};
use h2_matrix::H2Matrix;
use h2_tree::{Admissibility, ClusterTree};
use std::sync::Arc;

/// Why a ULV factorization could not be computed.
#[derive(Debug)]
pub enum UlvError {
    /// The H2 matrix was not built over a weak-admissibility partition.
    NotWeakPartition,
    /// The H2 matrix stores an independent column side; the elimination
    /// assumes the symmetric layout (`V = U`, `B₂₁ = B₁₂ᵀ`).
    NotSymmetric,
    /// A rotated pivot block `D̃₂₂` was exactly singular at this node.
    SingularBlock(usize),
    /// The assembled root system was singular.
    SingularRoot,
}

impl std::fmt::Display for UlvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UlvError::NotWeakPartition => {
                write!(f, "ULV requires a weak-admissibility (HSS) partition")
            }
            UlvError::NotSymmetric => {
                write!(f, "ULV requires the symmetric side layout (V = U); the unsymmetric LU-flavored elimination is future work")
            }
            UlvError::SingularBlock(id) => {
                write!(f, "singular rotated pivot block at node {id}")
            }
            UlvError::SingularRoot => write!(f, "singular root system"),
        }
    }
}

impl std::error::Error for UlvError {}

/// Per-node factorization data.
struct NodeFactor {
    /// Full-Q Householder factorization of the reduced basis `W_τ`.
    qr: QrFactor,
    /// Retained (skeleton) variable count.
    k: usize,
    /// Eliminated variable count (`m - k`).
    e: usize,
    /// LU of the rotated pivot block `D̃₂₂`.
    lu22: LuFactor,
    /// `D̃₁₂` (`k × e`).
    d12: Mat,
    /// `D̃₂₁` (`e × k`).
    d21: Mat,
    /// Triangular factor `R_τ` (`k × k`) of the reduced basis.
    r: Mat,
}

/// A ULV factorization of a weak-admissibility H2 matrix.
pub struct UlvFactor {
    tree: Arc<ClusterTree>,
    /// Per node id; `None` for the root and any untouched nodes.
    nodes: Vec<Option<NodeFactor>>,
    /// LU of the assembled root system.
    root_lu: LuFactor,
    /// Size of the root system.
    root_size: usize,
    n: usize,
}

impl UlvFactor {
    /// Factor a weak-admissibility H2 matrix. O(N k²).
    ///
    /// Requires the symmetric side layout: the elimination reads only the
    /// row basis and the upper-triangle coupling blocks, assuming
    /// `B₂₁ = B₁₂ᵀ` — silently wrong for a stored column side.
    pub fn new(h2: &H2Matrix) -> Result<Self, UlvError> {
        if !matches!(h2.partition.rule, Admissibility::Weak) {
            return Err(UlvError::NotWeakPartition);
        }
        if !h2.is_symmetric() {
            return Err(UlvError::NotSymmetric);
        }
        let tree = h2.tree.clone();
        let leaf_level = tree.leaf_level();
        let nnodes = tree.nodes.len();
        let mut nodes: Vec<Option<NodeFactor>> = (0..nnodes).map(|_| None).collect();

        // Reduced diagonal blocks, initialized at the leaves from the stored
        // dense blocks.
        let mut dloc: Vec<Option<Mat>> = (0..nnodes).map(|_| None).collect();
        // Schur complements awaiting assembly into the parent.
        let mut schur: Vec<Option<Mat>> = (0..nnodes).map(|_| None).collect();

        if leaf_level == 0 {
            // Single dense block: plain LU.
            let (blk, _) = h2.dense.get(0, 0).expect("root dense block");
            let root_size = blk.rows();
            let root_lu = lu_factor(blk.clone()).ok_or(UlvError::SingularRoot)?;
            return Ok(UlvFactor {
                tree,
                nodes,
                root_lu,
                root_size,
                n: h2.n(),
            });
        }

        for id in tree.level(leaf_level) {
            let (blk, _) = h2.dense.get(id, id).expect("leaf diagonal block");
            dloc[id] = Some(blk.clone());
        }

        for l in (1..=leaf_level).rev() {
            // Process every node at this level.
            for id in tree.level(l) {
                let d = dloc[id].take().expect("reduced diagonal block");
                let m = d.rows();
                // Reduced basis: the leaf basis itself, or the stacked
                // transfer scaled by the children's R factors.
                let w = if l == leaf_level {
                    h2.basis[id].clone()
                } else {
                    let (c1, c2) = tree.nodes[id].children.unwrap();
                    let r1 = &nodes[c1].as_ref().unwrap().r;
                    let r2 = &nodes[c2].as_ref().unwrap().r;
                    let et = &h2.basis[id]; // (k1 + k2) x k
                    let k1 = r1.rows();
                    let k = et.cols();
                    let mut w = Mat::zeros(m, k);
                    if k1 > 0 {
                        gemm(
                            Op::NoTrans,
                            Op::NoTrans,
                            1.0,
                            r1.rf(),
                            et.view(0, 0, k1, k),
                            0.0,
                            w.view_mut(0, 0, k1, k),
                        );
                    }
                    let k2 = r2.rows();
                    if k2 > 0 {
                        gemm(
                            Op::NoTrans,
                            Op::NoTrans,
                            1.0,
                            r2.rf(),
                            et.view(k1, 0, k2, k),
                            0.0,
                            w.view_mut(k1, 0, k2, k),
                        );
                    }
                    w
                };
                assert_eq!(w.rows(), m, "reduced basis row mismatch at node {id}");
                let k = w.cols().min(m);
                let e = m - k;

                // Rotate: D̃ = Qᵀ D Q.
                let qr = qr_factor(w);
                let mut dt = d;
                qr.apply_qt(&mut dt.rm());
                let mut dtt = dt.transpose();
                qr.apply_qt(&mut dtt.rm());
                let drot = dtt.transpose();

                let d11 = drot.view(0, 0, k, k).to_mat();
                let d12 = drot.view(0, k, k, e).to_mat();
                let d21 = drot.view(k, 0, e, k).to_mat();
                let d22 = drot.view(k, k, e, e).to_mat();
                let lu22 = lu_factor(d22).ok_or(UlvError::SingularBlock(id))?;

                // S = D̃₁₁ - D̃₁₂ D̃₂₂⁻¹ D̃₂₁
                let mut s = d11;
                if e > 0 && k > 0 {
                    let x = lu22.solve(&d21);
                    gemm(
                        Op::NoTrans,
                        Op::NoTrans,
                        -1.0,
                        d12.rf(),
                        x.rf(),
                        1.0,
                        s.rm(),
                    );
                }
                let r = qr.r();
                schur[id] = Some(s);
                nodes[id] = Some(NodeFactor {
                    qr,
                    k,
                    e,
                    lu22,
                    d12,
                    d21,
                    r,
                });
            }

            // Assemble parents' reduced diagonal blocks.
            for p in tree.level(l - 1) {
                let (c1, c2) = tree.nodes[p].children.unwrap();
                let s1 = schur[c1].take().expect("child Schur");
                let s2 = schur[c2].take().expect("child Schur");
                let (k1, k2) = (s1.rows(), s2.rows());
                let nf1 = nodes[c1].as_ref().unwrap();
                let nf2 = nodes[c2].as_ref().unwrap();
                // Rotated sibling coupling: R₁ B₁₂ R₂ᵀ.
                let c12 = match h2.coupling.get(c1, c2) {
                    Some((b, transposed)) => {
                        let b12 = if transposed { b.transpose() } else { b.clone() };
                        let t = h2_dense::matmul(Op::NoTrans, Op::Trans, b12.rf(), nf2.r.rf());
                        h2_dense::matmul(Op::NoTrans, Op::NoTrans, nf1.r.rf(), t.rf())
                    }
                    None => Mat::zeros(k1, k2),
                };
                let mut d = Mat::zeros(k1 + k2, k1 + k2);
                d.view_mut(0, 0, k1, k1).copy_from(s1.rf());
                d.view_mut(k1, k1, k2, k2).copy_from(s2.rf());
                d.view_mut(0, k1, k1, k2).copy_from(c12.rf());
                let c21 = c12.transpose();
                d.view_mut(k1, 0, k2, k1).copy_from(c21.rf());
                dloc[p] = Some(d);
            }
        }

        let root_d = dloc[0].take().expect("root system");
        let root_size = root_d.rows();
        let root_lu = lu_factor(root_d).ok_or(UlvError::SingularRoot)?;
        Ok(UlvFactor {
            tree,
            nodes,
            root_lu,
            root_size,
            n: h2.n(),
        })
    }

    /// Number of unknowns.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Size of the final dense root system (a quality indicator: small root
    /// systems mean the compression carried most of the elimination).
    pub fn root_size(&self) -> usize {
        self.root_size
    }

    /// Solve `K_H2 X = B` for a block of right-hand sides (tree-permuted
    /// coordinates). O(N k) per column.
    pub fn solve(&self, b: &Mat) -> Mat {
        assert_eq!(b.rows(), self.n, "ulv solve: rhs rows");
        let d = b.cols();
        let tree = &self.tree;
        let leaf_level = tree.leaf_level();
        let nnodes = tree.nodes.len();

        if leaf_level == 0 {
            return self.root_lu.solve(b);
        }

        // ---- forward pass: rotate, eliminate, reduce ----
        let mut bred: Vec<Option<Mat>> = (0..nnodes).map(|_| None).collect();
        let mut b2s: Vec<Option<Mat>> = (0..nnodes).map(|_| None).collect();
        for id in tree.level(leaf_level) {
            let (lo, hi) = tree.range(id);
            bred[id] = Some(b.view(lo, 0, hi - lo, d).to_mat());
        }
        for l in (1..=leaf_level).rev() {
            for id in tree.level(l) {
                let nf = self.nodes[id].as_ref().expect("node factor");
                let mut bl = bred[id].take().expect("local rhs");
                nf.qr.apply_qt(&mut bl.rm());
                let b1 = bl.view(0, 0, nf.k, d).to_mat();
                let b2 = bl.view(nf.k, 0, nf.e, d).to_mat();
                // b₁' = b₁ - D̃₁₂ D̃₂₂⁻¹ b₂
                let mut b1r = b1;
                if nf.e > 0 && nf.k > 0 {
                    let z = nf.lu22.solve(&b2);
                    gemm(
                        Op::NoTrans,
                        Op::NoTrans,
                        -1.0,
                        nf.d12.rf(),
                        z.rf(),
                        1.0,
                        b1r.rm(),
                    );
                }
                b2s[id] = Some(b2);
                bred[id] = Some(b1r);
            }
            for p in tree.level(l - 1) {
                let (c1, c2) = tree.nodes[p].children.unwrap();
                let t1 = bred[c1].take().expect("child rhs");
                let t2 = bred[c2].take().expect("child rhs");
                bred[p] = Some(t1.vcat(&t2));
            }
        }

        // ---- root solve ----
        let xroot = self.root_lu.solve(&bred[0].take().expect("root rhs"));

        // ---- backward pass: distribute, back-substitute, un-rotate ----
        let mut x = Mat::zeros(self.n, d);
        let mut xred: Vec<Option<Mat>> = (0..nnodes).map(|_| None).collect();
        {
            let (c1, c2) = tree.nodes[0].children.unwrap();
            let k1 = self.nodes[c1].as_ref().unwrap().k;
            let k2 = self.nodes[c2].as_ref().unwrap().k;
            xred[c1] = Some(xroot.view(0, 0, k1, d).to_mat());
            xred[c2] = Some(xroot.view(k1, 0, k2, d).to_mat());
        }
        for l in 1..=leaf_level {
            for id in tree.level(l) {
                let nf = self.nodes[id].as_ref().expect("node factor");
                let x1 = xred[id].take().expect("skeleton solution");
                let b2 = b2s[id].take().expect("cached b2");
                // x₂ = D̃₂₂⁻¹ (b₂ - D̃₂₁ x₁)
                let mut rhs2 = b2;
                if nf.e > 0 && nf.k > 0 {
                    gemm(
                        Op::NoTrans,
                        Op::NoTrans,
                        -1.0,
                        nf.d21.rf(),
                        x1.rf(),
                        1.0,
                        rhs2.rm(),
                    );
                }
                let x2 = nf.lu22.solve(&rhs2);
                let mut xt = x1.vcat(&x2);
                nf.qr.apply_q(&mut xt.rm());
                if l == leaf_level {
                    let (lo, hi) = tree.range(id);
                    x.view_mut(lo, 0, hi - lo, d)
                        .copy_from(xt.view(0, 0, hi - lo, d));
                } else {
                    let (c1, c2) = tree.nodes[id].children.unwrap();
                    let k1 = self.nodes[c1].as_ref().unwrap().k;
                    let k2 = self.nodes[c2].as_ref().unwrap().k;
                    xred[c1] = Some(xt.view(0, 0, k1, d).to_mat());
                    xred[c2] = Some(xt.view(k1, 0, k2, d).to_mat());
                }
            }
        }
        x
    }

    /// Solve for a single right-hand side.
    pub fn solve_vec(&self, b: &[f64]) -> Vec<f64> {
        let bm = Mat::from_vec(b.len(), 1, b.to_vec());
        self.solve(&bm).as_slice().to_vec()
    }
}

impl Preconditioner for UlvFactor {
    fn n(&self) -> usize {
        self.n
    }

    fn apply_inv(&self, r: &Mat) -> Mat {
        self.solve(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2_core::{sketch_construct, SketchConfig};
    use h2_dense::{gaussian_mat, DenseOp, EntryAccess};
    use h2_kernels::{ExponentialKernel, KernelMatrix};
    use h2_runtime::Runtime;
    use h2_tree::Partition;

    /// HSS from Algorithm 1 on a weak partition over 1-D geometry (the
    /// setting where weak admissibility genuinely compresses).
    fn hss_1d(n: usize, tol: f64, _seed: u64) -> (H2Matrix, KernelMatrix<ExponentialKernel>) {
        let pts: Vec<[f64; 3]> = (0..n).map(|i| [i as f64 / n as f64, 0.0, 0.0]).collect();
        let tree = Arc::new(ClusterTree::build(&pts, 32));
        let part = Arc::new(Partition::build(&tree, Admissibility::Weak));
        let km = KernelMatrix::new(ExponentialKernel { l: 0.5 }, tree.points.clone());
        let rt = Runtime::parallel();
        let cfg = SketchConfig {
            tol,
            initial_samples: 64,
            max_rank: 96,
            ..Default::default()
        };
        let (h2, _) = sketch_construct(&km, &km, tree, part, &rt, &cfg);
        (h2, km)
    }

    /// The unified `H2Matrix` can carry a column side; ULV must refuse it
    /// rather than silently assume `V = U` / `B₂₁ = B₁₂ᵀ`.
    #[test]
    fn ulv_rejects_unsymmetric_layout() {
        let n = 256;
        let pts: Vec<[f64; 3]> = (0..n).map(|i| [i as f64 / n as f64, 0.0, 0.0]).collect();
        let tree = Arc::new(ClusterTree::build(&pts, 32));
        let part = Arc::new(Partition::build(&tree, Admissibility::Weak));
        let km = KernelMatrix::new(ExponentialKernel { l: 0.5 }, tree.points.clone());
        let rt = Runtime::parallel();
        let cfg = SketchConfig {
            initial_samples: 48,
            max_rank: 96,
            ..Default::default()
        };
        let (h2, _) = h2_core::sketch_construct_unsym(&km, &km, tree, part, &rt, &cfg);
        assert!(matches!(UlvFactor::new(&h2), Err(UlvError::NotSymmetric)));
    }

    #[test]
    fn ulv_solves_the_representation_exactly() {
        let (h2, _) = hss_1d(512, 1e-9, 21);
        // Regularize: K + 2I keeps the system comfortably nonsingular. Build
        // the shifted representation by adding 2I to the diagonal blocks.
        let mut h2 = h2;
        for i in 0..h2.dense.pairs.len() {
            let (s, t) = h2.dense.pairs[i];
            if s == t {
                let blk = &mut h2.dense.blocks[i];
                for j in 0..blk.rows() {
                    blk[(j, j)] += 2.0;
                }
            }
        }
        let ulv = UlvFactor::new(&h2).unwrap();
        let b = gaussian_mat(512, 3, 22);
        let x = ulv.solve(&b);
        // Residual against the H2 matvec: the factorization is exact for the
        // representation.
        let ax = h2.apply_permuted_mat(&x);
        let mut r = ax;
        r.axpy(-1.0, &b);
        let rel = r.norm_fro() / b.norm_fro();
        assert!(rel < 1e-10, "ULV representation residual {rel}");
    }

    #[test]
    fn ulv_solution_matches_dense_solve() {
        let (h2, km) = hss_1d(400, 1e-10, 23);
        let mut h2 = h2;
        for i in 0..h2.dense.pairs.len() {
            let (s, t) = h2.dense.pairs[i];
            if s == t {
                let blk = &mut h2.dense.blocks[i];
                for j in 0..blk.rows() {
                    blk[(j, j)] += 2.0;
                }
            }
        }
        let ulv = UlvFactor::new(&h2).unwrap();
        let b = gaussian_mat(400, 2, 24);
        let x = ulv.solve(&b);

        let mut dense = Mat::from_fn(400, 400, |i, j| km.entry(i, j));
        for i in 0..400 {
            dense[(i, i)] += 2.0;
        }
        let lu = lu_factor(dense).unwrap();
        let want = lu.solve(&b);
        let mut d = x;
        d.axpy(-1.0, &want);
        let rel = d.norm_fro() / want.norm_fro();
        // Construction error (1e-10) propagates through the inverse.
        assert!(rel < 1e-6, "ULV vs dense solve rel {rel}");
    }

    #[test]
    fn ulv_rejects_strong_partition() {
        let pts = h2_tree::uniform_cube(600, 25);
        let tree = Arc::new(ClusterTree::build(&pts, 16));
        let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
        let km = KernelMatrix::new(ExponentialKernel::default(), tree.points.clone());
        let rt = Runtime::parallel();
        let (h2, _) = sketch_construct(&km, &km, tree, part, &rt, &SketchConfig::default());
        assert!(matches!(
            UlvFactor::new(&h2),
            Err(UlvError::NotWeakPartition)
        ));
    }

    #[test]
    fn ulv_single_leaf_tree() {
        let pts: Vec<[f64; 3]> = (0..20).map(|i| [i as f64, 0.0, 0.0]).collect();
        let tree = Arc::new(ClusterTree::build(&pts, 32));
        let part = Arc::new(Partition::build(&tree, Admissibility::Weak));
        let km = KernelMatrix::new(ExponentialKernel { l: 5.0 }, tree.points.clone());
        let rt = Runtime::sequential();
        let (mut h2, _) = sketch_construct(&km, &km, tree, part, &rt, &SketchConfig::default());
        for i in 0..h2.dense.pairs.len() {
            let blk = &mut h2.dense.blocks[i];
            for j in 0..blk.rows() {
                blk[(j, j)] += 1.0;
            }
        }
        let ulv = UlvFactor::new(&h2).unwrap();
        let b = gaussian_mat(20, 1, 26);
        let x = ulv.solve(&b);
        let ax = h2.apply_permuted_mat(&x);
        let mut r = ax;
        r.axpy(-1.0, &b);
        assert!(r.norm_fro() / b.norm_fro() < 1e-12);
    }

    #[test]
    fn loose_ulv_preconditions_exact_operator() {
        use crate::krylov::pcg;
        use crate::precond::Identity;
        // Exact operator: shifted covariance. Preconditioner: ULV of a
        // loosely compressed HSS of the same operator.
        let n = 512;
        let pts: Vec<[f64; 3]> = (0..n).map(|i| [i as f64 / n as f64, 0.0, 0.0]).collect();
        let tree = Arc::new(ClusterTree::build(&pts, 32));
        let part = Arc::new(Partition::build(&tree, Admissibility::Weak));
        let km = KernelMatrix::new(ExponentialKernel { l: 0.5 }, tree.points.clone());
        let mut dense = Mat::from_fn(n, n, |i, j| km.entry(i, j));
        for i in 0..n {
            dense[(i, i)] += 0.1; // mildly regularized: ill-conditioned enough
        }
        let op = DenseOp::new(dense);

        let rt = Runtime::parallel();
        let cfg = SketchConfig {
            tol: 1e-4,
            initial_samples: 48,
            ..Default::default()
        };
        let (mut hss, _) = sketch_construct(&op, &op, tree, part, &rt, &cfg);
        let _ = &mut hss;
        let ulv = UlvFactor::new(&hss).unwrap();

        let b: Vec<f64> = (0..n).map(|i| (0.01 * i as f64).sin()).collect();
        let plain = pcg(&op, &Identity { n }, &b, 400, 1e-10);
        let prec = pcg(&op, &ulv, &b, 400, 1e-10);
        assert!(
            prec.converged,
            "preconditioned CG residual {}",
            prec.relative_residual
        );
        assert!(
            prec.iterations * 3 < plain.iterations.max(1),
            "ULV precond {} its vs plain {} its",
            prec.iterations,
            plain.iterations
        );
    }

    #[test]
    fn multiple_rhs_consistent_with_single() {
        let (mut h2, _) = hss_1d(256, 1e-9, 27);
        for i in 0..h2.dense.pairs.len() {
            let (s, t) = h2.dense.pairs[i];
            if s == t {
                let blk = &mut h2.dense.blocks[i];
                for j in 0..blk.rows() {
                    blk[(j, j)] += 2.0;
                }
            }
        }
        let ulv = UlvFactor::new(&h2).unwrap();
        let b = gaussian_mat(256, 4, 28);
        let x_all = ulv.solve(&b);
        for c in 0..4 {
            let bc: Vec<f64> = b.col(c).to_vec();
            let xc = ulv.solve_vec(&bc);
            for i in 0..256 {
                assert!((x_all[(i, c)] - xc[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn root_size_reflects_compression() {
        let (mut h2, _) = hss_1d(512, 1e-8, 29);
        for i in 0..h2.dense.pairs.len() {
            let (s, t) = h2.dense.pairs[i];
            if s == t {
                let blk = &mut h2.dense.blocks[i];
                for j in 0..blk.rows() {
                    blk[(j, j)] += 2.0;
                }
            }
        }
        let ulv = UlvFactor::new(&h2).unwrap();
        assert!(
            ulv.root_size() < 512 / 2,
            "root system {} should be far smaller than N",
            ulv.root_size()
        );
    }
}
