//! The metrics registry: named counters, gauges and histograms behind one
//! queryable interface, with **exact-sum semantics** — counters are `u64`
//! and histogram sums accumulate the exact observed integer values, so a
//! metric total can be asserted byte-for-byte equal to an accounting
//! total (`ExecReport::total_comm_bytes`, `Profile` launches) rather than
//! merely close.

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotone integer counter handle (cheap to clone, lock-free to bump).
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins floating gauge handle.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

const HIST_BUCKETS: usize = 65;

struct HistInner {
    /// `buckets[b]` counts observations with `b` significant bits
    /// (power-of-two buckets); bucket 0 counts zeros.
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// Power-of-two-bucket histogram handle for integer observations
/// (durations in ns, bytes, batch sizes). `sum` is exact.
#[derive(Clone)]
pub struct Histogram(Arc<HistInner>);

impl Histogram {
    pub fn observe(&self, value: u64) {
        let bucket = (u64::BITS - value.leading_zeros()) as usize;
        self.0.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Exact sum of every observed value.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets: self
                .0
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Point-in-time histogram state.
#[derive(Clone, Debug, PartialEq)]
pub struct HistSnapshot {
    pub count: u64,
    pub sum: u64,
    /// One count per power-of-two bucket (bucket `b` holds values in
    /// `[2^(b-1), 2^b)`; bucket 0 holds zeros).
    pub buckets: Vec<u64>,
}

/// A snapshot of every registered metric.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistSnapshot>,
}

impl MetricsSnapshot {
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::u64(*v)))
                        .collect(),
                ),
            ),
            (
                "gauges",
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| {
                            (
                                k.clone(),
                                Json::obj(vec![
                                    ("count", Json::u64(h.count)),
                                    ("sum", Json::u64(h.sum)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// The registry: get-or-create named handles, snapshot everything. The
/// registry lock guards only name lookup; handle updates are atomic.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().unwrap();
        inner
            .counters
            .entry(name.to_string())
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().unwrap();
        inner
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))))
            .clone()
    }

    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.inner.lock().unwrap();
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| {
                Histogram(Arc::new(HistInner {
                    buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                    count: AtomicU64::new(0),
                    sum: AtomicU64::new(0),
                }))
            })
            .clone()
    }

    /// Current value of a counter, if registered.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.inner
            .lock()
            .unwrap()
            .counters
            .get(name)
            .map(Counter::get)
    }

    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.inner.lock().unwrap().gauges.get(name).map(Gauge::get)
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, g)| (k.clone(), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_exactly_across_threads() {
        let reg = Arc::new(Registry::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    let c = reg.counter("bytes");
                    for _ in 0..1000 {
                        c.add(3);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(reg.counter_value("bytes"), Some(12_000));
        // Same-name lookup returns the same underlying counter.
        assert_eq!(reg.counter("bytes").get(), 12_000);
        assert_eq!(reg.counter_value("missing"), None);
    }

    #[test]
    fn histogram_buckets_and_exact_sum() {
        let reg = Registry::new();
        let h = reg.histogram("stall_ns");
        for v in [0u64, 1, 2, 3, 1024, u64::from(u32::MAX)] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 6);
        assert_eq!(snap.sum, 1 + 2 + 3 + 1024 + u64::from(u32::MAX));
        assert_eq!(snap.buckets[0], 1, "zero bucket");
        assert_eq!(snap.buckets[1], 1, "value 1");
        assert_eq!(snap.buckets[2], 2, "values 2 and 3");
        assert_eq!(snap.buckets[11], 1, "value 1024");
        assert_eq!(snap.buckets[32], 1, "u32::MAX");
        let json = reg.snapshot().to_json();
        assert_eq!(
            json.get("histograms")
                .and_then(|h| h.get("stall_ns"))
                .and_then(|h| h.get("sum"))
                .and_then(Json::as_u64),
            Some(snap.sum)
        );
    }

    #[test]
    fn gauges_hold_last_write() {
        let reg = Registry::new();
        let g = reg.gauge("ratio");
        g.set(1.75);
        assert_eq!(reg.gauge_value("ratio"), Some(1.75));
        g.set(0.5);
        assert_eq!(reg.gauge("ratio").get(), 0.5);
    }
}
