//! Property-based tests for the batched runtime: workspace layout, backend
//! agreement, BSR slot decomposition and launch accounting.

use h2_dense::cpqr::Truncation;
use h2_dense::Mat;
use h2_runtime::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Batches with arbitrary (possibly zero) shapes lay out correctly.
    #[test]
    fn varbatch_layout(shapes in proptest::collection::vec((0usize..7, 0usize..7), 1..12)) {
        let rows: Vec<usize> = shapes.iter().map(|&(r, _)| r).collect();
        let cols: Vec<usize> = shapes.iter().map(|&(_, c)| c).collect();
        let total: usize = shapes.iter().map(|&(r, c)| r * c).sum();
        let mut b = VarBatch::zeros(rows.clone(), cols.clone());
        prop_assert_eq!(b.total_len(), total);
        // Write a distinct constant into each entry; verify no overlap.
        b.for_each_mut(true, |i, mut m| m.fill((i + 1) as f64));
        for i in 0..b.count() {
            let m = b.mat(i);
            for j in 0..m.cols() {
                for r in 0..m.rows() {
                    prop_assert_eq!(m.at(r, j), (i + 1) as f64);
                }
            }
        }
    }

    /// Sequential and parallel backends produce identical batched results.
    #[test]
    fn backends_agree_on_ops(seed in 0u64..500, count in 1usize..10, rows in 1usize..10, d in 1usize..8) {
        let run = |rt: &Runtime| {
            let src = rand_mat(rt, count * rows, d, seed);
            let ranges: Vec<(usize, usize)> =
                (0..count).map(|i| (i * rows, (i + 1) * rows)).collect();
            let b = gather_rows(rt, &src, &ranges);
            let mins = qr_min_rdiag(rt, &b);
            let ids = batched_row_id(rt, &b, Truncation::Relative(1e-12));
            let skels: Vec<Vec<usize>> = ids.iter().map(|r| r.skel.clone()).collect();
            let refs: Vec<&[usize]> = skels.iter().map(|v| v.as_slice()).collect();
            let shrunk = shrink_rows(rt, &b, &refs);
            (mins, skels, (0..shrunk.count()).map(|i| shrunk.to_mat(i)).collect::<Vec<Mat>>())
        };
        let (m1, s1, y1) = run(&Runtime::sequential());
        let (m2, s2, y2) = run(&Runtime::parallel());
        prop_assert_eq!(s1, s2);
        for (a, b) in m1.iter().zip(&m2) {
            prop_assert!((a - b).abs() < 1e-14);
        }
        for (a, b) in y1.iter().zip(&y2) {
            let mut d = a.clone();
            d.axpy(-1.0, b);
            prop_assert_eq!(d.norm_max(), 0.0);
        }
    }

    /// BSR slot decompositions are always valid and use exactly Csp slots.
    #[test]
    fn bsr_slots_valid(adj in proptest::collection::vec(proptest::collection::vec(0usize..6, 0..5), 1..8)) {
        let nx = 6; // x-batch entries referenced by the adjacency
        let pattern = BsrPattern::from_rows(&adj);
        prop_assert!(pattern.validate());
        let want_csp = adj.iter().map(|r| r.len()).max().unwrap_or(0);
        prop_assert_eq!(pattern.csp(), want_csp);
        let _ = nx;
    }

    /// hcat of gathered pieces equals a single gather of the union.
    #[test]
    fn hcat_equals_wider_gather(seed in 0u64..300, rows in 1usize..8, d1 in 1usize..5, d2 in 1usize..5) {
        let rt = Runtime::parallel();
        let src = rand_mat(&rt, rows * 3, d1 + d2, seed);
        let ranges: Vec<(usize, usize)> = (0..3).map(|i| (i * rows, (i + 1) * rows)).collect();
        let whole = gather_rows(&rt, &src, &ranges);
        let left_src = Mat::from_fn(rows * 3, d1, |i, j| src[(i, j)]);
        let right_src = Mat::from_fn(rows * 3, d2, |i, j| src[(i, j + d1)]);
        let left = gather_rows(&rt, &left_src, &ranges);
        let right = gather_rows(&rt, &right_src, &ranges);
        let cat = hcat_batches(&rt, &left, &right);
        for i in 0..3 {
            let mut d = cat.to_mat(i);
            d.axpy(-1.0, &whole.to_mat(i));
            prop_assert_eq!(d.norm_max(), 0.0);
        }
    }

    /// Launch accounting is deterministic: the same op sequence produces the
    /// same counts on both backends.
    #[test]
    fn launch_counts_backend_invariant(seed in 0u64..100, count in 1usize..6) {
        let counts = |rt: &Runtime| {
            let src = rand_mat(rt, count * 4, 3, seed);
            let ranges: Vec<(usize, usize)> = (0..count).map(|i| (i * 4, (i + 1) * 4)).collect();
            let b = gather_rows(rt, &src, &ranges);
            let _ = qr_min_rdiag(rt, &b);
            let _ = batched_row_id(rt, &b, Truncation::Rank(2));
            Kernel::ALL.iter().map(|&k| rt.profile().launches(k)).collect::<Vec<_>>()
        };
        prop_assert_eq!(counts(&Runtime::sequential()), counts(&Runtime::parallel()));
    }
}
