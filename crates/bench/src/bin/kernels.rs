//! Kernel-level performance baseline: the numbers every later perf PR is
//! judged against.
//!
//! Measures, and emits as `BENCH_kernels.json`:
//!
//! * single-matrix GEMM GFLOP/s for square sizes 32–1024 across all four
//!   transpose combinations, for both the packed blocked kernel (the
//!   `gemm` dispatch path) and the retained naive axpy/dot reference
//!   (`gemm_naive`) — the packed/naive ratio is the headline speedup and
//!   the small sizes document the crossover behavior;
//! * the batched sketch-apply (`gemm_at_x` over a skewed `VarBatch`, the
//!   upsweep workload `Ω^{l+1} = Uᵀ Ω^l`) on the parallel runtime;
//! * a full sketching construction plus matvecs wall clock (covariance
//!   kernel, the Fig. 5 configuration scaled down).
//!
//! Usage: `kernels [--sizes 32,64,...] [--n 4096] [--matvecs 32]
//! [--out BENCH_kernels.json] [--trace trace.json] [--smoke]`
//!
//! `--smoke` shrinks sizes and repetitions for CI. `--trace` writes a
//! Chrome-trace JSON of the construction's phase spans.

use h2_bench::{build_problem, reference_h2, App, Args, BenchReport, TraceSink};
use h2_core::{sketch_construct, SketchConfig};
use h2_dense::{gaussian_mat, gemm, gemm_naive, par_gemm, Mat, Op};
use h2_obs::Json;
use h2_runtime::{gemm_at_x, Runtime, VarBatch};
use std::time::Instant;

/// Time `f` with enough repetitions to pass `min_secs` of wall clock,
/// returning seconds per repetition.
fn time_per_rep(min_secs: f64, mut f: impl FnMut()) -> f64 {
    // Warm-up run (page in buffers, settle the feature dispatch).
    f();
    let mut reps = 1usize;
    loop {
        let t0 = Instant::now();
        for _ in 0..reps {
            f();
        }
        let dt = t0.elapsed().as_secs_f64();
        if dt >= min_secs {
            return dt / reps as f64;
        }
        let grow = (min_secs / dt.max(1e-9) * 1.25).ceil() as usize;
        reps = (reps * grow.max(2)).min(1 << 20);
    }
}

fn op_name(t: Op) -> &'static str {
    match t {
        Op::NoTrans => "N",
        Op::Trans => "T",
    }
}

struct GemmPoint {
    n: usize,
    ta: Op,
    tb: Op,
    naive_gflops: f64,
    packed_gflops: f64,
}

fn bench_gemm(sizes: &[usize], min_secs: f64) -> Vec<GemmPoint> {
    let mut out = Vec::new();
    for &n in sizes {
        for ta in [Op::NoTrans, Op::Trans] {
            for tb in [Op::NoTrans, Op::Trans] {
                let a = gaussian_mat(n, n, 1);
                let b = gaussian_mat(n, n, 2);
                let mut c = Mat::zeros(n, n);
                let flops = 2.0 * (n as f64).powi(3);
                let t_naive = time_per_rep(min_secs, || {
                    gemm_naive(ta, tb, 1.0, a.rf(), b.rf(), 0.0, c.rm());
                });
                let t_packed = time_per_rep(min_secs, || {
                    gemm(ta, tb, 1.0, a.rf(), b.rf(), 0.0, c.rm());
                });
                out.push(GemmPoint {
                    n,
                    ta,
                    tb,
                    naive_gflops: flops / t_naive / 1e9,
                    packed_gflops: flops / t_packed / 1e9,
                });
            }
        }
    }
    out
}

struct ParGemmPoint {
    n: usize,
    serial_gflops: f64,
    par_gflops: f64,
}

/// Threaded single-product GEMM: the shared-B row-band `par_gemm` against
/// the serial packed kernel at the same square sizes (NN orientation — the
/// other combos are normalized away by packing).
fn bench_par_gemm(sizes: &[usize], min_secs: f64) -> Vec<ParGemmPoint> {
    let mut out = Vec::new();
    for &n in sizes {
        let a = gaussian_mat(n, n, 5);
        let b = gaussian_mat(n, n, 6);
        let mut c = Mat::zeros(n, n);
        let flops = 2.0 * (n as f64).powi(3);
        let t_serial = time_per_rep(min_secs, || {
            gemm(Op::NoTrans, Op::NoTrans, 1.0, a.rf(), b.rf(), 0.0, c.rm());
        });
        let t_par = time_per_rep(min_secs, || {
            par_gemm(Op::NoTrans, Op::NoTrans, 1.0, a.rf(), b.rf(), 0.0, c.rm());
        });
        out.push(ParGemmPoint {
            n,
            serial_gflops: flops / t_serial / 1e9,
            par_gflops: flops / t_par / 1e9,
        });
    }
    out
}

/// The batched upsweep shape: many variable-size entries, sizes skewed the
/// way a construction level is (a few big blocks, a long tail of small
/// ones).
fn bench_batched_apply(rt: &Runtime, entries: usize, d: usize, min_secs: f64) -> (f64, f64) {
    let rows: Vec<usize> = (0..entries)
        .map(|i| {
            // Deterministic skew: sizes cycle 16..=256 with a heavy head.
            let base = 16 + (i * 37) % 113;
            if i % 29 == 0 {
                base + 160
            } else {
                base
            }
        })
        .collect();
    let bases: Vec<Mat> = rows
        .iter()
        .enumerate()
        .map(|(i, &m)| gaussian_mat(m, (m / 2).max(8), 100 + i as u64))
        .collect();
    let mut x = VarBatch::zeros_uniform_cols(rows.clone(), d);
    x.for_each_mut(false, |i, mut m| {
        let g = gaussian_mat(m.rows(), d, 500 + i as u64);
        m.copy_from(g.rf());
    });
    let flops: f64 = bases
        .iter()
        .map(|u| 2.0 * u.rows() as f64 * u.cols() as f64 * d as f64)
        .sum();
    let secs = time_per_rep(min_secs, || {
        let out = gemm_at_x(rt, &bases, &x);
        std::hint::black_box(out.total_len());
    });
    (flops / secs / 1e9, secs)
}

fn main() {
    let args = Args::parse();
    let smoke = args.flag("smoke");
    let default_sizes: &[usize] = if smoke {
        &[32, 64, 128, 256]
    } else {
        &[32, 48, 64, 96, 128, 256, 512, 1024]
    };
    let sizes = args.sizes("sizes", default_sizes);
    let min_secs: f64 = args.get("min-secs", if smoke { 0.02 } else { 0.25 });
    let n_construct: usize = args.get("n", if smoke { 1500 } else { 4096 });
    let matvecs: usize = args.get("matvecs", 32);
    let out_path: String = args.get("out", "BENCH_kernels.json".to_string());
    let sink = TraceSink::from_args(&args);

    println!("# Kernel baseline (sizes {sizes:?}, min_secs {min_secs})\n");

    // --- single-matrix GEMM ---
    let gemm_points = bench_gemm(&sizes, min_secs);
    h2_bench::header(&["n", "ta", "tb", "naive GF/s", "packed GF/s", "speedup"]);
    for p in &gemm_points {
        h2_bench::row(&[
            p.n.to_string(),
            op_name(p.ta).to_string(),
            op_name(p.tb).to_string(),
            format!("{:.2}", p.naive_gflops),
            format!("{:.2}", p.packed_gflops),
            format!("{:.2}x", p.packed_gflops / p.naive_gflops),
        ]);
    }

    // --- threaded single-product GEMM (shared-B row bands) ---
    let par_points = bench_par_gemm(&sizes, min_secs);
    println!("\n## par_gemm (shared packed-B panels, {} threads)\n", {
        rayon::current_num_threads()
    });
    h2_bench::header(&["n", "serial GF/s", "par GF/s", "speedup"]);
    for p in &par_points {
        h2_bench::row(&[
            p.n.to_string(),
            format!("{:.2}", p.serial_gflops),
            format!("{:.2}", p.par_gflops),
            format!("{:.2}x", p.par_gflops / p.serial_gflops),
        ]);
    }

    // --- batched sketch apply ---
    let (batch_entries, batch_d) = if smoke { (128, 32) } else { (512, 64) };
    let batch_rt = sink.runtime();
    let (batched_gflops, batched_secs) =
        bench_batched_apply(&batch_rt, batch_entries, batch_d, min_secs);
    println!(
        "\nbatched sketch apply ({batch_entries} skewed entries, d={batch_d}): \
         {batched_gflops:.2} GF/s ({batched_secs:.4} s/apply)"
    );

    // --- full construct + matvec wall clock ---
    // Smoke sizes need a deeper tree (smaller leaves) to have a far field
    // worth sketching at all.
    let leaf = if n_construct < 3000 { 16 } else { 64 };
    let problem = build_problem(App::Covariance, n_construct, leaf, 0.7, 0xBE);
    let reference = reference_h2(&problem, 1e-8);
    let rt = sink.runtime();
    let cfg = SketchConfig {
        initial_samples: 128,
        ..Default::default()
    };
    let t0 = Instant::now();
    let (h2, stats) = sketch_construct(
        &reference,
        &problem.kernel,
        problem.tree.clone(),
        problem.partition.clone(),
        &rt,
        &cfg,
    );
    let construct_secs = t0.elapsed().as_secs_f64();
    let x = gaussian_mat(n_construct, 1, 7);
    let t0 = Instant::now();
    for _ in 0..matvecs {
        std::hint::black_box(h2.apply_permuted_mat(&x));
    }
    let matvec_secs = t0.elapsed().as_secs_f64() / matvecs.max(1) as f64;
    println!(
        "construct (N={n_construct}, samples={}): {construct_secs:.3} s; \
         matvec: {matvec_secs:.5} s",
        stats.total_samples
    );

    // --- unified JSON emission ---
    let mut rep = BenchReport::new("kernels");
    rep.section(
        "config",
        Json::obj(vec![
            (
                "sizes",
                Json::Arr(sizes.iter().map(|&s| Json::u64(s as u64)).collect()),
            ),
            ("min_secs", Json::Num(min_secs)),
            ("smoke", Json::Bool(smoke)),
        ]),
    );
    rep.section(
        "gemm",
        Json::Arr(
            gemm_points
                .iter()
                .map(|p| {
                    Json::obj(vec![
                        ("n", Json::u64(p.n as u64)),
                        ("ta", Json::str(op_name(p.ta))),
                        ("tb", Json::str(op_name(p.tb))),
                        ("naive_gflops", Json::Num(p.naive_gflops)),
                        ("packed_gflops", Json::Num(p.packed_gflops)),
                        ("speedup", Json::Num(p.packed_gflops / p.naive_gflops)),
                    ])
                })
                .collect(),
        ),
    );
    rep.section(
        "par_gemm",
        Json::Arr(
            par_points
                .iter()
                .map(|p| {
                    Json::obj(vec![
                        ("n", Json::u64(p.n as u64)),
                        ("serial_gflops", Json::Num(p.serial_gflops)),
                        ("par_gflops", Json::Num(p.par_gflops)),
                        ("speedup", Json::Num(p.par_gflops / p.serial_gflops)),
                    ])
                })
                .collect(),
        ),
    );
    rep.section(
        "batched_apply",
        Json::obj(vec![
            ("entries", Json::u64(batch_entries as u64)),
            ("d", Json::u64(batch_d as u64)),
            ("gflops", Json::Num(batched_gflops)),
            ("secs_per_apply", Json::Num(batched_secs)),
        ]),
    );
    rep.section(
        "construct_matvec",
        Json::obj(vec![
            ("n", Json::u64(n_construct as u64)),
            ("samples", Json::u64(stats.total_samples as u64)),
            ("construct_secs", Json::Num(construct_secs)),
            ("matvec_secs", Json::Num(matvec_secs)),
        ]),
    );
    rep.write(&out_path);
    sink.finish();
}
