//! Table II: the effect of leaf size and sample block size on memory,
//! ranks, runtime and approximation error, for the covariance and IE
//! problems (paper: N = 2^18, tolerance 1e-6).
//!
//! Rows per application and leaf size in {128, 256}:
//! * "fixed sample": one sampling round with d = leaf size (adaptive off),
//! * "adaptive": d = 32 sample blocks grown on demand.
//!
//! Usage: `--n 32768 [--tol 1e-6] [--paper] [--trace trace.json]`
//! (`--paper` sets N = 2^18)

use h2_bench::{build_problem, header, mib, reference_h2, row, App, Args, TraceSink};
use h2_core::{sketch_construct, SketchConfig};
use h2_dense::relative_error_2;
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let n: usize = if args.flag("paper") {
        1 << 18
    } else {
        args.get("n", 1 << 15)
    };
    let tol: f64 = args.get("tol", 1e-6);
    let sink = TraceSink::from_args(&args);

    println!("# Table II: leaf size x sample block size (N = {n}, tol = {tol})\n");
    header(&[
        "app",
        "mode",
        "time (s)",
        "rank range",
        "memory (MiB)",
        "total samples",
        "sample block",
        "leaf",
        "rel error",
    ]);

    for app in [App::Covariance, App::IntegralEquation] {
        for leaf in [128usize, 256] {
            let problem = build_problem(app, n, leaf, 0.7, 0x7AB2);
            let reference = reference_h2(&problem, tol * 1e-2);

            for (mode, d0, block, adaptive) in [
                ("fixed sample", leaf, leaf, false),
                ("adaptive", 64, 32, true),
            ] {
                let rt = sink.runtime();
                let cfg = SketchConfig {
                    tol,
                    initial_samples: d0,
                    sample_block: block,
                    adaptive,
                    ..Default::default()
                };
                let t = Instant::now();
                let (h2, stats) = sketch_construct(
                    &reference,
                    &problem.kernel,
                    problem.tree.clone(),
                    problem.partition.clone(),
                    &rt,
                    &cfg,
                );
                let secs = t.elapsed().as_secs_f64();
                let err = relative_error_2(&reference, &h2, 12, 0x7AB3);
                let (lo, hi) = h2.rank_range();
                row(&[
                    app.name().to_string(),
                    mode.to_string(),
                    format!("{secs:.3}"),
                    format!("{lo}-{hi}"),
                    format!("{:.1}", mib(h2.memory_bytes())),
                    stats.total_samples.to_string(),
                    block.to_string(),
                    leaf.to_string(),
                    format!("{err:.3e}"),
                ]);
            }
        }
    }
    println!("\n(Paper shape to compare: smaller leaves -> lower memory and time; adaptive d=32 -> fewer\n samples and lower time than fixed d=leaf, at slightly looser measured error within tolerance.)");
    sink.finish();
}
