//! Solver-stack benchmark: ULV factor + solve in both side layouts,
//! batched vs per-node elimination, ULV-preconditioned Krylov iteration
//! counts, and the fabric-sharded solve sweep at D ∈ {1, 2, 4} — emitting
//! `BENCH_solve.json`.
//!
//! Reported:
//!
//! * **factor/solve** — wall clock of the batched per-level elimination
//!   vs the retained per-node reference (same arithmetic, different
//!   schedule; on this container both run the same cores, so parity is
//!   the expected outcome and the *multi-device* claims below are made in
//!   modeled makespan, never wall clock), plus the residual on the
//!   compressed operator and the root-system size;
//! * **Krylov** — iteration counts of PCG (symmetric) and GMRES
//!   (unsymmetric, through the fabric-sharded [`FabricOp`] matvec) with
//!   and without the ULV sweep as preconditioner;
//! * **sharded sweep** — modeled-makespan curves of the fabric solve at
//!   D ∈ {1, 2, 4} under the weak-compute and A100-class device models,
//!   on both the synchronous and the pipelined schedule (bit-identical
//!   results asserted; the pipelined columns overlap launch overhead and
//!   communication behind compute via `h2_runtime::combine_terms`), with
//!   the transfer byte totals **asserted equal** to the
//!   [`h2_runtime::simulate_solve_prec`] prediction on both arms (the CI
//!   smoke run keeps this wired);
//! * **Krylov residency** — the preconditioned solve through the fabric
//!   op twice: `Staged` vectors pay a full `VectorStage` round trip per
//!   apply, `Resident` vectors pin the shards in device arenas and pay
//!   one `8·(D−1)`-byte scalar allreduce per global reduction; the two
//!   are asserted bit-identical and the byte collapse is recorded;
//! * **precision** — with `--precision f32` the construction stores
//!   norm-aware-demoted blocks (`SketchConfig::storage`) and the fabric
//!   wire ships every sweep transfer at half width; `--precision both`
//!   runs f64 and f32 back to back. The ULV factorization reads the f64
//!   working copies (exact round-trips of the stored blocks), so the
//!   residual column stays at machine precision either way. The **wire
//!   ratio** column compares each row's measured sweep bytes to the same
//!   factorization modeled at the f64 wire width (asserted ≤ 0.55 for f32
//!   rows) — f64-run-vs-f32-run byte comparisons would be apples to
//!   oranges, since demotion error perturbs the adaptively sketched
//!   operator and with it the retained ranks.
//!
//! Usage: `solvers_fabric [--n 4096] [--n-unsym 2048] [--leaf 32]
//! [--rhs 64] [--precision f64|f32|both] [--out BENCH_solve.json]
//! [--trace trace.json] [--smoke]`
//!
//! `--trace` attaches one tracer to every runtime and fabric in the run
//! (construction phases, ULV level spans, sweep job spans, Krylov
//! iteration instants) and writes a Chrome-trace JSON at exit.

use h2_bench::{BenchReport, TraceSink};
use h2_core::{sketch_construct, sketch_construct_unsym, SketchConfig};
use h2_dense::gaussian_mat;
use h2_kernels::{ConvectionKernel, ExponentialKernel, KernelMatrix, UnsymKernelMatrix};
use h2_matrix::H2Matrix;
use h2_obs::Json;
use h2_runtime::{
    simulate_solve_prec, simulate_solve_prec_mode, DeviceModel, PipelineMode, Precision,
    TransferKind,
};
use h2_sched::{
    compare_solve_with_simulator, resident_reduce_hook, shard_ulv_solve_with_report, DeviceFabric,
    FabricOp, UlvFabricPrecond,
};
use h2_solve::{gmres_with, pcg_with, Identity, IterResult, KrylovWorkspace, UlvFactor};
use h2_tree::{Admissibility, ClusterTree, Partition};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn line_points(n: usize) -> Vec<[f64; 3]> {
    (0..n).map(|i| [i as f64 / n as f64, 0.0, 0.0]).collect()
}

fn shift_diag(h2: &mut H2Matrix, sigma: f64) {
    for i in 0..h2.dense.pairs.len() {
        let (s, t) = h2.dense.pairs[i];
        if s == t {
            let blk = &mut h2.dense.blocks[i];
            for j in 0..blk.rows() {
                blk[(j, j)] += sigma;
            }
            // Keep demoted f32 storage coherent with the shifted working
            // copy (no-op for f64 blocks).
            h2.dense.resync_demoted(i);
        }
    }
}

fn models() -> (DeviceModel, DeviceModel) {
    let a100 = DeviceModel::default();
    let weak = DeviceModel {
        flops_per_sec: 5.0e11,
        ..DeviceModel::default()
    };
    (a100, weak)
}

struct FactorRow {
    regime: &'static str,
    prec: Precision,
    n: usize,
    batched_ms: f64,
    per_node_ms: f64,
    solve_ms: f64,
    residual: f64,
    root_size: usize,
    schedule_gap: f64,
}

struct KrylovRow {
    regime: &'static str,
    prec: Precision,
    method: &'static str,
    plain_iters: usize,
    precond_iters: usize,
    precond_residual: f64,
}

struct ResidencyRow {
    regime: &'static str,
    prec: Precision,
    method: &'static str,
    iterations: usize,
    reductions: u64,
    staged_vector_bytes: u64,
    resident_vector_bytes: u64,
}

struct SweepRow {
    regime: &'static str,
    prec: Precision,
    devices: usize,
    makespan_weak: f64,
    makespan_a100: f64,
    sim_makespan_weak: f64,
    /// The same sweep on a pipelined fabric: launch overhead and
    /// communication overlap behind compute (`h2_runtime::combine_terms`),
    /// with the byte totals still asserted equal to the simulator.
    pipe_makespan_weak: f64,
    pipe_makespan_a100: f64,
    pipe_sim_makespan_weak: f64,
    comm_bytes: u64,
    /// Measured sweep bytes over the *same factorization* modeled at the
    /// f64 wire width — the wire-format ratio proper. (Cross-run f64-vs-f32
    /// byte comparisons are not meaningful here: demotion error perturbs
    /// the adaptively sketched operator, so the two runs factor slightly
    /// different matrices with different retained ranks.)
    wire_ratio: f64,
    bytes_equal: bool,
}

#[allow(clippy::too_many_arguments)]
fn run_regime(
    regime: &'static str,
    prec: Precision,
    n: usize,
    leaf: usize,
    rhs: usize,
    sink: &TraceSink,
    factor_rows: &mut Vec<FactorRow>,
    krylov_rows: &mut Vec<KrylovRow>,
    sweep_rows: &mut Vec<SweepRow>,
    residency_rows: &mut Vec<ResidencyRow>,
) {
    let pts = line_points(n);
    let tree = Arc::new(ClusterTree::build(&pts, leaf));
    let part = Arc::new(Partition::build(&tree, Admissibility::Weak));
    let rt = sink.runtime();
    let sym = regime == "sym";
    let cfg = SketchConfig {
        tol: 1e-9,
        initial_samples: 64,
        max_rank: 96,
        storage: prec,
        ..Default::default()
    };
    let mut h2 = if sym {
        let km = KernelMatrix::new(ExponentialKernel { l: 0.5 }, tree.points.clone());
        sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg).0
    } else {
        let km = UnsymKernelMatrix::new(ConvectionKernel::default(), tree.points.clone());
        sketch_construct_unsym(&km, &km, tree.clone(), part, &rt, &cfg).0
    };
    shift_diag(&mut h2, 3.0);

    // ---- factor: batched vs per-node elimination ----
    let t0 = Instant::now();
    let ulv = UlvFactor::new(&h2).expect("batched ULV");
    let batched_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let reference = UlvFactor::new_per_node(&h2).expect("per-node ULV");
    let per_node_ms = t0.elapsed().as_secs_f64() * 1e3;

    let b = gaussian_mat(n, rhs, 0x50F7);
    let t0 = Instant::now();
    let x = ulv.solve(&b);
    let solve_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mut r = h2.apply_permuted_mat(&x);
    r.axpy(-1.0, &b);
    let residual = r.norm_fro() / b.norm_fro();
    assert!(residual < 1e-10, "{regime}: ULV residual {residual}");
    let xr = reference.solve(&b);
    let mut d = x.clone();
    d.axpy(-1.0, &xr);
    let schedule_gap = d.norm_fro() / xr.norm_fro().max(1e-300);
    assert!(
        schedule_gap <= 1e-13,
        "{regime}: batched vs per-node gap {schedule_gap}"
    );
    factor_rows.push(FactorRow {
        regime,
        prec,
        n,
        batched_ms,
        per_node_ms,
        solve_ms,
        residual,
        root_size: ulv.root_size(),
        schedule_gap,
    });

    // ---- Krylov: iteration counts with/without the ULV sweep ----
    let bvec: Vec<f64> = (0..n).map(|i| 1.0 + (0.013 * i as f64).sin()).collect();
    let sweep_fabric = DeviceFabric::new(2);
    sweep_fabric.set_wire(prec);
    sink.attach(&sweep_fabric);
    let minv = UlvFabricPrecond::new(&sweep_fabric, &ulv);
    let mut ws = KrylovWorkspace::new(n);
    ws.set_tracer(sink.tracer());
    let (method, plain, fast) = if sym {
        let plain = pcg_with(&h2, &Identity { n }, &bvec, 600, 1e-10, &mut ws);
        let fast = pcg_with(&h2, &minv, &bvec, 600, 1e-10, &mut ws);
        ("pcg", plain, fast)
    } else {
        // Matvecs through the fabric-sharded operator.
        let matvec_fabric = DeviceFabric::new(2);
        matvec_fabric.set_wire(prec);
        sink.attach(&matvec_fabric);
        let op = FabricOp::new(&matvec_fabric, &h2);
        let plain = gmres_with(&op, &Identity { n }, &bvec, 40, 600, 1e-10, &mut ws);
        let fast = gmres_with(&op, &minv, &bvec, 40, 600, 1e-10, &mut ws);
        ("gmres", plain, fast)
    };
    assert!(fast.converged, "{regime}: preconditioned {method} stalled");
    krylov_rows.push(KrylovRow {
        regime,
        prec,
        method,
        plain_iters: plain.iterations,
        precond_iters: fast.iterations,
        precond_residual: fast.relative_residual,
    });

    // ---- fabric-sharded sweep: modeled makespan at D ∈ {1, 2, 4} ----
    let (a100, weak) = models();
    let spec = ulv.solve_spec(rhs);
    for devices in [1usize, 2, 4] {
        let fabric = DeviceFabric::new(devices);
        fabric.set_wire(prec);
        sink.attach(&fabric);
        let (x_sync, report) = shard_ulv_solve_with_report(&fabric, &ulv, &b);
        let cmp = compare_solve_with_simulator(&report, &spec, &weak);
        assert!(
            cmp.bytes_match(),
            "{regime} D={devices}: sweep bytes {} vs simulator {}",
            cmp.measured_bytes,
            cmp.predicted_bytes
        );

        // The same sweep, pipelined: identical arithmetic and identical
        // bytes, but launch gaps and transfers overlap behind compute in
        // the modeled makespan.
        let pipe_fabric = DeviceFabric::pipelined(devices);
        pipe_fabric.set_wire(prec);
        sink.attach(&pipe_fabric);
        let (x_pipe, pipe_report) = shard_ulv_solve_with_report(&pipe_fabric, &ulv, &b);
        let pipe_cmp = compare_solve_with_simulator(&pipe_report, &spec, &weak);
        assert!(
            pipe_cmp.bytes_match(),
            "{regime} D={devices}: pipelined sweep bytes {} vs simulator {}",
            pipe_cmp.measured_bytes,
            pipe_cmp.predicted_bytes
        );
        assert_eq!(
            x_sync.as_slice(),
            x_pipe.as_slice(),
            "{regime} D={devices}: pipelined sweep must be bit-identical"
        );

        let sim_f64_bytes =
            simulate_solve_prec(&spec, devices, &weak, Precision::F64).total_comm_bytes;
        let measured = report.total_comm_bytes();
        sweep_rows.push(SweepRow {
            regime,
            prec,
            devices,
            makespan_weak: report.modeled_makespan(&weak),
            makespan_a100: report.modeled_makespan(&a100),
            sim_makespan_weak: simulate_solve_prec(&spec, devices, &weak, prec).makespan,
            pipe_makespan_weak: pipe_report.modeled_makespan(&weak),
            pipe_makespan_a100: pipe_report.modeled_makespan(&a100),
            pipe_sim_makespan_weak: simulate_solve_prec_mode(
                &spec,
                devices,
                &weak,
                prec,
                PipelineMode::Pipelined,
            )
            .makespan,
            comm_bytes: measured,
            wire_ratio: if sim_f64_bytes > 0 {
                measured as f64 / sim_f64_bytes as f64
            } else {
                1.0
            },
            bytes_equal: cmp.bytes_match() && pipe_cmp.bytes_match(),
        });
    }

    // ---- Krylov vector residency: staged round trips vs device-resident ----
    // Same preconditioned solve through the fabric op twice: `Staged`
    // charges a full `VectorStage` round trip per apply, `Resident` pins
    // the shards and charges one scalar allreduce per global reduction.
    // The blocked reductions keep the two bit-identical.
    fn run_krylov(
        sym: bool,
        op: &FabricOp,
        minv: &UlvFabricPrecond,
        bvec: &[f64],
        ws: &mut KrylovWorkspace,
    ) -> IterResult {
        if sym {
            pcg_with(op, minv, bvec, 600, 1e-10, ws)
        } else {
            gmres_with(op, minv, bvec, 40, 600, 1e-10, ws)
        }
    }
    let staged_fabric = DeviceFabric::new(4);
    staged_fabric.set_wire(prec);
    sink.attach(&staged_fabric);
    let (staged_res, staged_vector_bytes) = {
        let op = FabricOp::new(&staged_fabric, &h2);
        let minv = UlvFabricPrecond::new(&staged_fabric, &ulv);
        let mut ws = KrylovWorkspace::new(n);
        ws.set_tracer(sink.tracer());
        let res = run_krylov(sym, &op, &minv, &bvec, &mut ws);
        let report = staged_fabric.report("krylov staged");
        (res, report.bytes_of_kind(TransferKind::VectorStage))
    };
    let resident_fabric = DeviceFabric::pipelined(4);
    resident_fabric.set_wire(prec);
    sink.attach(&resident_fabric);
    let reductions = Arc::new(AtomicU64::new(0));
    let (resident_res, resident_vector_bytes) = {
        let op = FabricOp::resident(&resident_fabric, &h2);
        let minv = UlvFabricPrecond::resident(&resident_fabric, &ulv);
        let mut ws = KrylovWorkspace::new(n);
        ws.set_tracer(sink.tracer());
        let inner = resident_reduce_hook(&resident_fabric);
        let count = reductions.clone();
        ws.set_reduce_hook(Some(Arc::new(move || {
            count.fetch_add(1, Ordering::Relaxed);
            inner();
        })));
        let res = run_krylov(sym, &op, &minv, &bvec, &mut ws);
        let report = resident_fabric.report("krylov resident");
        (res, report.bytes_of_kind(TransferKind::VectorStage))
    };
    assert_bit_identical(&staged_res, &resident_res, regime);
    assert!(
        resident_vector_bytes < staged_vector_bytes,
        "{regime}: resident vector traffic must collapse \
         ({resident_vector_bytes} vs {staged_vector_bytes})"
    );
    residency_rows.push(ResidencyRow {
        regime,
        prec,
        method,
        iterations: staged_res.iterations,
        reductions: reductions.load(Ordering::Relaxed),
        staged_vector_bytes,
        resident_vector_bytes,
    });
}

/// Staged and resident solves must agree bit for bit — the blocked
/// reductions fix the summation tree independently of where the vectors
/// live, and the fabric kernels are bitwise mode-invariant.
fn assert_bit_identical(a: &IterResult, b: &IterResult, regime: &str) {
    assert_eq!(a.iterations, b.iterations, "{regime}: iteration counts");
    assert_eq!(a.history, b.history, "{regime}: residual histories");
    for (i, (xa, xb)) in a.x.iter().zip(&b.x).enumerate() {
        assert_eq!(
            xa.to_bits(),
            xb.to_bits(),
            "{regime}: x[{i}] diverged between staged and resident"
        );
    }
}

fn main() {
    let args = h2_bench::Args::parse();
    let smoke = args.flag("smoke");
    let n: usize = args.get("n", if smoke { 1024 } else { 4096 });
    let n_unsym: usize = args.get("n-unsym", if smoke { 768 } else { 2048 });
    let leaf: usize = args.get("leaf", 32);
    // Wide right-hand-side blocks push the sweep toward the compute-bound
    // regime where sharding pays; narrow blocks stay latency-bound (the
    // §IV.B "don't multi-GPU small problems" tradeoff shows in the curve).
    let rhs: usize = args.get("rhs", if smoke { 8 } else { 64 });
    let out_path: String = args.get("out", "BENCH_solve.json".to_string());
    let prec_arg: String = args.get("precision", "f64".to_string());
    let precisions: Vec<Precision> = match prec_arg.as_str() {
        "both" => vec![Precision::F64, Precision::F32],
        s => vec![Precision::parse(s)
            .unwrap_or_else(|| panic!("--precision must be f64, f32, or both (got {s})"))],
    };

    println!(
        "# Solver stack: ULV (batched per-level elimination) + fabric-sharded sweeps\n\
         # (multi-device numbers are modeled makespan under the weak-compute /\n\
         # A100-class device models — this container is single-core, so wall\n\
         # clock is only reported for the schedule comparison on one machine)\n"
    );

    let sink = TraceSink::from_args(&args);
    let mut factor_rows = Vec::new();
    let mut krylov_rows = Vec::new();
    let mut sweep_rows = Vec::new();
    let mut residency_rows = Vec::new();
    for &prec in &precisions {
        run_regime(
            "sym",
            prec,
            n,
            leaf,
            rhs,
            &sink,
            &mut factor_rows,
            &mut krylov_rows,
            &mut sweep_rows,
            &mut residency_rows,
        );
        run_regime(
            "unsym",
            prec,
            n_unsym,
            leaf,
            rhs,
            &sink,
            &mut factor_rows,
            &mut krylov_rows,
            &mut sweep_rows,
            &mut residency_rows,
        );
    }

    println!("## ULV factor + solve\n");
    h2_bench::header(&[
        "regime",
        "prec",
        "N",
        "batched factor (ms)",
        "per-node factor (ms)",
        "solve (ms)",
        "residual",
        "root",
        "schedule gap",
    ]);
    for r in &factor_rows {
        h2_bench::row(&[
            r.regime.to_string(),
            r.prec.name().to_string(),
            r.n.to_string(),
            format!("{:.1}", r.batched_ms),
            format!("{:.1}", r.per_node_ms),
            format!("{:.1}", r.solve_ms),
            format!("{:.2e}", r.residual),
            r.root_size.to_string(),
            format!("{:.1e}", r.schedule_gap),
        ]);
    }

    println!("\n## Preconditioned Krylov (ULV sweep as M⁻¹)\n");
    h2_bench::header(&[
        "regime",
        "prec",
        "method",
        "plain iters",
        "ULV-precond iters",
        "residual",
    ]);
    for r in &krylov_rows {
        h2_bench::row(&[
            r.regime.to_string(),
            r.prec.name().to_string(),
            r.method.to_string(),
            r.plain_iters.to_string(),
            r.precond_iters.to_string(),
            format!("{:.2e}", r.precond_residual),
        ]);
    }

    println!("\n## Fabric-sharded solve sweep (modeled makespan, bytes == simulator)\n");
    h2_bench::header(&[
        "regime",
        "prec",
        "D",
        "sync weak (ms)",
        "pipe weak (ms)",
        "sim weak (ms)",
        "pipe sim (ms)",
        "comm (KiB)",
        "wire ratio",
        "bytes ==",
    ]);
    for r in &sweep_rows {
        h2_bench::row(&[
            r.regime.to_string(),
            r.prec.name().to_string(),
            r.devices.to_string(),
            format!("{:.3}", r.makespan_weak * 1e3),
            format!("{:.3}", r.pipe_makespan_weak * 1e3),
            format!("{:.3}", r.sim_makespan_weak * 1e3),
            format!("{:.3}", r.pipe_sim_makespan_weak * 1e3),
            format!("{:.1}", r.comm_bytes as f64 / 1024.0),
            format!("{:.3}", r.wire_ratio),
            r.bytes_equal.to_string(),
        ]);
    }

    println!("\n## Krylov vector residency (staged round trips vs device-resident)\n");
    h2_bench::header(&[
        "regime",
        "prec",
        "method",
        "iters",
        "reductions",
        "staged stage bytes",
        "resident stage bytes",
    ]);
    for r in &residency_rows {
        h2_bench::row(&[
            r.regime.to_string(),
            r.prec.name().to_string(),
            r.method.to_string(),
            r.iterations.to_string(),
            r.reductions.to_string(),
            r.staged_vector_bytes.to_string(),
            r.resident_vector_bytes.to_string(),
        ]);
    }

    // Mixed-precision headline: every f32 sweep row must ship at most ~half
    // the bytes its *own* factorization would ship at the f64 wire width
    // (all sweep wire formulas are linear in the element width, so the true
    // ratio is exactly 0.5 wherever there is any cross-device traffic).
    let f32_ratio_worst = sweep_rows
        .iter()
        .filter(|r| r.prec == Precision::F32 && r.comm_bytes > 0)
        .map(|r| r.wire_ratio)
        .fold(0.0f64, f64::max);
    if f32_ratio_worst > 0.0 {
        assert!(
            f32_ratio_worst <= 0.55,
            "f32 wire must cut sweep bytes to ~half (worst ratio {f32_ratio_worst:.3})"
        );
        println!(
            "\nMixed precision: worst f32 sweep wire ratio vs the f64-width model \
             is {f32_ratio_worst:.3}."
        );
    }

    let (a100, weak) = models();
    let mut rep = BenchReport::new("solvers_fabric");
    rep.precisions(&precisions)
        .device_model("weak_compute_0.5TFs", &weak)
        .device_model("a100_10TFs", &a100);
    rep.section(
        "config",
        Json::obj(vec![
            ("n", Json::u64(n as u64)),
            ("n_unsym", Json::u64(n_unsym as u64)),
            ("leaf", Json::u64(leaf as u64)),
            ("rhs", Json::u64(rhs as u64)),
            ("smoke", Json::Bool(smoke)),
        ]),
    );
    if f32_ratio_worst > 0.0 {
        rep.section("f32_sweep_wire_ratio_worst", Json::Num(f32_ratio_worst));
    }
    rep.section(
        "factor",
        Json::Arr(
            factor_rows
                .iter()
                .map(|r| {
                    Json::obj(vec![
                        ("regime", Json::str(r.regime)),
                        ("precision", Json::str(r.prec.name())),
                        ("n", Json::u64(r.n as u64)),
                        ("batched_factor_ms", Json::Num(r.batched_ms)),
                        ("per_node_factor_ms", Json::Num(r.per_node_ms)),
                        ("solve_ms", Json::Num(r.solve_ms)),
                        ("residual", Json::Num(r.residual)),
                        ("root_size", Json::u64(r.root_size as u64)),
                        ("schedule_gap", Json::Num(r.schedule_gap)),
                    ])
                })
                .collect(),
        ),
    );
    rep.section(
        "krylov",
        Json::Arr(
            krylov_rows
                .iter()
                .map(|r| {
                    Json::obj(vec![
                        ("regime", Json::str(r.regime)),
                        ("precision", Json::str(r.prec.name())),
                        ("method", Json::str(r.method)),
                        ("plain_iters", Json::u64(r.plain_iters as u64)),
                        ("precond_iters", Json::u64(r.precond_iters as u64)),
                        ("precond_residual", Json::Num(r.precond_residual)),
                    ])
                })
                .collect(),
        ),
    );
    rep.section(
        "sharded_sweep",
        Json::Arr(
            sweep_rows
                .iter()
                .map(|r| {
                    Json::obj(vec![
                        ("regime", Json::str(r.regime)),
                        ("precision", Json::str(r.prec.name())),
                        ("devices", Json::u64(r.devices as u64)),
                        ("makespan_weak", Json::Num(r.makespan_weak)),
                        ("makespan_a100", Json::Num(r.makespan_a100)),
                        ("sim_makespan_weak", Json::Num(r.sim_makespan_weak)),
                        ("pipe_makespan_weak", Json::Num(r.pipe_makespan_weak)),
                        ("pipe_makespan_a100", Json::Num(r.pipe_makespan_a100)),
                        (
                            "pipe_sim_makespan_weak",
                            Json::Num(r.pipe_sim_makespan_weak),
                        ),
                        ("comm_bytes", Json::u64(r.comm_bytes)),
                        ("wire_ratio", Json::Num(r.wire_ratio)),
                        ("bytes_equal", Json::Bool(r.bytes_equal)),
                    ])
                })
                .collect(),
        ),
    );
    rep.section(
        "krylov_residency",
        Json::Arr(
            residency_rows
                .iter()
                .map(|r| {
                    Json::obj(vec![
                        ("regime", Json::str(r.regime)),
                        ("precision", Json::str(r.prec.name())),
                        ("method", Json::str(r.method)),
                        ("iterations", Json::u64(r.iterations as u64)),
                        ("reductions", Json::u64(r.reductions)),
                        ("staged_vector_bytes", Json::u64(r.staged_vector_bytes)),
                        ("resident_vector_bytes", Json::u64(r.resident_vector_bytes)),
                    ])
                })
                .collect(),
        ),
    );
    rep.write(&out_path);
    sink.finish();
}
