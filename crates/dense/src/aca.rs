//! Adaptive cross approximation (ACA) with partial pivoting.
//!
//! The entry-evaluation construction route of the codes the paper cites in
//! §I (HLIBpro, hmglib): approximate a block `A ≈ U Vᵀ` by greedily
//! selecting cross rows/columns of the *residual*, evaluating only
//! `O((m + n) k)` entries instead of all `m·n`. Used by the
//! `h2_baselines::aca_compress` H-matrix constructor and as an independent
//! low-rank compression primitive.

use crate::mat::Mat;

/// Result of an ACA compression `A ≈ U Vᵀ`.
pub struct AcaResult {
    /// Left factor (`m × k`).
    pub u: Mat,
    /// Right factor (`n × k`), so the approximation is `U Vᵀ`.
    pub v: Mat,
    /// Number of entries of `A` that were evaluated.
    pub entries_evaluated: usize,
    /// Whether the tolerance was met before hitting `max_rank`.
    pub converged: bool,
}

impl AcaResult {
    pub fn rank(&self) -> usize {
        self.u.cols()
    }

    /// Materialize the approximation (tests / small blocks).
    pub fn to_mat(&self) -> Mat {
        crate::gemm::matmul(
            crate::gemm::Op::NoTrans,
            crate::gemm::Op::Trans,
            self.u.rf(),
            self.v.rf(),
        )
    }
}

/// Partial-pivot ACA of an `m × n` block given an entry oracle.
///
/// Stops when `‖u_k‖·‖v_k‖ ≤ tol · ‖A_k‖_F` (with `‖A_k‖_F` the running
/// estimate of the approximation norm) or when `max_rank` crosses have been
/// taken. Exact low-rank matrices terminate early with a zero residual
/// pivot.
///
/// ```
/// use h2_dense::aca;
/// // A rank-1 block: ACA recovers it from one cross, plus at most one
/// // roundoff-level cleanup cross.
/// let res = aca(20, 30, |i, j| (i as f64 + 1.0) * (j as f64 + 1.0), 1e-12, 10);
/// assert!(res.rank() <= 2);
/// assert!(res.converged);
/// assert!(res.entries_evaluated < 20 * 30, "far fewer entries than the full block");
/// ```
pub fn aca(
    m: usize,
    n: usize,
    f: impl Fn(usize, usize) -> f64,
    tol: f64,
    max_rank: usize,
) -> AcaResult {
    let kmax = max_rank.min(m.min(n));
    let mut us: Vec<Vec<f64>> = Vec::new();
    let mut vs: Vec<Vec<f64>> = Vec::new();
    let mut used_rows = vec![false; m];
    let mut entries = 0usize;
    // Running ‖A_k‖_F² estimate.
    let mut norm2 = 0.0_f64;
    let mut converged = false;

    if m == 0 || n == 0 {
        return AcaResult {
            u: Mat::zeros(m, 0),
            v: Mat::zeros(n, 0),
            entries_evaluated: 0,
            converged: true,
        };
    }

    // Next pivot row: start at the middle (heuristic: interior rows carry
    // more signal for smooth kernels), then the max-|u| entry of the last
    // cross, falling back to the first unused row.
    let mut next_row = m / 2;

    while us.len() < kmax {
        // Residual row: v = A(i*, :) - Σ u_l[i*] v_l
        let mut i_star = next_row;
        let mut v_row = vec![0.0; n];
        let mut found = false;
        for _attempt in 0..m {
            if used_rows[i_star] {
                i_star = (i_star + 1) % m;
                continue;
            }
            for (j, vv) in v_row.iter_mut().enumerate() {
                *vv = f(i_star, j);
            }
            entries += n;
            for (ul, vl) in us.iter().zip(&vs) {
                let c = ul[i_star];
                if c != 0.0 {
                    for j in 0..n {
                        v_row[j] -= c * vl[j];
                    }
                }
            }
            if v_row.iter().any(|&x| x != 0.0) {
                found = true;
                break;
            }
            // Residual row exactly zero: retire it and try the next.
            used_rows[i_star] = true;
            i_star = (i_star + 1) % m;
        }
        if !found {
            converged = true; // residual is exactly zero on all rows
            break;
        }
        used_rows[i_star] = true;

        // Pivot column: max |residual row|.
        let (j_star, &delta) = v_row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .unwrap();

        // Residual column scaled by the pivot:
        // u = (A(:, j*) - Σ v_l[j*] u_l) / delta
        let mut u_col = vec![0.0; m];
        for (i, uu) in u_col.iter_mut().enumerate() {
            *uu = f(i, j_star);
        }
        entries += m;
        for (ul, vl) in us.iter().zip(&vs) {
            let c = vl[j_star];
            if c != 0.0 {
                for i in 0..m {
                    u_col[i] -= c * ul[i];
                }
            }
        }
        for uu in u_col.iter_mut() {
            *uu /= delta;
        }

        // Norm update: ‖A_k‖² = ‖A_{k-1}‖² + 2 Σ (u_lᵀu)(v_lᵀv) + ‖u‖²‖v‖².
        let u_nrm2: f64 = u_col.iter().map(|x| x * x).sum();
        let v_nrm2: f64 = v_row.iter().map(|x| x * x).sum();
        let mut cross = 0.0;
        for (ul, vl) in us.iter().zip(&vs) {
            let uu: f64 = ul.iter().zip(&u_col).map(|(a, b)| a * b).sum();
            let vv: f64 = vl.iter().zip(&v_row).map(|(a, b)| a * b).sum();
            cross += uu * vv;
        }
        norm2 += 2.0 * cross + u_nrm2 * v_nrm2;

        // Next pivot row: the largest new-cross entry outside used rows.
        next_row = u_col
            .iter()
            .enumerate()
            .filter(|(i, _)| !used_rows[*i])
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0);

        us.push(u_col);
        vs.push(v_row);

        if (u_nrm2 * v_nrm2).sqrt() <= tol * norm2.max(f64::MIN_POSITIVE).sqrt() {
            converged = true;
            break;
        }
    }

    // Exhausting min(m, n) crosses reproduces the block exactly.
    if us.len() >= m.min(n) {
        converged = true;
    }

    let k = us.len();
    let mut u = Mat::zeros(m, k);
    let mut v = Mat::zeros(n, k);
    for (c, (uc, vc)) in us.iter().zip(&vs).enumerate() {
        u.col_mut(c).copy_from_slice(uc);
        v.col_mut(c).copy_from_slice(vc);
    }
    AcaResult {
        u,
        v,
        entries_evaluated: entries,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rand::gaussian_mat;

    #[test]
    fn exact_low_rank_recovered() {
        let a = gaussian_mat(30, 4, 41);
        let b = gaussian_mat(25, 4, 42);
        let prod = crate::gemm::matmul(
            crate::gemm::Op::NoTrans,
            crate::gemm::Op::Trans,
            a.rf(),
            b.rf(),
        );
        let res = aca(30, 25, |i, j| prod[(i, j)], 1e-12, 30);
        assert!(
            res.rank() <= 5,
            "rank-4 matrix recovered at rank {}",
            res.rank()
        );
        let mut d = res.to_mat();
        d.axpy(-1.0, &prod);
        assert!(d.norm_fro() / prod.norm_fro() < 1e-10);
        assert!(res.converged);
    }

    #[test]
    fn zero_matrix_rank_zero() {
        let res = aca(10, 12, |_, _| 0.0, 1e-10, 10);
        assert_eq!(res.rank(), 0);
        assert!(res.converged);
    }

    #[test]
    fn rank_cap_respected() {
        let a = gaussian_mat(20, 20, 43); // full rank
        let res = aca(20, 20, |i, j| a[(i, j)], 1e-15, 5);
        assert_eq!(res.rank(), 5);
        assert!(!res.converged, "full-rank matrix cannot converge at rank 5");
    }

    #[test]
    fn smooth_kernel_block_compresses_with_few_entries() {
        // Separated 1-D clusters under 1/(1+|x-y|): numerically low rank.
        let m = 200;
        let n = 180;
        let xi: Vec<f64> = (0..m).map(|i| i as f64 / m as f64).collect();
        let yj: Vec<f64> = (0..n).map(|j| 5.0 + j as f64 / n as f64).collect();
        let f = |i: usize, j: usize| 1.0 / (1.0 + (xi[i] - yj[j]).abs());
        let res = aca(m, n, f, 1e-9, 50);
        assert!(res.converged);
        assert!(res.rank() < 20, "smooth block rank {}", res.rank());
        assert!(
            res.entries_evaluated < m * n / 4,
            "ACA evaluated {} of {} entries",
            res.entries_evaluated,
            m * n
        );
        let full = Mat::from_fn(m, n, f);
        let mut d = res.to_mat();
        d.axpy(-1.0, &full);
        assert!(d.norm_fro() / full.norm_fro() < 1e-7);
    }

    #[test]
    fn empty_dims_are_fine() {
        let res = aca(0, 5, |_, _| 1.0, 1e-10, 3);
        assert_eq!(res.rank(), 0);
        let res = aca(5, 0, |_, _| 1.0, 1e-10, 3);
        assert_eq!(res.rank(), 0);
    }

    #[test]
    fn duplicate_rows_terminate() {
        // Rank-1 matrix with identical rows: second pivot row has zero
        // residual; ACA must retire rows and stop, not loop.
        let res = aca(15, 10, |_, j| (j + 1) as f64, 1e-12, 10);
        assert_eq!(res.rank(), 1);
        assert!(res.converged);
    }
}
