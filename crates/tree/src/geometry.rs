//! Points, bounding boxes and point-cloud generators.
//!
//! All geometry is embedded in 3-D (`[f64; 3]`); 1-D/2-D problems simply use
//! constant trailing coordinates. The admissibility condition of the paper
//! (eq. (1)) is evaluated on axis-aligned bounding boxes via their diameters
//! and pairwise distance.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A point in (up to) three dimensions.
pub type Point = [f64; 3];

/// Axis-aligned bounding box.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BBox {
    pub min: Point,
    pub max: Point,
}

impl BBox {
    /// Empty box ready for [`BBox::expand`].
    pub fn empty() -> Self {
        BBox {
            min: [f64::INFINITY; 3],
            max: [f64::NEG_INFINITY; 3],
        }
    }

    /// Smallest box containing all `points`.
    pub fn of_points(points: &[Point]) -> Self {
        let mut b = BBox::empty();
        for p in points {
            b.expand(p);
        }
        b
    }

    pub fn expand(&mut self, p: &Point) {
        for d in 0..3 {
            self.min[d] = self.min[d].min(p[d]);
            self.max[d] = self.max[d].max(p[d]);
        }
    }

    /// Euclidean diameter of the box.
    pub fn diameter(&self) -> f64 {
        let mut s = 0.0;
        for d in 0..3 {
            let w = (self.max[d] - self.min[d]).max(0.0);
            s += w * w;
        }
        s.sqrt()
    }

    /// Widest axis (the KD split dimension).
    pub fn widest_axis(&self) -> usize {
        let mut best = 0;
        let mut w = f64::NEG_INFINITY;
        for d in 0..3 {
            let wd = self.max[d] - self.min[d];
            if wd > w {
                w = wd;
                best = d;
            }
        }
        best
    }

    /// Euclidean distance between two boxes (0 when they touch/overlap).
    pub fn distance(&self, other: &BBox) -> f64 {
        let mut s = 0.0;
        for d in 0..3 {
            let gap = (self.min[d] - other.max[d])
                .max(other.min[d] - self.max[d])
                .max(0.0);
            s += gap * gap;
        }
        s.sqrt()
    }

    /// Box center.
    pub fn center(&self) -> Point {
        [
            0.5 * (self.min[0] + self.max[0]),
            0.5 * (self.min[1] + self.max[1]),
            0.5 * (self.min[2] + self.max[2]),
        ]
    }
}

/// Euclidean distance between two points.
pub fn dist(a: &Point, b: &Point) -> f64 {
    let dx = a[0] - b[0];
    let dy = a[1] - b[1];
    let dz = a[2] - b[2];
    (dx * dx + dy * dy + dz * dz).sqrt()
}

/// `n` i.i.d. uniform points in the unit cube (the paper's test geometry).
pub fn uniform_cube(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            [
                rng.random::<f64>(),
                rng.random::<f64>(),
                rng.random::<f64>(),
            ]
        })
        .collect()
}

/// Regular `k x k x k` grid in the unit cube (`n = k^3` points).
pub fn grid_cube(k: usize) -> Vec<Point> {
    let h = 1.0 / k.max(1) as f64;
    let mut pts = Vec::with_capacity(k * k * k);
    for z in 0..k {
        for y in 0..k {
            for x in 0..k {
                pts.push([
                    (x as f64 + 0.5) * h,
                    (y as f64 + 0.5) * h,
                    (z as f64 + 0.5) * h,
                ]);
            }
        }
    }
    pts
}

/// Regular `kx x ky` grid on the z=0 plane (separator geometry for the
/// frontal-matrix experiments).
pub fn grid_plane(kx: usize, ky: usize) -> Vec<Point> {
    let hx = 1.0 / kx.max(1) as f64;
    let hy = 1.0 / ky.max(1) as f64;
    let mut pts = Vec::with_capacity(kx * ky);
    for y in 0..ky {
        for x in 0..kx {
            pts.push([(x as f64 + 0.5) * hx, (y as f64 + 0.5) * hy, 0.0]);
        }
    }
    pts
}

/// `n` i.i.d. uniform points on the unit sphere surface (boundary-element
/// style geometry for extra examples/tests).
pub fn uniform_sphere(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            // Marsaglia rejection sampling.
            loop {
                let x = 2.0 * rng.random::<f64>() - 1.0;
                let y = 2.0 * rng.random::<f64>() - 1.0;
                let s = x * x + y * y;
                if s < 1.0 {
                    let t = 2.0 * (1.0 - s).sqrt();
                    return [x * t, y * t, 1.0 - 2.0 * s];
                }
            }
        })
        .collect()
}

/// `n` points in Gaussian blobs centered at random sites in the unit cube —
/// strongly non-uniform density, the stress case for KD clustering and
/// admissibility (real spatial-statistics data is clustered, not uniform).
pub fn clustered_blobs(n: usize, blobs: usize, spread: f64, seed: u64) -> Vec<Point> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let blobs = blobs.max(1);
    let centers: Vec<Point> = (0..blobs)
        .map(|_| {
            [
                rng.random::<f64>(),
                rng.random::<f64>(),
                rng.random::<f64>(),
            ]
        })
        .collect();
    (0..n)
        .map(|i| {
            let c = centers[i % blobs];
            let mut p = [0.0; 3];
            for (d, pd) in p.iter_mut().enumerate() {
                // Box-Muller normal deviate.
                let u1: f64 = rng.random::<f64>().max(1e-12);
                let u2: f64 = rng.random();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                *pd = c[d] + spread * z;
            }
            p
        })
        .collect()
}

/// `n` points on an annulus `r_in ≤ r ≤ r_out` in the z = 0 plane —
/// 2-D boundary-style geometry with a hole.
pub fn annulus(n: usize, r_in: f64, r_out: f64, seed: u64) -> Vec<Point> {
    assert!(
        r_in >= 0.0 && r_out > r_in,
        "annulus radii must satisfy 0 <= r_in < r_out"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let theta = 2.0 * std::f64::consts::PI * rng.random::<f64>();
            // Area-uniform radius.
            let u: f64 = rng.random();
            let r = (r_in * r_in + u * (r_out * r_out - r_in * r_in)).sqrt();
            [r * theta.cos(), r * theta.sin(), 0.0]
        })
        .collect()
}

/// `n` uniform points in an anisotropic box `[0,sx]×[0,sy]×[0,sz]` —
/// stretched geometry exercising the widest-axis KD splits.
pub fn anisotropic_box(n: usize, scales: [f64; 3], seed: u64) -> Vec<Point> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            [
                scales[0] * rng.random::<f64>(),
                scales[1] * rng.random::<f64>(),
                scales[2] * rng.random::<f64>(),
            ]
        })
        .collect()
}

/// `n` points along a helix of `turns` turns — intrinsically 1-D geometry
/// embedded in 3-D (curve-like discretizations: wires, filaments).
pub fn helix(n: usize, turns: f64, radius: f64, height: f64) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let t = i as f64 / n.max(1) as f64;
            let theta = 2.0 * std::f64::consts::PI * turns * t;
            [radius * theta.cos(), radius * theta.sin(), height * t]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bbox_contains_points() {
        let pts = uniform_cube(100, 1);
        let b = BBox::of_points(&pts);
        for p in &pts {
            for d in 0..3 {
                assert!(p[d] >= b.min[d] && p[d] <= b.max[d]);
            }
        }
    }

    #[test]
    fn bbox_distance_zero_when_overlapping() {
        let a = BBox {
            min: [0.0; 3],
            max: [1.0; 3],
        };
        let b = BBox {
            min: [0.5, 0.5, 0.5],
            max: [2.0; 3],
        };
        assert_eq!(a.distance(&b), 0.0);
    }

    #[test]
    fn bbox_distance_axis_separated() {
        let a = BBox {
            min: [0.0; 3],
            max: [1.0; 3],
        };
        let b = BBox {
            min: [3.0, 0.0, 0.0],
            max: [4.0, 1.0, 1.0],
        };
        assert!((a.distance(&b) - 2.0).abs() < 1e-15);
    }

    #[test]
    fn diameter_of_unit_cube() {
        let b = BBox {
            min: [0.0; 3],
            max: [1.0; 3],
        };
        assert!((b.diameter() - 3.0_f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn widest_axis_detected() {
        let b = BBox {
            min: [0.0; 3],
            max: [1.0, 5.0, 2.0],
        };
        assert_eq!(b.widest_axis(), 1);
    }

    #[test]
    fn generators_have_right_counts() {
        assert_eq!(uniform_cube(17, 2).len(), 17);
        assert_eq!(grid_cube(4).len(), 64);
        assert_eq!(grid_plane(5, 7).len(), 35);
        assert_eq!(uniform_sphere(23, 3).len(), 23);
    }

    #[test]
    fn sphere_points_on_surface() {
        for p in uniform_sphere(50, 4) {
            let r = (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt();
            assert!((r - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn blobs_cluster_around_centers() {
        let pts = clustered_blobs(300, 3, 0.01, 5);
        assert_eq!(pts.len(), 300);
        // With spread 0.01, the bounding box of each blob's points is tiny;
        // points of the same blob (stride 3) stay close together.
        for i in (0..270).step_by(3) {
            assert!(dist(&pts[i], &pts[i + 3]) < 0.2, "blob scatter too large");
        }
    }

    #[test]
    fn annulus_respects_radii() {
        for p in annulus(200, 0.5, 1.0, 6) {
            let r = (p[0] * p[0] + p[1] * p[1]).sqrt();
            assert!(
                (0.5 - 1e-12..=1.0 + 1e-12).contains(&r),
                "radius {r} outside annulus"
            );
            assert_eq!(p[2], 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "annulus radii")]
    fn annulus_rejects_bad_radii() {
        annulus(10, 1.0, 0.5, 7);
    }

    #[test]
    fn anisotropic_box_respects_scales() {
        let pts = anisotropic_box(100, [10.0, 1.0, 0.1], 8);
        let b = BBox::of_points(&pts);
        assert!(b.max[0] <= 10.0 && b.max[1] <= 1.0 && b.max[2] <= 0.1);
        // KD tree must split the long axis first.
        assert_eq!(b.widest_axis(), 0);
    }

    #[test]
    fn helix_is_a_curve() {
        let pts = helix(100, 3.0, 1.0, 2.0);
        assert_eq!(pts.len(), 100);
        // Consecutive points are close (curve continuity).
        for w in pts.windows(2) {
            assert!(dist(&w[0], &w[1]) < 0.3);
        }
        // Height increases monotonically.
        for w in pts.windows(2) {
            assert!(w[1][2] >= w[0][2]);
        }
    }
}
