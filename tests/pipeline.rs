//! Integration tests spanning the whole workspace: geometry → tree →
//! partition → sketching construction → verification, for every application
//! of the paper and both backends.

use h2sketch::dense::{relative_error_2, DenseOp, EntryAccess, LinOp, Mat};
use h2sketch::kernels::{
    ExponentialKernel, GaussianKernel, HelmholtzKernel, KernelMatrix, Matern32Kernel,
};
use h2sketch::matrix::{direct_construct, DirectConfig, LowRankUpdate};
use h2sketch::runtime::{Backend, Runtime};
use h2sketch::sketch::{sketch_construct, SketchConfig, TolSchedule};
use h2sketch::tree::{uniform_cube, uniform_sphere, Admissibility, ClusterTree, Partition};
use std::sync::Arc;

fn strong_setup(n: usize, leaf: usize, seed: u64) -> (Arc<ClusterTree>, Arc<Partition>) {
    let pts = uniform_cube(n, seed);
    let tree = Arc::new(ClusterTree::build(&pts, leaf));
    let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
    assert!(
        part.top_far_level(&tree).is_some(),
        "partition must have admissible blocks"
    );
    (tree, part)
}

/// Covariance pipeline with the exact kernel as both sampler and generator.
#[test]
fn covariance_pipeline_end_to_end() {
    let (tree, part) = strong_setup(2000, 16, 1);
    let km = KernelMatrix::new(ExponentialKernel { l: 0.2 }, tree.points.clone());
    let rt = Runtime::parallel();
    let cfg = SketchConfig {
        tol: 1e-6,
        initial_samples: 64,
        ..Default::default()
    };
    let (h2, stats) = sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg);
    h2.validate().unwrap();
    assert!(stats.total_samples >= 64);
    let err = relative_error_2(&km, &h2, 20, 2);
    assert!(err < 1e-5, "covariance pipeline err {err}");
}

/// IE pipeline sampled through the *reference H2* operator, exactly like the
/// paper's experiments (sampler = fast H2 matvec, generator = kernel).
#[test]
fn ie_pipeline_with_h2_sampler() {
    let (tree, part) = strong_setup(2000, 16, 3);
    let km = KernelMatrix::new(HelmholtzKernel::paper(2000), tree.points.clone());
    let reference = direct_construct(
        &km,
        tree.clone(),
        part.clone(),
        &DirectConfig {
            tol: 1e-10,
            ..Default::default()
        },
    );
    let rt = Runtime::parallel();
    let cfg = SketchConfig {
        tol: 1e-6,
        initial_samples: 96,
        ..Default::default()
    };
    let (h2, _) = sketch_construct(&reference, &km, tree.clone(), part, &rt, &cfg);
    // Compare against the *kernel*, not the reference: both approximation
    // layers must stay within tolerance.
    let err = relative_error_2(&km, &h2, 20, 4);
    assert!(err < 1e-5, "IE pipeline err {err}");
}

/// The low-rank-update application end to end, verified against a dense sum.
#[test]
fn lowrank_update_pipeline() {
    let (tree, part) = strong_setup(1500, 16, 5);
    let km = KernelMatrix::new(ExponentialKernel { l: 0.2 }, tree.points.clone());
    let base = direct_construct(
        &km,
        tree.clone(),
        part.clone(),
        &DirectConfig {
            tol: 1e-10,
            ..Default::default()
        },
    );
    let mut p = h2sketch::dense::gaussian_mat(1500, 32, 6);
    p.scale(0.02);
    let updated = LowRankUpdate::symmetric(&base, p.clone());

    let rt = Runtime::parallel();
    let cfg = SketchConfig {
        tol: 1e-6,
        initial_samples: 96,
        ..Default::default()
    };
    let (recompressed, _) = sketch_construct(&updated, &updated, tree.clone(), part, &rt, &cfg);

    let mut want = Mat::from_fn(1500, 1500, |i, j| km.entry(i, j));
    let ppt = h2sketch::dense::matmul(
        h2sketch::dense::Op::NoTrans,
        h2sketch::dense::Op::Trans,
        p.rf(),
        p.rf(),
    );
    want.axpy(1.0, &ppt);
    let got = recompressed.to_dense();
    let mut d = got;
    d.axpy(-1.0, &want);
    let rel = d.norm_fro() / want.norm_fro();
    assert!(rel < 1e-5, "update pipeline err {rel}");
}

/// Frontal pipeline: multifrontal extraction → compression (paper Fig 6b).
#[test]
fn frontal_pipeline() {
    let (front, pts) = h2sketch::frontal::poisson_top_front(10, 32);
    let tree = Arc::new(ClusterTree::build(&pts, 16));
    let n = front.rows();
    let permuted = Mat::from_fn(n, n, |i, j| front[(tree.perm[i], tree.perm[j])]);
    let op = DenseOp::new(permuted);
    let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 1.0 }));
    let rt = Runtime::parallel();
    let cfg = SketchConfig {
        tol: 1e-8,
        initial_samples: 64,
        ..Default::default()
    };
    let (h2, _) = sketch_construct(&op, &op, tree.clone(), part, &rt, &cfg);
    let err = relative_error_2(&op, &h2, 20, 7);
    assert!(err < 1e-6, "frontal pipeline err {err}");
}

/// All four kernels construct successfully through the same pipeline.
#[test]
fn all_kernels_compress() {
    let (tree, part) = strong_setup(1200, 16, 8);
    let pts = tree.points.clone();
    let run = |op: &dyn LinOp, gen: &dyn EntryAccess| {
        let rt = Runtime::parallel();
        let cfg = SketchConfig {
            tol: 1e-5,
            initial_samples: 64,
            ..Default::default()
        };
        let (h2, _) = sketch_construct(op, gen, tree.clone(), part.clone(), &rt, &cfg);
        h2
    };
    let e = KernelMatrix::new(ExponentialKernel { l: 0.2 }, pts.clone());
    let g = KernelMatrix::new(GaussianKernel { l: 0.3 }, pts.clone());
    let m = KernelMatrix::new(Matern32Kernel { l: 0.3 }, pts.clone());
    let h = KernelMatrix::new(HelmholtzKernel::paper(1200), pts.clone());
    assert!(relative_error_2(&e, &run(&e, &e), 15, 9) < 1e-4);
    assert!(relative_error_2(&g, &run(&g, &g), 15, 10) < 1e-4);
    assert!(relative_error_2(&m, &run(&m, &m), 15, 11) < 1e-4);
    assert!(relative_error_2(&h, &run(&h, &h), 15, 12) < 1e-4);
}

/// Sphere-surface geometry (lower intrinsic dimension) also works and
/// compresses harder.
#[test]
fn sphere_geometry_pipeline() {
    let pts = uniform_sphere(2000, 13);
    let tree = Arc::new(ClusterTree::build(&pts, 16));
    let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
    let km = KernelMatrix::new(ExponentialKernel { l: 0.5 }, tree.points.clone());
    let rt = Runtime::parallel();
    let cfg = SketchConfig {
        tol: 1e-6,
        initial_samples: 64,
        ..Default::default()
    };
    let (h2, _) = sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg);
    let err = relative_error_2(&km, &h2, 20, 14);
    assert!(err < 1e-5, "sphere pipeline err {err}");
}

/// Per-level tolerance schedule tightens upper levels without breaking
/// anything.
#[test]
fn per_level_schedule_works() {
    let (tree, part) = strong_setup(1500, 16, 15);
    let km = KernelMatrix::new(ExponentialKernel { l: 0.2 }, tree.points.clone());
    let rt = Runtime::parallel();
    let cfg = SketchConfig {
        tol: 1e-6,
        initial_samples: 64,
        schedule: TolSchedule::PerLevel { factor: 0.5 },
        ..Default::default()
    };
    let (h2, _) = sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg);
    let err = relative_error_2(&km, &h2, 20, 16);
    assert!(err < 1e-5, "scheduled construction err {err}");
}

/// Original-order matvec round-trips the permutation correctly.
#[test]
fn original_order_matvec() {
    let (tree, part) = strong_setup(1200, 16, 17);
    let km = KernelMatrix::new(ExponentialKernel { l: 0.2 }, tree.points.clone());
    let rt = Runtime::new(Backend::Parallel);
    let cfg = SketchConfig {
        tol: 1e-7,
        initial_samples: 64,
        ..Default::default()
    };
    let (h2, _) = sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg);

    // Dense kernel in ORIGINAL ordering.
    let pts_orig = uniform_cube(1200, 17);
    let x = h2sketch::dense::gaussian_mat(1200, 2, 18);
    let y = h2.apply_original(&x);
    for probe in [0usize, 37, 613, 1199] {
        let mut want = 0.0;
        for j in 0..1200 {
            let r = h2sketch::tree::dist(&pts_orig[probe], &pts_orig[j]);
            let k = if r == 0.0 { 1.0 } else { (-r / 0.2_f64).exp() };
            want += k * x[(j, 0)];
        }
        let got = y[(probe, 0)];
        assert!(
            (got - want).abs() < 1e-4 * want.abs().max(1.0),
            "row {probe}: {got} vs {want}"
        );
    }
}

/// The paper's headline sampling claim (Fig. 5 labels): the bottom-up
/// algorithm needs O(1) random vectors — the same sample count at every
/// problem size — while top-down methods grow with N.
#[test]
fn sample_count_is_constant_in_n() {
    let samples_at = |n: usize| {
        let pts = h2sketch::tree::uniform_cube(n, 1000 + n as u64);
        let tree = Arc::new(ClusterTree::build(&pts, 16));
        let part = Arc::new(Partition::build(
            &tree,
            h2sketch::tree::Admissibility::Strong { eta: 0.7 },
        ));
        let km = h2sketch::kernels::KernelMatrix::new(
            h2sketch::kernels::ExponentialKernel::default(),
            tree.points.clone(),
        );
        let rt = h2sketch::runtime::Runtime::parallel();
        let cfg = h2sketch::sketch::SketchConfig {
            tol: 1e-6,
            initial_samples: 64,
            sample_block: 16,
            ..Default::default()
        };
        let (h2, stats) =
            h2sketch::sketch::sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg);
        h2.validate().unwrap();
        stats.total_samples
    };
    let s1 = samples_at(1000);
    let s2 = samples_at(2000);
    let s3 = samples_at(4000);
    // Ranks of this kernel are size-independent, so the adaptive loop must
    // settle at (nearly) the same sample count at every N — the O(1)
    // property. Allow one adaptation block of slack.
    let max = s1.max(s2).max(s3);
    let min = s1.min(s2).min(s3);
    assert!(
        max - min <= 16,
        "sample counts {s1}, {s2}, {s3} must be N-independent"
    );
}
