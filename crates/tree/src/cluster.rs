//! KD-tree cluster trees with level-contiguous ("flattened") storage.
//!
//! The paper clusters the matrix indices with a KD-tree (§V.A: "the cluster
//! tree is constructed as a KD-tree with a leaf size of 64–256") and stores
//! tree nodes *contiguously level by level* so each level maps directly onto
//! a batched kernel launch (§IV.A). We reproduce both choices.
//!
//! The tree is *complete*: the split depth `L` is fixed globally at the
//! smallest value with `ceil(n / 2^L) <= leaf_size`, and every branch splits
//! exactly `L` times (median splits keep sibling sizes within one point), so
//! all leaves live on the same level. This is what lets Algorithm 1 process
//! "all nodes at level l" in one batch.

use crate::geometry::{BBox, Point};

/// One node (cluster) of the tree: a contiguous range of permuted indices.
#[derive(Clone, Debug)]
pub struct Cluster {
    /// Start of the index range (inclusive), in tree order.
    pub begin: usize,
    /// End of the index range (exclusive).
    pub end: usize,
    /// Bounding box of the cluster's points.
    pub bbox: BBox,
    /// Node ids of the two children (`None` for leaves).
    pub children: Option<(usize, usize)>,
    /// Parent node id (`None` for the root).
    pub parent: Option<usize>,
}

impl Cluster {
    pub fn len(&self) -> usize {
        self.end - self.begin
    }

    pub fn is_empty(&self) -> bool {
        self.begin == self.end
    }

    pub fn is_leaf(&self) -> bool {
        self.children.is_none()
    }
}

/// A complete binary KD cluster tree over a point cloud.
pub struct ClusterTree {
    /// Points in tree (permuted) order.
    pub points: Vec<Point>,
    /// `perm[new] = old`: original index of the point now at position `new`.
    pub perm: Vec<usize>,
    /// `iperm[old] = new`: inverse permutation.
    pub iperm: Vec<usize>,
    /// Nodes in level-major order (root first).
    pub nodes: Vec<Cluster>,
    /// `level_ptr[l]..level_ptr[l+1]` are the node ids of level `l`
    /// (level 0 = root, last level = leaves).
    pub level_ptr: Vec<usize>,
}

impl ClusterTree {
    /// Build a complete KD tree over `points` with the given leaf size.
    pub fn build(points: &[Point], leaf_size: usize) -> Self {
        assert!(leaf_size >= 1, "leaf_size must be positive");
        let n = points.len();
        assert!(n > 0, "cannot build a tree over zero points");

        // Global depth: smallest L with ceil(n / 2^L) <= leaf_size.
        let mut depth = 0usize;
        while n.div_ceil(1 << depth) > leaf_size {
            depth += 1;
        }

        let mut perm: Vec<usize> = (0..n).collect();
        let mut pts: Vec<Point> = points.to_vec();

        // BFS construction, one level at a time, so node ids are naturally
        // level-contiguous.
        let mut nodes: Vec<Cluster> = Vec::new();
        let mut level_ptr = vec![0usize];
        let root_box = BBox::of_points(&pts);
        nodes.push(Cluster {
            begin: 0,
            end: n,
            bbox: root_box,
            children: None,
            parent: None,
        });
        level_ptr.push(nodes.len());

        for _l in 0..depth {
            let (lo, hi) = (
                level_ptr[level_ptr.len() - 2],
                level_ptr[level_ptr.len() - 1],
            );
            for id in lo..hi {
                let (begin, end, bbox) = {
                    let c = &nodes[id];
                    (c.begin, c.end, c.bbox)
                };
                let len = end - begin;
                let half = len.div_ceil(2);
                // Median split along the widest bbox axis.
                let axis = bbox.widest_axis();
                let seg_pts = &mut pts[begin..end];
                let seg_perm = &mut perm[begin..end];
                sort_segment_by_axis(seg_pts, seg_perm, axis);
                let mid = begin + half;
                let lbox = BBox::of_points(&pts[begin..mid]);
                let rbox = BBox::of_points(&pts[mid..end]);
                let lid = nodes.len();
                nodes.push(Cluster {
                    begin,
                    end: mid,
                    bbox: lbox,
                    children: None,
                    parent: Some(id),
                });
                let rid = nodes.len();
                nodes.push(Cluster {
                    begin: mid,
                    end,
                    bbox: rbox,
                    children: None,
                    parent: Some(id),
                });
                nodes[id].children = Some((lid, rid));
            }
            level_ptr.push(nodes.len());
        }

        let mut iperm = vec![0usize; n];
        for (new, &old) in perm.iter().enumerate() {
            iperm[old] = new;
        }
        ClusterTree {
            points: pts,
            perm,
            iperm,
            nodes,
            level_ptr,
        }
    }

    /// Number of points.
    pub fn npoints(&self) -> usize {
        self.points.len()
    }

    /// Number of levels (root level included); leaves are level `nlevels()-1`.
    pub fn nlevels(&self) -> usize {
        self.level_ptr.len() - 1
    }

    /// The leaf level index.
    pub fn leaf_level(&self) -> usize {
        self.nlevels() - 1
    }

    /// Node ids of level `l`.
    pub fn level(&self, l: usize) -> std::ops::Range<usize> {
        self.level_ptr[l]..self.level_ptr[l + 1]
    }

    /// Number of nodes at level `l`.
    pub fn level_len(&self, l: usize) -> usize {
        self.level_ptr[l + 1] - self.level_ptr[l]
    }

    /// Level of node `id` (found by binary search over the level table).
    pub fn level_of(&self, id: usize) -> usize {
        match self.level_ptr.binary_search(&id) {
            Ok(l) => l.min(self.nlevels() - 1),
            Err(l) => l - 1,
        }
    }

    /// Local (within-level) index of node `id`.
    pub fn local_index(&self, id: usize) -> usize {
        id - self.level_ptr[self.level_of(id)]
    }

    /// The global permuted index range of node `id` as `(begin, end)`.
    pub fn range(&self, id: usize) -> (usize, usize) {
        (self.nodes[id].begin, self.nodes[id].end)
    }

    /// The leaf node containing permuted index `i`.
    pub fn leaf_of(&self, i: usize) -> usize {
        let mut id = 0;
        while let Some((l, r)) = self.nodes[id].children {
            id = if i < self.nodes[l].end { l } else { r };
        }
        id
    }

    /// Maximum leaf cluster size (≤ the requested leaf size).
    pub fn max_leaf_size(&self) -> usize {
        self.level(self.leaf_level())
            .map(|id| self.nodes[id].len())
            .max()
            .unwrap_or(0)
    }

    /// Sanity checks used by tests and debug assertions: contiguous sibling
    /// ranges, consistent parent/child links, all leaves on the last level.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes[0].begin != 0 || self.nodes[0].end != self.npoints() {
            return Err("root must span all points".into());
        }
        for (id, c) in self.nodes.iter().enumerate() {
            if let Some((l, r)) = c.children {
                if self.nodes[l].begin != c.begin
                    || self.nodes[l].end != self.nodes[r].begin
                    || self.nodes[r].end != c.end
                {
                    return Err(format!("node {id}: children do not tile parent range"));
                }
                if self.nodes[l].parent != Some(id) || self.nodes[r].parent != Some(id) {
                    return Err(format!("node {id}: bad parent links"));
                }
            } else if self.level_of(id) != self.leaf_level() {
                return Err(format!("leaf {id} not on the leaf level"));
            }
        }
        // Permutation must be a bijection.
        let mut seen = vec![false; self.npoints()];
        for &p in &self.perm {
            if seen[p] {
                return Err("perm is not a bijection".into());
            }
            seen[p] = true;
        }
        Ok(())
    }
}

/// Sort a segment of points (and the matching permutation entries) by one
/// coordinate axis. Full sort keeps the code simple; an n-th-element
/// selection would do asymptotically less work but tree construction is a
/// negligible fraction of total runtime.
fn sort_segment_by_axis(pts: &mut [Point], perm: &mut [usize], axis: usize) {
    let mut idx: Vec<usize> = (0..pts.len()).collect();
    idx.sort_by(|&a, &b| pts[a][axis].partial_cmp(&pts[b][axis]).unwrap());
    let old_pts = pts.to_vec();
    let old_perm = perm.to_vec();
    for (new, &o) in idx.iter().enumerate() {
        pts[new] = old_pts[o];
        perm[new] = old_perm[o];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::uniform_cube;

    #[test]
    fn builds_and_validates() {
        for n in [1usize, 2, 5, 64, 100, 1000] {
            let pts = uniform_cube(n, n as u64);
            let t = ClusterTree::build(&pts, 16);
            t.validate().unwrap();
            assert_eq!(t.npoints(), n);
        }
    }

    #[test]
    fn leaves_all_at_leaf_level_and_within_size() {
        let pts = uniform_cube(777, 9);
        let t = ClusterTree::build(&pts, 32);
        assert!(t.max_leaf_size() <= 32);
        let leaf_count = t.level_len(t.leaf_level());
        // Complete binary tree: 2^depth leaves.
        assert_eq!(leaf_count, 1 << t.leaf_level());
        // Leaves tile [0, n).
        let mut total = 0;
        for id in t.level(t.leaf_level()) {
            total += t.nodes[id].len();
        }
        assert_eq!(total, 777);
    }

    #[test]
    fn single_leaf_when_small() {
        let pts = uniform_cube(10, 3);
        let t = ClusterTree::build(&pts, 16);
        assert_eq!(t.nlevels(), 1);
        assert!(t.nodes[0].is_leaf());
    }

    #[test]
    fn permutation_maps_points() {
        let pts = uniform_cube(300, 4);
        let t = ClusterTree::build(&pts, 8);
        for new in 0..300 {
            assert_eq!(t.points[new], pts[t.perm[new]]);
            assert_eq!(t.iperm[t.perm[new]], new);
        }
    }

    #[test]
    fn level_of_and_local_index() {
        let pts = uniform_cube(256, 5);
        let t = ClusterTree::build(&pts, 16);
        assert_eq!(t.level_of(0), 0);
        for l in 0..t.nlevels() {
            for (li, id) in t.level(l).enumerate() {
                assert_eq!(t.level_of(id), l, "id {id}");
                assert_eq!(t.local_index(id), li);
            }
        }
    }

    #[test]
    fn leaf_of_finds_containing_leaf() {
        let pts = uniform_cube(200, 6);
        let t = ClusterTree::build(&pts, 8);
        for i in (0..200).step_by(17) {
            let leaf = t.leaf_of(i);
            assert!(t.nodes[leaf].is_leaf());
            assert!(t.nodes[leaf].begin <= i && i < t.nodes[leaf].end);
        }
    }

    #[test]
    fn bboxes_nest() {
        let pts = uniform_cube(512, 7);
        let t = ClusterTree::build(&pts, 32);
        for (id, c) in t.nodes.iter().enumerate() {
            if let Some(p) = c.parent {
                let pb = &t.nodes[p].bbox;
                for d in 0..3 {
                    assert!(pb.min[d] <= c.bbox.min[d] + 1e-15, "node {id}");
                    assert!(pb.max[d] >= c.bbox.max[d] - 1e-15, "node {id}");
                }
            }
        }
    }

    #[test]
    fn sibling_sizes_within_one() {
        let pts = uniform_cube(1000, 8);
        let t = ClusterTree::build(&pts, 16);
        for c in &t.nodes {
            if let Some((l, r)) = c.children {
                let dl = t.nodes[l].len() as i64;
                let dr = t.nodes[r].len() as i64;
                assert!((dl - dr).abs() <= 1);
            }
        }
    }
}
