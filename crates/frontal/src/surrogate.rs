//! Green's-function surrogate fronts for large separator sizes.
//!
//! The exact multifrontal extraction is quadratic-plus in the grid size, so
//! the paper-scale fronts (up to 62500 = 250² separator points) are
//! expensive to materialize exactly. The Schur complement of the 3-D
//! Laplacian onto a plane separator is, up to discretization, a
//! boundary-integral operator whose kernel behaves like the free-space
//! Green's function `1/(4π r)` near the plane; its hierarchical rank
//! structure — the only thing Fig. 6(b) measures — is the same. The
//! surrogate evaluates exactly that kernel on the separator grid points
//! (documented substitution, DESIGN.md §2).

use h2_kernels::{KernelMatrix, LaplaceKernel};
use h2_tree::{grid_plane, Point};

/// Surrogate top front for a `k x k` plane separator: the Laplace kernel on
/// the separator's grid points with an `1/(2π h)` self-term.
pub fn green_surrogate_front(k: usize) -> (KernelMatrix<LaplaceKernel>, Vec<Point>) {
    let pts = grid_plane(k, k);
    let h = 1.0 / k as f64;
    let kernel = LaplaceKernel::with_mesh_width(h);
    (KernelMatrix::new(kernel, pts.clone()), pts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2_dense::EntryAccess;

    #[test]
    fn surrogate_has_separator_size() {
        let (km, pts) = green_surrogate_front(10);
        assert_eq!(km.n(), 100);
        assert_eq!(pts.len(), 100);
    }

    #[test]
    fn surrogate_is_spd_small() {
        let (km, _) = green_surrogate_front(6);
        let mut dense = h2_dense::Mat::from_fn(36, 36, |i, j| km.entry(i, j));
        assert!(h2_dense::cholesky_in_place(&mut dense.rm()).is_ok());
    }

    /// The surrogate matches the real front's qualitative rank structure:
    /// *well-separated* sub-blocks compress strongly (the strong-admissible
    /// structure H2 exploits), while merely disjoint adjacent halves do not
    /// (which is exactly why weak-admissibility formats blow up on
    /// separator fronts — the Fig. 6(b) story).
    #[test]
    fn surrogate_separated_blocks_low_rank_adjacent_not() {
        let k = 12;
        let (km, _) = green_surrogate_front(k);
        // First and last grid rows of the plane: distance ≈ 1, diam ≈ 1.
        let first_row: Vec<usize> = (0..k).collect();
        let last_row: Vec<usize> = ((k * (k - 1))..k * k).collect();
        let far = km.block_mat(&first_row, &last_row);
        let s_far = h2_dense::svd(&far);
        let rank_far = s_far
            .s
            .iter()
            .take_while(|&&v| v > 1e-8 * s_far.s[0])
            .count();
        assert!(
            rank_far <= 10,
            "separated rows must be very low rank, got {rank_far}"
        );

        // Adjacent halves share a long interface: high rank.
        let n = km.n();
        let lo: Vec<usize> = (0..n / 2).collect();
        let hi: Vec<usize> = (n / 2..n).collect();
        let near = km.block_mat(&lo, &hi);
        let s_near = h2_dense::svd(&near);
        let rank_near = s_near
            .s
            .iter()
            .take_while(|&&v| v > 1e-8 * s_near.s[0])
            .count();
        assert!(
            rank_near > 3 * rank_far,
            "adjacent halves should resist compression"
        );
    }
}
