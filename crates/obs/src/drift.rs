//! Sim-drift attribution: pair measured per-epoch costs with a
//! simulator's per-epoch predictions and decompose the makespan-ratio gap
//! into per-epoch (and per-term) contributions.
//!
//! The invariant that makes the table trustworthy: when the rows cover
//! exactly the measured epochs (their `measured` values summing to the
//! projected makespan) and exactly the predicted epochs (their
//! `predicted` values summing to the simulator makespan), then the
//! per-row shares `measured_e / predicted_total` sum *identically* to the
//! observed makespan ratio — the documented 2x/3x tolerance band becomes
//! an explained decomposition instead of a blind tolerance. The
//! constructors in `h2_sched::trace` build tables with that coverage, and
//! the `sched` acceptance tests assert the sum.

use crate::json::Json;

/// One cost term inside an epoch (compute / comm / launch in the §IV.B
/// model) — informative breakdown; the ratio decomposition uses the row
/// totals.
#[derive(Clone, Debug)]
pub struct DriftPart {
    pub name: &'static str,
    pub measured: f64,
    pub predicted: f64,
}

/// One epoch (or simulator level) of the pairing.
#[derive(Clone, Debug)]
pub struct DriftRow {
    pub label: String,
    /// Measured (projected) seconds this epoch contributes.
    pub measured: f64,
    /// Simulator-predicted seconds for the paired epoch (0 when the
    /// executor epoch has no simulator counterpart, e.g. a tail epoch).
    pub predicted: f64,
    pub parts: Vec<DriftPart>,
}

/// The attribution table.
#[derive(Clone, Debug, Default)]
pub struct DriftTable {
    pub rows: Vec<DriftRow>,
}

impl DriftTable {
    pub fn measured_total(&self) -> f64 {
        self.rows.iter().map(|r| r.measured).sum()
    }

    pub fn predicted_total(&self) -> f64 {
        self.rows.iter().map(|r| r.predicted).sum()
    }

    /// The observed makespan ratio `measured_total / predicted_total`.
    pub fn ratio(&self) -> f64 {
        let p = self.predicted_total();
        if p == 0.0 {
            return 1.0;
        }
        self.measured_total() / p
    }

    /// Per-row share of the ratio: `measured_e / predicted_total`. The
    /// shares sum to [`DriftTable::ratio`] exactly (same denominator), so
    /// "which epoch contributes the gap" is read directly off the table.
    pub fn shares(&self) -> Vec<f64> {
        let p = self.predicted_total();
        if p == 0.0 {
            return vec![0.0; self.rows.len()];
        }
        self.rows.iter().map(|r| r.measured / p).collect()
    }

    /// Per-row *excess* over prediction, in ratio units:
    /// `(measured_e - predicted_e) / predicted_total`. Summing these and
    /// adding 1 recovers the ratio; positive entries are epochs where the
    /// executor ran slower than the model.
    pub fn excesses(&self) -> Vec<f64> {
        let p = self.predicted_total();
        if p == 0.0 {
            return vec![0.0; self.rows.len()];
        }
        self.rows
            .iter()
            .map(|r| (r.measured - r.predicted) / p)
            .collect()
    }

    /// Row indices sorted by descending excess (the biggest gap
    /// contributors first).
    pub fn ranked(&self) -> Vec<usize> {
        let ex = self.excesses();
        let mut order: Vec<usize> = (0..self.rows.len()).collect();
        order.sort_by(|&a, &b| {
            ex[b]
                .partial_cmp(&ex[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        order
    }

    /// Render as an aligned text table (for bench stdout).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>12} {:>12} {:>8} {:>8}\n",
            "epoch", "measured(s)", "predicted(s)", "share", "excess"
        ));
        let shares = self.shares();
        let excesses = self.excesses();
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "{:<28} {:>12.3e} {:>12.3e} {:>8.3} {:>+8.3}\n",
                r.label, r.measured, r.predicted, shares[i], excesses[i]
            ));
        }
        out.push_str(&format!(
            "{:<28} {:>12.3e} {:>12.3e} {:>8.3}  (ratio)\n",
            "total",
            self.measured_total(),
            self.predicted_total(),
            self.ratio()
        ));
        out
    }

    pub fn to_json(&self) -> Json {
        let shares = self.shares();
        let excesses = self.excesses();
        Json::obj(vec![
            (
                "rows",
                Json::Arr(
                    self.rows
                        .iter()
                        .enumerate()
                        .map(|(i, r)| {
                            Json::obj(vec![
                                ("label", Json::str(r.label.clone())),
                                ("measured_s", Json::Num(r.measured)),
                                ("predicted_s", Json::Num(r.predicted)),
                                ("share", Json::Num(shares[i])),
                                ("excess", Json::Num(excesses[i])),
                                (
                                    "parts",
                                    Json::Arr(
                                        r.parts
                                            .iter()
                                            .map(|p| {
                                                Json::obj(vec![
                                                    ("name", Json::str(p.name)),
                                                    ("measured_s", Json::Num(p.measured)),
                                                    ("predicted_s", Json::Num(p.predicted)),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("measured_total_s", Json::Num(self.measured_total())),
            ("predicted_total_s", Json::Num(self.predicted_total())),
            ("ratio", Json::Num(self.ratio())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> DriftTable {
        DriftTable {
            rows: vec![
                DriftRow {
                    label: "L3".into(),
                    measured: 2.0,
                    predicted: 1.0,
                    parts: vec![],
                },
                DriftRow {
                    label: "L2".into(),
                    measured: 1.0,
                    predicted: 1.0,
                    parts: vec![],
                },
                DriftRow {
                    label: "tail".into(),
                    measured: 0.5,
                    predicted: 0.0,
                    parts: vec![],
                },
            ],
        }
    }

    #[test]
    fn shares_sum_to_ratio_and_excesses_to_ratio_minus_one() {
        let t = table();
        assert!((t.ratio() - 1.75).abs() < 1e-15);
        let share_sum: f64 = t.shares().iter().sum();
        assert!((share_sum - t.ratio()).abs() < 1e-15);
        let excess_sum: f64 = t.excesses().iter().sum();
        assert!((1.0 + excess_sum - t.ratio()).abs() < 1e-15);
        // L3 (excess 0.5) ranks above tail (0.25) above L2 (0.0).
        assert_eq!(t.ranked(), vec![0, 2, 1]);
        let json = t.to_json();
        assert!((json.get("ratio").unwrap().as_f64().unwrap() - 1.75).abs() < 1e-15);
        assert!(t.render().contains("L3"));
    }

    #[test]
    fn empty_prediction_degrades_to_unit_ratio() {
        let t = DriftTable { rows: vec![] };
        assert_eq!(t.ratio(), 1.0);
        assert!(t.shares().is_empty());
    }
}
