//! Top-down peeling construction (the comparator algorithms of Fig. 5).
//!
//! This is the Lin–Lu–Ying / Levitt–Martinsson family the paper compares
//! against (H2Opus's top-down sketching and ButterflyPACK's sketched H
//! construction): process the matrix tree **from the coarsest level down**,
//! sketching each level's admissible blocks after *peeling off* (subtracting
//! the action of) everything already built. Structured random test blocks
//! restricted to one cluster colour at a time keep same-level and
//! finer-level contributions from contaminating each other — the graph
//! colouring of [23].
//!
//! The defining cost: every level needs its own sketches, so the total
//! sample count grows as `O(colors · d · log N)` — against the O(1) samples
//! of the bottom-up Algorithm 1. Run with a weak-admissibility partition
//! this reproduces the HODLR-route blow-up that makes H2Opus's top-down
//! construction run out of memory on 3-D problems (§V.B).

use crate::hmatrix::{HMatrix, LowRankBlock};
use h2_dense::cpqr::{row_id, Truncation};
use h2_dense::{estimate_norm_2, EntryAccess, LinOp, Mat};
use h2_tree::{ClusterTree, Partition};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of the peeling constructions.
#[derive(Clone, Copy, Debug)]
pub struct PeelConfig {
    /// Relative tolerance ε.
    pub tol: f64,
    /// Samples per colour per adaptation round.
    pub d_block: usize,
    /// Total sample budget (the algorithm stops growing a level's sketch
    /// when exceeded — mirrors H2Opus's OOM failure mode gracefully).
    pub max_samples: usize,
    /// Safety factor on the absolute threshold (see `SketchConfig::safety`).
    pub safety: f64,
    /// Power iterations for the norm estimate.
    pub norm_est_iters: usize,
    pub seed: u64,
}

impl Default for PeelConfig {
    fn default() -> Self {
        PeelConfig {
            tol: 1e-6,
            d_block: 32,
            max_samples: 100_000,
            safety: 1.0 / 30.0,
            norm_est_iters: 10,
            seed: 0xBEEF,
        }
    }
}

/// Statistics of a peeling construction (Fig. 5 sample labels).
#[derive(Clone, Debug, Default)]
pub struct PeelStats {
    /// Total random vectors consumed.
    pub total_samples: usize,
    /// Colour count per processed level (coarse first).
    pub colors_per_level: Vec<usize>,
    /// Samples consumed per processed level.
    pub samples_per_level: Vec<usize>,
    pub elapsed: Duration,
    /// True when the sample budget was exhausted before convergence.
    pub budget_exhausted: bool,
}

/// Greedy colouring of the level-`l` conflict graph: clusters `t, t'`
/// conflict when some same-level cluster `s` has both in its active
/// (admissible ∪ inadmissible) lists — the condition under which their
/// sketch responses would overlap in the rows of `s`.
fn color_level(tree: &ClusterTree, partition: &Partition, level: usize) -> Vec<usize> {
    let ids: Vec<usize> = tree.level(level).collect();
    let base = ids[0];
    let n = ids.len();
    let mut adj: Vec<std::collections::BTreeSet<usize>> = vec![Default::default(); n];
    for &s in &ids {
        let mut active: Vec<usize> = partition.far_of[s]
            .iter()
            .chain(partition.inadm_of[s].iter())
            .map(|&t| t - base)
            .collect();
        active.sort_unstable();
        active.dedup();
        for (i, &a) in active.iter().enumerate() {
            for &b in &active[i + 1..] {
                adj[a].insert(b);
                adj[b].insert(a);
            }
        }
    }
    let mut color = vec![usize::MAX; n];
    for v in 0..n {
        let used: std::collections::BTreeSet<usize> = adj[v]
            .iter()
            .filter_map(|&u| (color[u] != usize::MAX).then_some(color[u]))
            .collect();
        let mut c = 0;
        while used.contains(&c) {
            c += 1;
        }
        color[v] = c;
    }
    color
}

/// Top-down peeling construction over an arbitrary partition.
///
/// `sampler`/`gen` are the same two black-box inputs as Algorithm 1; the
/// skeleton coupling blocks are evaluated with `gen` (partially black-box,
/// like the main algorithm).
pub fn topdown_peel(
    sampler: &dyn LinOp,
    gen: &dyn EntryAccess,
    tree: Arc<ClusterTree>,
    partition: Arc<Partition>,
    cfg: &PeelConfig,
) -> (HMatrix, PeelStats) {
    let t0 = Instant::now();
    let n = tree.npoints();
    let mut h = HMatrix::new(tree.clone(), partition.clone());
    let mut stats = PeelStats::default();

    let norm_est = estimate_norm_2(sampler, cfg.norm_est_iters, cfg.seed ^ 0xA5A5);
    let eps_abs = cfg.safety * cfg.tol * norm_est.max(f64::MIN_POSITIVE);

    let top = partition.top_far_level(&tree);
    let leaf_level = tree.leaf_level();

    if let Some(top) = top {
        'levels: for l in top..=leaf_level {
            let ids: Vec<usize> = tree.level(l).collect();
            let base = ids[0];
            // Unordered admissible pairs of this level.
            let pairs: Vec<(usize, usize)> = ids
                .iter()
                .flat_map(|&s| {
                    partition.far_of[s]
                        .iter()
                        .filter(move |&&t| s <= t)
                        .map(move |&t| (s, t))
                })
                .collect();
            if pairs.is_empty() {
                stats.colors_per_level.push(0);
                stats.samples_per_level.push(0);
                continue;
            }
            let colors = color_level(&tree, &partition, l);
            let ncolors = colors.iter().max().unwrap() + 1;
            stats.colors_per_level.push(ncolors);

            // Per ordered admissible pair (s, t): the row sketch of
            // K(I_s, I_t) accumulated over rounds, and the matching Ω(I_t).
            let mut sketches: HashMap<(usize, usize), (Mat, Mat)> = HashMap::new();
            let mut level_samples = 0usize;

            for c in 0..ncolors {
                let members: Vec<usize> = ids
                    .iter()
                    .copied()
                    .filter(|&t| colors[t - base] == c)
                    .collect();
                // Ordered pairs whose column cluster has this colour.
                let targets: Vec<(usize, usize)> = ids
                    .iter()
                    .flat_map(|&s| {
                        partition.far_of[s]
                            .iter()
                            .filter(|&&t| colors[t - base] == c)
                            .map(move |&t| (s, t))
                    })
                    .collect();
                if targets.is_empty() {
                    continue;
                }
                let mut round = 0usize;
                loop {
                    // Structured test block: Gaussian on the colour's rows.
                    let mut omega = Mat::zeros(n, cfg.d_block);
                    let mut rng = SmallRng::seed_from_u64(
                        cfg.seed ^ ((l as u64) << 40) ^ ((c as u64) << 20) ^ round as u64,
                    );
                    for &t in &members {
                        let (b, e) = tree.range(t);
                        for j in 0..cfg.d_block {
                            for i in b..e {
                                *omega.rm().at_mut(i, j) = h2_dense::standard_normal(&mut rng);
                            }
                        }
                    }
                    // Sketch and peel off everything already built.
                    let mut y = sampler.apply_mat(&omega);
                    {
                        let mut ym = y.rm();
                        let mut tmp = Mat::zeros(n, cfg.d_block);
                        h.apply_partial(omega.rf(), &mut tmp.rm());
                        ym.axpy(-1.0, tmp.rf());
                    }
                    stats.total_samples += cfg.d_block;
                    level_samples += cfg.d_block;

                    // Accumulate per-pair sketches.
                    for &(s, t) in &targets {
                        let (sb, se) = tree.range(s);
                        let (tb, te) = tree.range(t);
                        let ys = y.view(sb, 0, se - sb, cfg.d_block).to_mat();
                        let ot = omega.view(tb, 0, te - tb, cfg.d_block).to_mat();
                        sketches
                            .entry((s, t))
                            .and_modify(|(a, b)| {
                                a.append_cols(ys.rf());
                                b.append_cols(ot.rf());
                            })
                            .or_insert((ys, ot));
                    }

                    // Convergence: smallest |R_ii| of each pair's sketch.
                    let d_cur = sketches[&targets[0]].0.cols();
                    let eps_conv = eps_abs * (d_cur as f64).sqrt();
                    let unconverged = targets.par_iter().any(|&(s, t)| {
                        let (ys, _) = &sketches[&(s, t)];
                        if d_cur >= ys.rows() {
                            return false;
                        }
                        let f = h2_dense::qr_factor(ys.clone());
                        f.min_r_diag_abs().map(|m| m > eps_conv).unwrap_or(false)
                    });
                    if !unconverged {
                        break;
                    }
                    if stats.total_samples + cfg.d_block > cfg.max_samples {
                        stats.budget_exhausted = true;
                        break;
                    }
                    round += 1;
                }
                if stats.budget_exhausted {
                    // Finish this level with what we have, then stop
                    // (graceful version of the paper's observed OOM).
                    finalize_level(&pairs, &sketches, gen, &tree, eps_abs, &mut h);
                    stats.samples_per_level.push(level_samples);
                    break 'levels;
                }
            }

            finalize_level(&pairs, &sketches, gen, &tree, eps_abs, &mut h);
            stats.samples_per_level.push(level_samples);
        }
    }

    // Dense leaf blocks by entry evaluation.
    let mut near_pairs = Vec::new();
    for s in tree.level(leaf_level) {
        for &t in partition.near_of[s].iter().filter(|&&t| s <= t) {
            near_pairs.push((s, t));
        }
    }
    let dense_blocks: Vec<Mat> = near_pairs
        .par_iter()
        .map(|&(s, t)| {
            let (sb, se) = tree.range(s);
            let (tb, te) = tree.range(t);
            let rows: Vec<usize> = (sb..se).collect();
            let cols: Vec<usize> = (tb..te).collect();
            gen.block_mat(&rows, &cols)
        })
        .collect();
    for ((s, t), b) in near_pairs.into_iter().zip(dense_blocks) {
        h.dense.insert((s, t), b);
    }

    stats.elapsed = t0.elapsed();
    (h, stats)
}

/// Turn the per-pair sketches of one level into low-rank blocks:
/// row IDs on both sides pick skeletons, the coupling is evaluated at the
/// skeleton cross.
fn finalize_level(
    pairs: &[(usize, usize)],
    sketches: &HashMap<(usize, usize), (Mat, Mat)>,
    gen: &dyn EntryAccess,
    tree: &ClusterTree,
    eps_abs: f64,
    h: &mut HMatrix,
) {
    let built: Vec<((usize, usize), LowRankBlock)> = pairs
        .par_iter()
        .filter_map(|&(s, t)| {
            let (ys, _) = sketches.get(&(s, t))?;
            let (yt, _) = sketches.get(&(t, s)).or_else(|| sketches.get(&(s, t)))?;
            let d = ys.cols() as f64;
            let rule = Truncation::Absolute(eps_abs * d.sqrt());
            let ids = row_id(ys, rule);
            let idt = if s == t {
                row_id(ys, rule)
            } else {
                row_id(yt, rule)
            };
            let (sb, _) = tree.range(s);
            let (tb, _) = tree.range(t);
            let skel_s: Vec<usize> = ids.skel.iter().map(|&r| sb + r).collect();
            let skel_t: Vec<usize> = idt.skel.iter().map(|&r| tb + r).collect();
            let b = gen.block_mat(&skel_s, &skel_t);
            Some((
                (s, t),
                LowRankBlock {
                    u: ids.u,
                    b,
                    v: idt.u,
                },
            ))
        })
        .collect();
    for (k, v) in built {
        h.lowrank.insert(k, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2_dense::relative_error_2;
    use h2_kernels::{ExponentialKernel, KernelMatrix};
    use h2_tree::Admissibility;

    #[test]
    fn coloring_respects_conflicts() {
        let pts = h2_tree::uniform_cube(2000, 120);
        let tree = ClusterTree::build(&pts, 32);
        let part = Partition::build(&tree, Admissibility::Strong { eta: 0.7 });
        let l = tree.leaf_level();
        let colors = color_level(&tree, &part, l);
        let base = tree.level(l).next().unwrap();
        for s in tree.level(l) {
            let active: Vec<usize> = part.far_of[s]
                .iter()
                .chain(part.inadm_of[s].iter())
                .copied()
                .collect();
            for (i, &a) in active.iter().enumerate() {
                for &b in &active[i + 1..] {
                    if a != b {
                        assert_ne!(
                            colors[a - base],
                            colors[b - base],
                            "conflicting clusters {a},{b} share a colour"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn peeling_constructs_accurate_h_matrix() {
        // Use the fast H2 reference matvec as the sampler (the exact kernel
        // matvec is O(N²d) per colour pass and would dominate test time).
        let pts = h2_tree::uniform_cube(1500, 121);
        let tree = Arc::new(ClusterTree::build(&pts, 16));
        let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
        let km = KernelMatrix::new(ExponentialKernel::default(), tree.points.clone());
        let reference = h2_matrix::direct_construct(
            &km,
            tree.clone(),
            part.clone(),
            &h2_matrix::DirectConfig {
                tol: 1e-10,
                ..Default::default()
            },
        );
        let cfg = PeelConfig {
            tol: 1e-6,
            ..Default::default()
        };
        let (h, stats) = topdown_peel(&reference, &km, tree.clone(), part, &cfg);
        assert!(stats.total_samples > 0);
        assert!(!stats.budget_exhausted);
        let e = relative_error_2(&km, &h, 20, 122);
        assert!(e < 1e-5, "peeling rel err {e}");
    }

    #[test]
    fn peeling_needs_more_samples_per_extra_level() {
        // The defining top-down cost: each level consumes fresh samples.
        let pts = h2_tree::uniform_cube(1500, 123);
        let tree = Arc::new(ClusterTree::build(&pts, 16));
        let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
        let km = KernelMatrix::new(ExponentialKernel::default(), tree.points.clone());
        let reference = h2_matrix::direct_construct(
            &km,
            tree.clone(),
            part.clone(),
            &h2_matrix::DirectConfig {
                tol: 1e-8,
                ..Default::default()
            },
        );
        let cfg = PeelConfig {
            tol: 1e-4,
            ..Default::default()
        };
        let (_, stats) = topdown_peel(&reference, &km, tree.clone(), part, &cfg);
        let active_levels = stats.samples_per_level.iter().filter(|&&s| s > 0).count();
        assert!(active_levels >= 2);
        // every active level costs at least one block of samples
        assert!(stats.total_samples >= active_levels * cfg.d_block);
    }
}
