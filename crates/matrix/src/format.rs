//! The side-generic H2 matrix representation.
//!
//! An H2 matrix (paper §II.A) stores:
//! * explicit bases `U_τ` at leaf clusters,
//! * transfer matrices `E_{ν1}, E_{ν2}` at inner clusters (stored stacked as
//!   one `(k_{ν1}+k_{ν2}) x k_τ` matrix — the nested-basis property,
//!   eq. (2)),
//! * small coupling matrices `B_{s,t} = K(Ĩ^r_s, Ĩ^c_t)` for admissible
//!   pairs,
//! * dense blocks `D_{s,t} = K(I_s, I_t)` for inadmissible leaf pairs.
//!
//! One type covers both symmetry regimes. The *row* side (`basis`/`skel` —
//! the basis tree `U` and row skeletons `Ĩ^r`) always exists. The *column*
//! side is [`BasisSide`]-valued and optional:
//!
//! * **symmetric** (`col == None`, the paper's simplification `V_t = U_t`):
//!   the column side aliases the row side, and the block stores deduplicate
//!   by unordered pair (`s <= t`) with the transposed orientation applied on
//!   the fly;
//! * **unsymmetric** (`col == Some(..)`): an independent column basis tree
//!   `V` with its own skeletons `Ĩ^c`, and block stores keyed by *ordered*
//!   pairs — for an unsymmetric matrix `K(I_s, I_t)` and `K(I_t, I_s)` are
//!   disjoint entry sets, so near-field memory doubles inherently.
//!
//! The same [`BlockStore`] implements both keying disciplines (and therefore
//! one `memory_bytes` accounting); [`BlockStore::get_op`] answers "the block
//! of `K` or `Kᵀ` at ordered position `(s, t)`" uniformly, which is what the
//! matvec and the construction's BSR subtraction consume.

use h2_dense::Mat;
use h2_tree::{ClusterTree, Partition};
use std::collections::HashMap;
use std::sync::Arc;

/// Keying discipline of a [`BlockStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreLayout {
    /// Blocks stored once per unordered pair (`s <= t`); the `(t, s)` block
    /// is the stored block transposed (valid for symmetric matrices).
    Symmetric,
    /// Blocks stored per ordered pair; `(s, t)` and `(t, s)` are
    /// independent.
    Ordered,
}

/// Storage for per-pair blocks under either keying discipline.
pub struct BlockStore {
    /// Stored pair keys (unordered `s <= t` for [`StoreLayout::Symmetric`],
    /// ordered otherwise), in insertion order.
    pub pairs: Vec<(usize, usize)>,
    /// `blocks[i]` is the block of `pairs[i]`, oriented as
    /// `K(rows(pairs[i].0), cols(pairs[i].1))`.
    pub blocks: Vec<Mat>,
    index: HashMap<(usize, usize), usize>,
    layout: StoreLayout,
}

impl Default for BlockStore {
    fn default() -> Self {
        BlockStore::symmetric()
    }
}

impl BlockStore {
    /// A symmetric (unordered-pair) store — the historical default.
    pub fn new() -> Self {
        BlockStore::symmetric()
    }

    pub fn symmetric() -> Self {
        BlockStore {
            pairs: Vec::new(),
            blocks: Vec::new(),
            index: HashMap::new(),
            layout: StoreLayout::Symmetric,
        }
    }

    pub fn ordered() -> Self {
        BlockStore {
            pairs: Vec::new(),
            blocks: Vec::new(),
            index: HashMap::new(),
            layout: StoreLayout::Ordered,
        }
    }

    pub fn layout(&self) -> StoreLayout {
        self.layout
    }

    /// Insert the block for pair `(s, t)`.
    ///
    /// Symmetric layout requires the canonical orientation `s <= t`; ordered
    /// layout accepts any pair. Duplicate keys panic in both layouts.
    pub fn insert(&mut self, s: usize, t: usize, block: Mat) {
        if self.layout == StoreLayout::Symmetric {
            assert!(
                s <= t,
                "symmetric BlockStore stores unordered pairs; pass s <= t"
            );
        }
        let idx = self.blocks.len();
        let prev = self.index.insert((s, t), idx);
        assert!(prev.is_none(), "duplicate block ({s},{t})");
        self.pairs.push((s, t));
        self.blocks.push(block);
    }

    /// Look up the block of `K` at the *ordered* position `(s, t)`. Returns
    /// the stored matrix and whether it must be read transposed.
    pub fn get(&self, s: usize, t: usize) -> Option<(&Mat, bool)> {
        match self.layout {
            StoreLayout::Symmetric => {
                let key = (s.min(t), s.max(t));
                self.index.get(&key).map(|&i| (&self.blocks[i], s > t))
            }
            StoreLayout::Ordered => self.index.get(&(s, t)).map(|&i| (&self.blocks[i], false)),
        }
    }

    /// Look up the block of `K` (`transpose == false`) or of `Kᵀ`
    /// (`transpose == true`) at the ordered position `(s, t)` —
    /// `Kᵀ(I_s, I_t) = K(I_t, I_s)ᵀ`. This is the one lookup the
    /// side-generic matvec and BSR subtraction need.
    ///
    /// A symmetric store represents a symmetric matrix, so `Kᵀ = K` and the
    /// flag is ignored — transpose products read *identical* blocks with
    /// identical orientations and are therefore bitwise equal to forward
    /// products, not merely equal up to roundoff.
    pub fn get_op(&self, s: usize, t: usize, transpose: bool) -> Option<(&Mat, bool)> {
        match self.layout {
            StoreLayout::Symmetric => self.get(s, t),
            StoreLayout::Ordered => {
                if transpose {
                    self.get(t, s).map(|(m, tr)| (m, !tr))
                } else {
                    self.get(s, t)
                }
            }
        }
    }

    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Heap bytes of all blocks (identical accounting in both layouts).
    pub fn memory_bytes(&self) -> usize {
        self.blocks.iter().map(|b| b.memory_bytes()).sum()
    }
}

/// One side of the nested-basis pair: per-node bases/transfers plus
/// skeleton index lists.
#[derive(Default)]
pub struct BasisSide {
    /// Per node id: leaf basis (`m x k`) or stacked transfer
    /// `[E_{ν1}; E_{ν2}]` (`(k1+k2) x k`). Empty (0x0) above the top
    /// admissible level.
    pub basis: Vec<Mat>,
    /// Per node id: skeleton (global permuted) indices, length = rank.
    pub skel: Vec<Vec<usize>>,
}

impl BasisSide {
    fn empty(nnodes: usize) -> Self {
        BasisSide {
            basis: (0..nnodes).map(|_| Mat::zeros(0, 0)).collect(),
            skel: vec![Vec::new(); nnodes],
        }
    }
}

/// An H2 matrix over a cluster tree and block partition, symmetric or
/// unsymmetric (see the module docs for the side layout).
pub struct H2Matrix {
    pub tree: Arc<ClusterTree>,
    pub partition: Arc<Partition>,
    /// Row-side basis `U_τ` (leaf) or stacked row transfers (inner).
    pub basis: Vec<Mat>,
    /// Row skeleton indices `Ĩ^r_τ` (global permuted), length = row rank.
    pub skel: Vec<Vec<usize>>,
    /// Column side `V` / `Ĩ^c`. `None` means symmetric: the column side
    /// aliases the row side.
    pub col: Option<BasisSide>,
    /// Coupling blocks `B_{s,t} = K(Ĩ^r_s, Ĩ^c_t)` for admissible pairs.
    pub coupling: BlockStore,
    /// Dense leaf blocks `D_{s,t} = K(I_s, I_t)` for inadmissible pairs.
    pub dense: BlockStore,
}

impl H2Matrix {
    /// An empty *symmetric* shell ready to be populated by a constructor.
    pub fn new_shell(tree: Arc<ClusterTree>, partition: Arc<Partition>) -> Self {
        let nnodes = tree.nodes.len();
        H2Matrix {
            tree,
            partition,
            basis: (0..nnodes).map(|_| Mat::zeros(0, 0)).collect(),
            skel: vec![Vec::new(); nnodes],
            col: None,
            coupling: BlockStore::symmetric(),
            dense: BlockStore::symmetric(),
        }
    }

    /// An empty *unsymmetric* shell: independent column side, ordered block
    /// stores.
    pub fn new_shell_unsym(tree: Arc<ClusterTree>, partition: Arc<Partition>) -> Self {
        let nnodes = tree.nodes.len();
        H2Matrix {
            tree,
            partition,
            basis: (0..nnodes).map(|_| Mat::zeros(0, 0)).collect(),
            skel: vec![Vec::new(); nnodes],
            col: Some(BasisSide::empty(nnodes)),
            coupling: BlockStore::ordered(),
            dense: BlockStore::ordered(),
        }
    }

    pub fn n(&self) -> usize {
        self.tree.npoints()
    }

    /// Whether the column side aliases the row side.
    pub fn is_symmetric(&self) -> bool {
        self.col.is_none()
    }

    /// Column-side bases (the row side itself when symmetric).
    pub fn col_basis(&self) -> &[Mat] {
        match &self.col {
            Some(c) => &c.basis,
            None => &self.basis,
        }
    }

    /// Column-side skeletons (the row side itself when symmetric).
    pub fn col_skel(&self) -> &[Vec<usize>] {
        match &self.col {
            Some(c) => &c.skel,
            None => &self.skel,
        }
    }

    /// Row-side basis (leaf) or stacked transfer (inner) of one node.
    pub fn row_basis_of(&self, node: usize) -> &Mat {
        &self.basis[node]
    }

    /// Column-side basis/transfer of one node (the row side itself when
    /// symmetric) — the per-node accessor the two-sided solver paths use.
    pub fn col_basis_of(&self, node: usize) -> &Mat {
        match &self.col {
            Some(c) => &c.basis[node],
            None => &self.basis[node],
        }
    }

    /// The *independently stored* column basis of one node; `None` when the
    /// column side aliases the row side (symmetric layout). Callers that
    /// can share work between aliased sides (e.g. one QR instead of two in
    /// the ULV rotation) branch on this.
    pub fn col_basis_distinct(&self, node: usize) -> Option<&Mat> {
        self.col.as_ref().map(|c| &c.basis[node])
    }

    /// Row rank of node `τ` (0 when it has no basis). For symmetric
    /// matrices this is *the* rank.
    pub fn rank(&self, node: usize) -> usize {
        self.basis[node].cols()
    }

    /// Row rank of node `τ` (alias of [`H2Matrix::rank`]).
    pub fn row_rank(&self, node: usize) -> usize {
        self.rank(node)
    }

    /// Column rank of node `τ`.
    pub fn col_rank(&self, node: usize) -> usize {
        self.col_basis()[node].cols()
    }

    /// Whether node `τ` carries a row basis.
    pub fn has_basis(&self, node: usize) -> bool {
        self.rank(node) > 0
    }

    /// Total heap bytes of the representation (the paper's Fig. 6 metric).
    /// Bases, skeletons and block stores of every *stored* side are counted
    /// once — the aliased symmetric column side costs nothing, consistently
    /// with the shared [`BlockStore::memory_bytes`] accounting.
    pub fn memory_bytes(&self) -> usize {
        let usize_bytes = std::mem::size_of::<usize>();
        let mut total: usize = self.basis.iter().map(|b| b.memory_bytes()).sum();
        total += self
            .skel
            .iter()
            .map(|s| s.len() * usize_bytes)
            .sum::<usize>();
        if let Some(c) = &self.col {
            total += c.basis.iter().map(|b| b.memory_bytes()).sum::<usize>();
            total += c.skel.iter().map(|s| s.len() * usize_bytes).sum::<usize>();
        }
        total + self.coupling.memory_bytes() + self.dense.memory_bytes()
    }

    /// Memory broken down by component, in bytes.
    pub fn memory_breakdown(&self) -> MemoryBreakdown {
        let mut basis: usize = self.basis.iter().map(|b| b.memory_bytes()).sum();
        if let Some(c) = &self.col {
            basis += c.basis.iter().map(|b| b.memory_bytes()).sum::<usize>();
        }
        MemoryBreakdown {
            basis,
            coupling: self.coupling.memory_bytes(),
            dense: self.dense.memory_bytes(),
        }
    }

    /// `(min, max)` rank over all nodes with a basis, across both sides
    /// (Table II "Rank range").
    pub fn rank_range(&self) -> (usize, usize) {
        let mut ranks: Vec<usize> = (0..self.basis.len())
            .map(|i| self.rank(i))
            .filter(|&r| r > 0)
            .collect();
        if let Some(c) = &self.col {
            ranks.extend(
                (0..c.basis.len())
                    .map(|i| c.basis[i].cols())
                    .filter(|&r| r > 0),
            );
        }
        match (ranks.iter().min(), ranks.iter().max()) {
            (Some(&a), Some(&b)) => (a, b),
            _ => (0, 0),
        }
    }

    /// Per-level `(min, max, mean)` row-rank statistics.
    pub fn rank_stats_per_level(&self) -> Vec<(usize, usize, f64)> {
        (0..self.tree.nlevels())
            .map(|l| {
                let ranks: Vec<usize> = self
                    .tree
                    .level(l)
                    .map(|id| self.rank(id))
                    .filter(|&r| r > 0)
                    .collect();
                if ranks.is_empty() {
                    (0, 0, 0.0)
                } else {
                    let mn = *ranks.iter().min().unwrap();
                    let mx = *ranks.iter().max().unwrap();
                    let mean = ranks.iter().sum::<usize>() as f64 / ranks.len() as f64;
                    (mn, mx, mean)
                }
            })
            .collect()
    }

    /// Structural sanity checks: basis shapes consistent with tree and
    /// children ranks on every stored side, skeleton indices inside cluster
    /// ranges, block shapes consistent with side ranks / cluster sizes, all
    /// partition blocks present under the store's keying discipline.
    pub fn validate(&self) -> Result<(), String> {
        let tree = &self.tree;
        let leaf_level = tree.leaf_level();
        let mut sides: Vec<(&str, &[Mat], &[Vec<usize>])> = vec![("row", &self.basis, &self.skel)];
        if let Some(c) = &self.col {
            sides.push(("col", &c.basis, &c.skel));
        }
        for (name, basis, skel) in sides {
            for (id, c) in tree.nodes.iter().enumerate() {
                let k = basis[id].cols();
                if k == 0 {
                    continue;
                }
                let b = &basis[id];
                if tree.level_of(id) == leaf_level {
                    if b.rows() != c.len() {
                        return Err(format!(
                            "{name} leaf {id}: basis rows {} != cluster size {}",
                            b.rows(),
                            c.len()
                        ));
                    }
                } else {
                    let (c1, c2) = c.children.unwrap();
                    let want = basis[c1].cols() + basis[c2].cols();
                    if b.rows() != want {
                        return Err(format!(
                            "{name} inner {id}: transfer rows {} != child ranks {want}",
                            b.rows()
                        ));
                    }
                }
                if skel[id].len() != k {
                    return Err(format!("{name} node {id}: skeleton len != rank"));
                }
                for &i in &skel[id] {
                    if i < c.begin || i >= c.end {
                        return Err(format!(
                            "{name} node {id}: skeleton index {i} outside cluster"
                        ));
                    }
                }
            }
        }
        let symmetric = self.is_symmetric();
        // Every admissible pair has a coupling block of matching shape.
        for (s, list) in self.partition.far_of.iter().enumerate() {
            for &t in list.iter().filter(|&&t| !symmetric || s <= t) {
                match self.coupling.get(s, t) {
                    None => return Err(format!("missing coupling block ({s},{t})")),
                    Some((b, _)) => {
                        if b.rows() != self.row_rank(s) || b.cols() != self.col_rank(t) {
                            return Err(format!(
                                "coupling ({s},{t}) shape {}x{} != row/col ranks {}x{}",
                                b.rows(),
                                b.cols(),
                                self.row_rank(s),
                                self.col_rank(t)
                            ));
                        }
                    }
                }
            }
        }
        // Every near pair has a dense block of matching shape.
        for (s, list) in self.partition.near_of.iter().enumerate() {
            for &t in list.iter().filter(|&&t| !symmetric || s <= t) {
                match self.dense.get(s, t) {
                    None => return Err(format!("missing dense block ({s},{t})")),
                    Some((b, _)) => {
                        if b.rows() != tree.nodes[s].len() || b.cols() != tree.nodes[t].len() {
                            return Err(format!("dense ({s},{t}) shape mismatch"));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Bytes per component of an [`H2Matrix`].
#[derive(Clone, Copy, Debug)]
pub struct MemoryBreakdown {
    pub basis: usize,
    pub coupling: usize,
    pub dense: usize,
}

impl MemoryBreakdown {
    pub fn total(&self) -> usize {
        self.basis + self.coupling + self.dense
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_store_symmetric_lookup() {
        let mut s = BlockStore::new();
        s.insert(2, 5, Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let (b, t) = s.get(2, 5).unwrap();
        assert!(!t);
        assert_eq!(b[(0, 1)], 2.0);
        let (b2, t2) = s.get(5, 2).unwrap();
        assert!(t2);
        assert_eq!(b2[(0, 1)], 2.0);
        assert!(s.get(1, 1).is_none());
    }

    #[test]
    #[should_panic(expected = "s <= t")]
    fn block_store_rejects_unordered() {
        let mut s = BlockStore::new();
        s.insert(5, 2, Mat::zeros(1, 1));
    }

    #[test]
    fn ordered_store_roundtrip() {
        let mut s = BlockStore::ordered();
        s.insert(2, 5, Mat::from_rows(&[&[1.0, 2.0]]));
        s.insert(5, 2, Mat::from_rows(&[&[3.0], &[4.0]]));
        assert_eq!(s.get(2, 5).unwrap().0[(0, 1)], 2.0);
        assert!(
            !s.get(2, 5).unwrap().1,
            "ordered lookups are never transposed"
        );
        assert_eq!(s.get(5, 2).unwrap().0[(1, 0)], 4.0);
        assert!(s.get(2, 2).is_none());
        assert_eq!(s.len(), 2);
        assert_eq!(s.memory_bytes(), 4 * 8);
    }

    #[test]
    #[should_panic(expected = "duplicate block")]
    fn ordered_store_rejects_duplicates() {
        let mut s = BlockStore::ordered();
        s.insert(1, 2, Mat::zeros(1, 1));
        s.insert(1, 2, Mat::zeros(1, 1));
    }

    #[test]
    fn get_op_is_transpose_consistent_across_layouts() {
        // Symmetric store: K(5,2) = K(2,5)^T read through the flag.
        let mut sym = BlockStore::symmetric();
        sym.insert(2, 5, Mat::from_rows(&[&[1.0, 2.0]]));
        let (m, tr) = sym.get_op(2, 5, false).unwrap();
        assert!(!tr);
        assert_eq!(m[(0, 1)], 2.0);
        // Kᵀ at (2,5) = K(5,2)ᵀ = (K(2,5)ᵀ)ᵀ = K(2,5) for the stored block.
        let (m, tr) = sym.get_op(2, 5, true).unwrap();
        assert!(!tr);
        assert_eq!(m[(0, 1)], 2.0);

        // Ordered store: Kᵀ at (2,5) reads the (5,2) block transposed.
        let mut ord = BlockStore::ordered();
        ord.insert(2, 5, Mat::from_rows(&[&[1.0, 2.0]]));
        ord.insert(5, 2, Mat::from_rows(&[&[3.0], &[4.0]]));
        let (m, tr) = ord.get_op(2, 5, true).unwrap();
        assert!(tr);
        assert_eq!(m[(1, 0)], 4.0);
    }

    #[test]
    fn memory_accounting_consistent_across_layouts() {
        let mut sym = BlockStore::new();
        sym.insert(0, 1, Mat::zeros(10, 10));
        sym.insert(1, 2, Mat::zeros(5, 4));
        assert_eq!(sym.memory_bytes(), (100 + 20) * 8);
        let mut ord = BlockStore::ordered();
        ord.insert(0, 1, Mat::zeros(10, 10));
        ord.insert(1, 2, Mat::zeros(5, 4));
        assert_eq!(ord.memory_bytes(), sym.memory_bytes());
    }
}
