//! Partition explorer — the quantitative version of the paper's Fig. 1/2/4:
//! build cluster trees and block partitions over several geometries and
//! admissibility parameters, print the matrix-tree structure, and render a
//! small partition as ASCII art.
//!
//! ```sh
//! cargo run --release --example partition_explorer
//! ```

use h2sketch::tree::{uniform_cube, uniform_sphere, Admissibility, ClusterTree, Partition};

fn main() {
    // --- ASCII rendering of a small partition (Fig. 1's block picture) ---
    let pts = uniform_cube(256, 51);
    let tree = ClusterTree::build(&pts, 16);
    let part = Partition::build(&tree, Admissibility::Strong { eta: 1.0 });
    println!(
        "# 256-point partition at eta=1.0 (D=dense leaf, numbers=level of admissible block)\n"
    );
    render_ascii(&tree, &part);

    // --- Csp and block statistics across geometries and eta (Fig. 4) ---
    println!("\n# partition statistics\n");
    println!(
        "{:<22} {:>8} {:>6} {:>12} {:>12} {:>10}",
        "geometry", "N", "eta", "adm blocks", "dense blocks", "Csp(dense)"
    );
    for (name, pts) in [
        ("cube uniform", uniform_cube(16384, 52)),
        ("sphere surface", uniform_sphere(16384, 53)),
    ] {
        let tree = ClusterTree::build(&pts, 64);
        for eta in [0.5, 0.7, 1.0] {
            let part = Partition::build(&tree, Admissibility::Strong { eta });
            assert!(part.is_complete(&tree));
            let far: usize = (0..tree.nlevels()).map(|l| part.far_count(&tree, l)).sum();
            println!(
                "{:<22} {:>8} {:>6} {:>12} {:>12} {:>10}",
                name,
                16384,
                eta,
                far,
                part.near_count(&tree),
                part.csp_near(&tree)
            );
        }
    }
    println!("\n(Surface geometry compresses better: lower intrinsic dimension ⇒ smaller Csp.)");
}

/// Render the leaf-level block structure: which leaf pairs are dense and at
/// which tree level each admissible pair is resolved.
fn render_ascii(tree: &ClusterTree, part: &Partition) {
    let leaves: Vec<usize> = tree.level(tree.leaf_level()).collect();
    let n = leaves.len();
    let mut grid = vec![vec![' '; n]; n];
    for (i, &s) in leaves.iter().enumerate() {
        for (j, &t) in leaves.iter().enumerate() {
            // find the level at which the pair (s,t) resolves
            let (mut a, mut b) = (s, t);
            loop {
                if part.near_of[a].binary_search(&b).is_ok() {
                    grid[i][j] = 'D';
                    break;
                }
                if part.far_of[a].binary_search(&b).is_ok() {
                    let lvl = tree.level_of(a);
                    grid[i][j] = char::from_digit(lvl as u32 % 10, 10).unwrap();
                    break;
                }
                match (tree.nodes[a].parent, tree.nodes[b].parent) {
                    (Some(pa), Some(pb)) => {
                        a = pa;
                        b = pb;
                    }
                    _ => break,
                }
            }
        }
    }
    for row in &grid {
        println!("  {}", row.iter().collect::<String>());
    }
}
