//! One-sided Jacobi SVD.
//!
//! Used for exact singular values in tests, for building synthetic low-rank
//! inputs, and for the rank diagnostics reported in Table II. One-sided
//! Jacobi is slow but simple and very accurate for the small/medium blocks we
//! apply it to.

use crate::gemm::{matmul, Op};
use crate::mat::Mat;

/// Thin SVD `A = U diag(s) V^T` with `U: m x r`, `s: r`, `V: n x r`,
/// `r = min(m, n)`. Singular values are in non-increasing order.
pub struct Svd {
    pub u: Mat,
    pub s: Vec<f64>,
    pub v: Mat,
}

/// Compute the thin SVD of `a` by one-sided Jacobi rotations.
pub fn svd(a: &Mat) -> Svd {
    let (m, n) = (a.rows(), a.cols());
    if m >= n {
        svd_tall(a.clone())
    } else {
        // SVD of A^T = V s U^T.
        let t = svd_tall(a.transpose());
        Svd {
            u: t.v,
            s: t.s,
            v: t.u,
        }
    }
}

fn svd_tall(mut u: Mat) -> Svd {
    let n = u.cols();
    let mut v = Mat::eye(n);
    let eps = 1e-15;
    let max_sweeps = 60;

    for _sweep in 0..max_sweeps {
        let mut off = 0.0_f64;
        for p in 0..n {
            for q in (p + 1)..n {
                // Gram entries of the column pair.
                let (mut app, mut aqq, mut apq) = (0.0, 0.0, 0.0);
                for i in 0..u.rows() {
                    let up = u[(i, p)];
                    let uq = u[(i, q)];
                    app += up * up;
                    aqq += uq * uq;
                    apq += up * uq;
                }
                let denom = (app * aqq).sqrt();
                if denom > 0.0 {
                    off = off.max(apq.abs() / denom);
                }
                if apq.abs() <= eps * denom || denom == 0.0 {
                    continue;
                }
                // Jacobi rotation zeroing the (p,q) Gram entry.
                let zeta = (aqq - app) / (2.0 * apq);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..u.rows() {
                    let up = u[(i, p)];
                    let uq = u[(i, q)];
                    u[(i, p)] = c * up - s * uq;
                    u[(i, q)] = s * up + c * uq;
                }
                for i in 0..n {
                    let vp = v[(i, p)];
                    let vq = v[(i, q)];
                    v[(i, p)] = c * vp - s * vq;
                    v[(i, q)] = s * vp + c * vq;
                }
            }
        }
        if off < 1e-14 {
            break;
        }
    }

    // Column norms are the singular values; normalize U.
    let mut s: Vec<f64> = (0..n)
        .map(|j| u.col(j).iter().map(|x| x * x).sum::<f64>().sqrt())
        .collect();
    for j in 0..n {
        if s[j] > 0.0 {
            let inv = 1.0 / s[j];
            for x in u.col_mut(j) {
                *x *= inv;
            }
        }
    }

    // Sort by descending singular value.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| s[j].partial_cmp(&s[i]).unwrap());
    let u = u.select_cols(&order);
    let v = v.select_cols(&order);
    s = order.iter().map(|&i| s[i]).collect();
    Svd { u, s, v }
}

impl Svd {
    /// Reconstruct `U diag(s) V^T`.
    pub fn reconstruct(&self) -> Mat {
        let mut us = self.u.clone();
        for (j, &sv) in self.s.iter().enumerate() {
            for x in us.col_mut(j) {
                *x *= sv;
            }
        }
        matmul(Op::NoTrans, Op::Trans, us.rf(), self.v.rf())
    }

    /// Numerical rank at the given absolute tolerance.
    pub fn rank(&self, tol: f64) -> usize {
        self.s.iter().take_while(|&&x| x > tol).count()
    }
}

/// Exact spectral norm via SVD (tests only; O(mn·min(m,n)) per sweep).
pub fn spectral_norm(a: &Mat) -> f64 {
    if a.rows() == 0 || a.cols() == 0 {
        return 0.0;
    }
    svd(a).s[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rand::{gaussian_mat, random_low_rank};

    #[test]
    fn reconstructs() {
        for (m, n) in [(10, 6), (6, 10), (8, 8), (1, 5)] {
            let a = gaussian_mat(m, n, (m + 31 * n) as u64);
            let d = {
                let mut r = svd(&a).reconstruct();
                r.axpy(-1.0, &a);
                r
            };
            assert!(d.norm_max() < 1e-11, "{m}x{n}: {}", d.norm_max());
        }
    }

    #[test]
    fn orthonormal_factors() {
        let a = gaussian_mat(12, 7, 33);
        let f = svd(&a);
        let utu = matmul(Op::Trans, Op::NoTrans, f.u.rf(), f.u.rf());
        let vtv = matmul(Op::Trans, Op::NoTrans, f.v.rf(), f.v.rf());
        let mut du = utu;
        du.axpy(-1.0, &Mat::eye(7));
        let mut dv = vtv;
        dv.axpy(-1.0, &Mat::eye(7));
        assert!(du.norm_max() < 1e-12);
        assert!(dv.norm_max() < 1e-12);
    }

    #[test]
    fn detects_rank() {
        let a = random_low_rank(20, 16, 4, 0.25, 34);
        let f = svd(&a);
        assert_eq!(f.rank(1e-10), 4);
        for w in f.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn spectral_norm_of_diagonal() {
        let a = Mat::from_rows(&[&[2.0, 0.0], &[0.0, -7.0]]);
        assert!((spectral_norm(&a) - 7.0).abs() < 1e-12);
    }
}
