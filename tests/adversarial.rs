//! Failure-injection and adversarial-input tests: degenerate geometries,
//! duplicate points, extreme parameters, and operators that stress the
//! construction's assumptions.

use h2sketch::dense::{relative_error_2, DenseOp, EntryAccess, Mat};
use h2sketch::kernels::{ExponentialKernel, Kernel, KernelMatrix};
use h2sketch::runtime::Runtime;
use h2sketch::sketch::{sketch_construct, SketchConfig};
use h2sketch::tree::{uniform_cube, Admissibility, ClusterTree, Partition, Point};
use std::sync::Arc;

/// Duplicate points (zero pairwise distance) must not break clustering or
/// kernel evaluation (the diagonal convention handles r = 0).
#[test]
fn duplicate_points_survive() {
    let mut pts = uniform_cube(600, 70);
    for i in 0..100 {
        pts[i + 100] = pts[i]; // 100 exact duplicates
    }
    let tree = Arc::new(ClusterTree::build(&pts, 16));
    tree.validate().unwrap();
    let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
    assert!(part.is_complete(&tree));
    let km = KernelMatrix::new(ExponentialKernel { l: 0.2 }, tree.points.clone());
    let rt = Runtime::parallel();
    let cfg = SketchConfig {
        tol: 1e-5,
        initial_samples: 64,
        ..Default::default()
    };
    let (h2, _) = sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg);
    let e = relative_error_2(&km, &h2, 15, 71);
    assert!(e < 1e-4, "duplicates err {e}");
}

/// Collinear (1-D degenerate) geometry: KD splits must still terminate and
/// the partition must be complete.
#[test]
fn collinear_points() {
    let pts: Vec<Point> = (0..500).map(|i| [i as f64 / 500.0, 0.0, 0.0]).collect();
    let tree = Arc::new(ClusterTree::build(&pts, 16));
    tree.validate().unwrap();
    let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
    assert!(part.is_complete(&tree));
    // 1-D geometry at strong admissibility has plenty of far field.
    assert!(part.top_far_level(&tree).is_some());
    let km = KernelMatrix::new(ExponentialKernel { l: 0.1 }, tree.points.clone());
    let rt = Runtime::sequential();
    let cfg = SketchConfig {
        tol: 1e-7,
        initial_samples: 48,
        ..Default::default()
    };
    let (h2, _) = sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg);
    let e = relative_error_2(&km, &h2, 15, 72);
    assert!(e < 1e-6, "collinear err {e}");
}

/// All points identical: everything is one dense-ish cluster; construction
/// degenerates gracefully.
#[test]
fn coincident_cloud() {
    let pts: Vec<Point> = vec![[0.5, 0.5, 0.5]; 64];
    let tree = Arc::new(ClusterTree::build(&pts, 16));
    tree.validate().unwrap();
    let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
    assert!(part.is_complete(&tree));
    // All clusters coincide spatially: nothing is admissible.
    assert!(part.top_far_level(&tree).is_none());
    let km = KernelMatrix::new(ExponentialKernel { l: 0.2 }, tree.points.clone());
    let rt = Runtime::sequential();
    let (h2, stats) = sketch_construct(&km, &km, tree.clone(), part, &rt, &SketchConfig::default());
    assert_eq!(stats.total_samples, 0);
    // Dense-only representation is exact: all entries are diag or k(0)=diag.
    assert_eq!(h2.entry(3, 60), km.entry(3, 60));
}

/// A kernel with a heavy diagonal and negligible off-diagonal: ranks
/// collapse to ~zero everywhere and the result is still within tolerance.
#[test]
fn nearly_diagonal_operator() {
    #[derive(Clone, Copy)]
    struct Spike;
    impl Kernel for Spike {
        fn eval_r(&self, r: f64) -> f64 {
            1e-14 * (-r).exp()
        }
        fn diag(&self) -> f64 {
            1.0
        }
    }
    let pts = uniform_cube(900, 73);
    let tree = Arc::new(ClusterTree::build(&pts, 16));
    let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
    let km = KernelMatrix::new(Spike, tree.points.clone());
    let rt = Runtime::parallel();
    let cfg = SketchConfig {
        tol: 1e-6,
        initial_samples: 32,
        ..Default::default()
    };
    let (h2, _) = sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg);
    // Far field is below tolerance: expect (near-)zero ranks.
    let (_, hi) = h2.rank_range();
    assert!(hi <= 4, "spike kernel rank {hi} should collapse");
    let e = relative_error_2(&km, &h2, 15, 74);
    assert!(e < 1e-5, "spike err {e}");
}

/// Indefinite (sign-flipping) symmetric operator: the construction makes no
/// SPD assumption and must still meet tolerance.
#[test]
fn indefinite_operator() {
    let n = 800;
    let pts = uniform_cube(n, 75);
    let tree = Arc::new(ClusterTree::build(&pts, 16));
    let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
    // Oscillatory kernel ⇒ indefinite matrix.
    #[derive(Clone, Copy)]
    struct Osc;
    impl Kernel for Osc {
        fn eval_r(&self, r: f64) -> f64 {
            (20.0 * r).cos() * (-r / 0.3).exp()
        }
        fn diag(&self) -> f64 {
            1.0
        }
    }
    let km = KernelMatrix::new(Osc, tree.points.clone());
    let rt = Runtime::parallel();
    let cfg = SketchConfig {
        tol: 1e-6,
        initial_samples: 96,
        ..Default::default()
    };
    let (h2, _) = sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg);
    let e = relative_error_2(&km, &h2, 15, 76);
    assert!(e < 1e-5, "oscillatory err {e}");
}

/// Zero operator: everything must come out exactly zero, no NaNs.
#[test]
fn zero_operator() {
    let n = 400;
    let pts = uniform_cube(n, 77);
    let tree = Arc::new(ClusterTree::build(&pts, 16));
    let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
    let op = DenseOp::new(Mat::zeros(n, n));
    let rt = Runtime::sequential();
    let cfg = SketchConfig {
        tol: 1e-6,
        initial_samples: 16,
        ..Default::default()
    };
    let (h2, _) = sketch_construct(&op, &op, tree.clone(), part, &rt, &cfg);
    let x = h2sketch::dense::gaussian_mat(n, 2, 78);
    let y = h2.apply_permuted_mat(&x);
    assert_eq!(y.norm_max(), 0.0, "zero operator must stay exactly zero");
}

/// Single point: the smallest possible problem.
#[test]
fn single_point() {
    let pts = vec![[0.1, 0.2, 0.3]];
    let tree = Arc::new(ClusterTree::build(&pts, 16));
    let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
    let km = KernelMatrix::new(ExponentialKernel::default(), tree.points.clone());
    let rt = Runtime::sequential();
    let (h2, _) = sketch_construct(&km, &km, tree, part, &rt, &SketchConfig::default());
    assert_eq!(h2.entry(0, 0), 1.0);
}

/// Strongly clustered (blob) geometry: highly non-uniform densities stress
/// KD median splits and the admissibility condition.
#[test]
fn clustered_blob_geometry() {
    let pts = h2sketch::tree::clustered_blobs(1200, 5, 0.03, 72);
    let tree = Arc::new(ClusterTree::build(&pts, 16));
    tree.validate().unwrap();
    let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
    assert!(part.is_complete(&tree));
    let km = KernelMatrix::new(ExponentialKernel { l: 0.2 }, tree.points.clone());
    let rt = Runtime::parallel();
    let cfg = SketchConfig {
        tol: 1e-6,
        initial_samples: 64,
        ..Default::default()
    };
    let (h2, _) = sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg);
    h2.validate().unwrap();
    let e = relative_error_2(&km, &h2, 15, 73);
    assert!(e < 1e-5, "blobs err {e}");
}

/// Extremely anisotropic box (1000:1 aspect): widest-axis splits must cope
/// and the construction stays accurate.
#[test]
fn anisotropic_geometry() {
    let pts = h2sketch::tree::anisotropic_box(1000, [100.0, 1.0, 0.1], 74);
    let tree = Arc::new(ClusterTree::build(&pts, 16));
    tree.validate().unwrap();
    let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
    assert!(part.is_complete(&tree));
    let km = KernelMatrix::new(ExponentialKernel { l: 20.0 }, tree.points.clone());
    let rt = Runtime::parallel();
    let cfg = SketchConfig {
        tol: 1e-6,
        initial_samples: 64,
        ..Default::default()
    };
    let (h2, _) = sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg);
    let e = relative_error_2(&km, &h2, 15, 75);
    assert!(e < 1e-5, "anisotropic err {e}");
}

/// Helix (intrinsically 1-D curve in 3-D): strong admissibility should
/// yield small ranks despite the ambient dimension.
#[test]
fn helix_geometry_small_ranks() {
    let pts = h2sketch::tree::helix(1500, 5.0, 1.0, 4.0);
    let tree = Arc::new(ClusterTree::build(&pts, 16));
    let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
    let km = KernelMatrix::new(ExponentialKernel { l: 1.0 }, tree.points.clone());
    let rt = Runtime::parallel();
    let cfg = SketchConfig {
        tol: 1e-6,
        initial_samples: 64,
        ..Default::default()
    };
    let (h2, _) = sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg);
    let e = relative_error_2(&km, &h2, 15, 76);
    assert!(e < 1e-5, "helix err {e}");
    let (_, hi) = h2.rank_range();
    assert!(hi <= 40, "curve geometry rank {hi} should stay small");
}

/// Sample block of 1: the adaptive loop in its smallest increments.
#[test]
fn sample_block_one() {
    let pts = uniform_cube(900, 77);
    let tree = Arc::new(ClusterTree::build(&pts, 16));
    let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
    let km = KernelMatrix::new(ExponentialKernel { l: 0.2 }, tree.points.clone());
    let rt = Runtime::parallel();
    let cfg = SketchConfig {
        tol: 1e-5,
        initial_samples: 4,
        sample_block: 1,
        max_samples: 256,
        ..Default::default()
    };
    let (h2, stats) = sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg);
    assert!(stats.rounds > 0, "4 samples cannot suffice");
    let e = relative_error_2(&km, &h2, 15, 78);
    assert!(e < 1e-4, "block-1 err {e}");
}

/// Tiny leaves (size 4) produce deep trees; everything must still work.
#[test]
fn tiny_leaf_size() {
    let pts = uniform_cube(600, 79);
    let tree = Arc::new(ClusterTree::build(&pts, 4));
    tree.validate().unwrap();
    let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
    assert!(part.is_complete(&tree));
    let km = KernelMatrix::new(ExponentialKernel { l: 0.2 }, tree.points.clone());
    let rt = Runtime::parallel();
    let cfg = SketchConfig {
        tol: 1e-5,
        initial_samples: 48,
        ..Default::default()
    };
    let (h2, _) = sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg);
    h2.validate().unwrap();
    let e = relative_error_2(&km, &h2, 15, 80);
    assert!(e < 1e-4, "leaf-4 err {e}");
}

/// Extreme admissibility parameters: eta = 0.3 (very strong, near-dense)
/// and eta = 1.4 (nearly weak) both produce valid, accurate compressions.
#[test]
fn admissibility_extremes() {
    let pts = uniform_cube(1200, 81);
    let tree = Arc::new(ClusterTree::build(&pts, 16));
    let km = KernelMatrix::new(ExponentialKernel { l: 0.2 }, tree.points.clone());
    for eta in [0.3, 1.4] {
        let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta }));
        assert!(part.is_complete(&tree), "eta={eta}");
        let rt = Runtime::parallel();
        let cfg = SketchConfig {
            tol: 1e-5,
            initial_samples: 96,
            max_rank: 256,
            ..Default::default()
        };
        let (h2, _) = sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg);
        h2.validate().unwrap();
        let e = relative_error_2(&km, &h2, 15, 82);
        assert!(e < 1e-4, "eta={eta} err {e}");
    }
}

/// An operator whose sampler and entry evaluator disagree on purpose: the
/// construction trusts the entry evaluator for near/coupling blocks and the
/// sampler for bases, so a mismatch shows up as measured error. This guards
/// the *meaning* of the two black-box inputs (swapping them is a user bug
/// the library cannot repair, but it must not panic).
#[test]
fn inconsistent_inputs_do_not_panic() {
    let pts = uniform_cube(500, 83);
    let tree = Arc::new(ClusterTree::build(&pts, 16));
    let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
    let km_a = KernelMatrix::new(ExponentialKernel { l: 0.2 }, tree.points.clone());
    let km_b = KernelMatrix::new(ExponentialKernel { l: 0.4 }, tree.points.clone());
    let rt = Runtime::parallel();
    let cfg = SketchConfig {
        tol: 1e-6,
        initial_samples: 48,
        ..Default::default()
    };
    // Sampler from km_a, entries from km_b.
    let (h2, _) = sketch_construct(&km_a, &km_b, tree.clone(), part, &rt, &cfg);
    h2.validate().unwrap();
    let e_b = relative_error_2(&km_b, &h2, 10, 84);
    // The result is *some* valid H2 matrix; it should at least not be a
    // perfect match for the sampler (the inputs disagree).
    assert!(e_b.is_finite());
}
