//! Preconditioned Krylov methods on abstract operators.
//!
//! All methods take the operator as an [`h2_dense::LinOp`] — a compressed H2
//! matrix, a kernel matrix, or any other black box — and a
//! [`Preconditioner`]. Residual histories are returned so convergence
//! behaviour (e.g. preconditioner quality) can be asserted in tests and
//! reported by the benchmark harness.

use crate::precond::Preconditioner;
use h2_dense::{LinOp, Mat};

/// Result of a preconditioned iterative solve.
#[derive(Clone, Debug)]
pub struct IterResult {
    pub x: Vec<f64>,
    pub iterations: usize,
    /// True relative residual `‖b - A x‖₂ / ‖b‖₂` at exit.
    pub relative_residual: f64,
    pub converged: bool,
    /// Per-iteration (estimated) relative residuals.
    pub history: Vec<f64>,
}

fn apply_op(a: &dyn LinOp, v: &[f64]) -> Vec<f64> {
    let n = v.len();
    let vm = Mat::from_vec(n, 1, v.to_vec());
    let mut out = Mat::zeros(a.nrows(), 1);
    a.apply(vm.rf(), out.rm());
    out.as_slice().to_vec()
}

fn apply_prec(m: &dyn Preconditioner, v: &[f64]) -> Vec<f64> {
    let vm = Mat::from_vec(v.len(), 1, v.to_vec());
    m.apply_inv(&vm).as_slice().to_vec()
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

fn true_residual(a: &dyn LinOp, x: &[f64], b: &[f64]) -> f64 {
    let ax = apply_op(a, x);
    let mut s = 0.0;
    for i in 0..b.len() {
        let d = b[i] - ax[i];
        s += d * d;
    }
    s.sqrt() / norm(b).max(f64::MIN_POSITIVE)
}

/// Preconditioned conjugate gradients for SPD `A` and SPD `M`.
///
/// ```
/// use h2_dense::{DenseOp, Mat};
/// use h2_solve::{pcg, Identity};
/// // A 2x2 SPD system.
/// let a = Mat::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
/// let op = DenseOp::new(a);
/// let res = pcg(&op, &Identity { n: 2 }, &[1.0, 2.0], 50, 1e-12);
/// assert!(res.converged);
/// assert!((4.0 * res.x[0] + res.x[1] - 1.0).abs() < 1e-10);
/// ```
pub fn pcg(
    a: &dyn LinOp,
    m: &dyn Preconditioner,
    b: &[f64],
    max_iters: usize,
    rtol: f64,
) -> IterResult {
    let n = b.len();
    assert_eq!(a.nrows(), n, "pcg: dimension mismatch");
    assert_eq!(m.n(), n, "pcg: preconditioner dimension mismatch");
    let b_norm = norm(b).max(f64::MIN_POSITIVE);

    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut z = apply_prec(m, &r);
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut history = Vec::new();
    let mut iterations = 0;

    for _ in 0..max_iters {
        let rn = norm(&r) / b_norm;
        history.push(rn);
        if rn <= rtol {
            break;
        }
        iterations += 1;
        let ap = apply_op(a, &p);
        let denom = dot(&p, &ap);
        if denom <= 0.0 {
            break; // not SPD (numerically): bail with best effort
        }
        let alpha = rz / denom;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        z = apply_prec(m, &r);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
        rz = rz_new;
    }

    let relative_residual = true_residual(a, &x, b);
    IterResult {
        x,
        iterations,
        relative_residual,
        converged: relative_residual <= 10.0 * rtol,
        history,
    }
}

/// Restarted GMRES(m) with *right* preconditioning: solves `A M⁻¹ u = b`,
/// `x = M⁻¹ u`, so the preconditioner need not be symmetric.
pub fn gmres(
    a: &dyn LinOp,
    m: &dyn Preconditioner,
    b: &[f64],
    restart: usize,
    max_iters: usize,
    rtol: f64,
) -> IterResult {
    let n = b.len();
    assert_eq!(a.nrows(), n, "gmres: dimension mismatch");
    let restart = restart.max(1);
    let b_norm = norm(b).max(f64::MIN_POSITIVE);

    let mut x = vec![0.0; n];
    let mut history = Vec::new();
    let mut iterations = 0;

    'outer: while iterations < max_iters {
        // r = b - A x
        let ax = apply_op(a, &x);
        let mut r = vec![0.0; n];
        for i in 0..n {
            r[i] = b[i] - ax[i];
        }
        let beta = norm(&r);
        history.push(beta / b_norm);
        if beta / b_norm <= rtol {
            break;
        }

        // Arnoldi on A M⁻¹.
        let mut v: Vec<Vec<f64>> = Vec::with_capacity(restart + 1);
        v.push(r.iter().map(|&t| t / beta).collect());
        // Hessenberg in column-major (restart+1) x restart.
        let mut h = Mat::zeros(restart + 1, restart);
        // Givens rotations and the transformed RHS.
        let mut cs = vec![0.0; restart];
        let mut sn = vec![0.0; restart];
        let mut g = vec![0.0; restart + 1];
        g[0] = beta;

        let mut k_used = 0;
        for k in 0..restart {
            if iterations >= max_iters {
                break;
            }
            iterations += 1;
            let mz = apply_prec(m, &v[k]);
            let mut w = apply_op(a, &mz);
            // Modified Gram-Schmidt.
            for (i, vi) in v.iter().enumerate() {
                let hik = dot(&w, vi);
                h[(i, k)] = hik;
                for j in 0..n {
                    w[j] -= hik * vi[j];
                }
            }
            let wn = norm(&w);
            h[(k + 1, k)] = wn;

            // Apply existing Givens rotations to the new column.
            for i in 0..k {
                let t = cs[i] * h[(i, k)] + sn[i] * h[(i + 1, k)];
                h[(i + 1, k)] = -sn[i] * h[(i, k)] + cs[i] * h[(i + 1, k)];
                h[(i, k)] = t;
            }
            // New rotation to annihilate h[k+1][k].
            let (c, s) = givens(h[(k, k)], h[(k + 1, k)]);
            cs[k] = c;
            sn[k] = s;
            h[(k, k)] = c * h[(k, k)] + s * h[(k + 1, k)];
            h[(k + 1, k)] = 0.0;
            let t = c * g[k];
            g[k + 1] = -s * g[k];
            g[k] = t;
            k_used = k + 1;

            let res_est = g[k + 1].abs() / b_norm;
            history.push(res_est);
            if wn == 0.0 || res_est <= rtol {
                break;
            }
            v.push(w.iter().map(|&t| t / wn).collect());
            if v.len() == restart + 1 {
                break;
            }
        }

        if k_used == 0 {
            break 'outer; // stagnation: no Krylov direction produced
        }

        // Solve the k_used x k_used triangular system H y = g.
        let mut y = vec![0.0; k_used];
        for i in (0..k_used).rev() {
            let mut s = g[i];
            for j in (i + 1)..k_used {
                s -= h[(i, j)] * y[j];
            }
            y[i] = s / h[(i, i)];
        }
        // x += M⁻¹ (V y)
        let mut u = vec![0.0; n];
        for (j, &yj) in y.iter().enumerate() {
            for i in 0..n {
                u[i] += yj * v[j][i];
            }
        }
        let mu = apply_prec(m, &u);
        for i in 0..n {
            x[i] += mu[i];
        }
    }

    let relative_residual = true_residual(a, &x, b);
    IterResult {
        x,
        iterations,
        relative_residual,
        converged: relative_residual <= 10.0 * rtol,
        history,
    }
}

fn givens(a: f64, b: f64) -> (f64, f64) {
    if b == 0.0 {
        (1.0, 0.0)
    } else if a.abs() > b.abs() {
        let t = b / a;
        let c = 1.0 / (1.0 + t * t).sqrt();
        (c.copysign(a.signum() * c.abs()), c * t)
    } else {
        let t = a / b;
        let s = 1.0 / (1.0 + t * t).sqrt();
        (s * t, s)
    }
}

/// BiCGStab with right preconditioning — unsymmetric systems where GMRES
/// restarts stall or memory for the Krylov basis is a concern.
pub fn bicgstab(
    a: &dyn LinOp,
    m: &dyn Preconditioner,
    b: &[f64],
    max_iters: usize,
    rtol: f64,
) -> IterResult {
    let n = b.len();
    assert_eq!(a.nrows(), n, "bicgstab: dimension mismatch");
    let b_norm = norm(b).max(f64::MIN_POSITIVE);

    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let r0 = r.clone();
    let mut rho = 1.0_f64;
    let mut alpha = 1.0_f64;
    let mut omega = 1.0_f64;
    let mut v = vec![0.0; n];
    let mut p = vec![0.0; n];
    let mut history = Vec::new();
    let mut iterations = 0;

    for _ in 0..max_iters {
        let rn = norm(&r) / b_norm;
        history.push(rn);
        if rn <= rtol {
            break;
        }
        iterations += 1;
        let rho_new = dot(&r0, &r);
        if rho_new == 0.0 {
            break; // breakdown
        }
        let beta = (rho_new / rho) * (alpha / omega);
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        let phat = apply_prec(m, &p);
        v = apply_op(a, &phat);
        let r0v = dot(&r0, &v);
        if r0v == 0.0 {
            break;
        }
        alpha = rho_new / r0v;
        let mut s = vec![0.0; n];
        for i in 0..n {
            s[i] = r[i] - alpha * v[i];
        }
        if norm(&s) / b_norm <= rtol {
            for i in 0..n {
                x[i] += alpha * phat[i];
            }
            r = s;
            continue;
        }
        let shat = apply_prec(m, &s);
        let t = apply_op(a, &shat);
        let tt = dot(&t, &t);
        if tt == 0.0 {
            break;
        }
        omega = dot(&t, &s) / tt;
        for i in 0..n {
            x[i] += alpha * phat[i] + omega * shat[i];
            r[i] = s[i] - omega * t[i];
        }
        if omega == 0.0 {
            break;
        }
        rho = rho_new;
    }

    let relative_residual = true_residual(a, &x, b);
    IterResult {
        x,
        iterations,
        relative_residual,
        converged: relative_residual <= 10.0 * rtol,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::{BlockJacobi, DiagJacobi, Identity};
    use h2_dense::{gaussian_mat, DenseOp, Mat};

    fn spd_problem(n: usize, seed: u64) -> (DenseOp, Vec<f64>) {
        // A = G Gᵀ + n·I is SPD and well conditioned.
        let g = gaussian_mat(n, n, seed);
        let mut a = h2_dense::matmul(h2_dense::Op::NoTrans, h2_dense::Op::Trans, g.rf(), g.rf());
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        (DenseOp::new(a), b)
    }

    fn unsym_problem(n: usize, seed: u64) -> (DenseOp, Vec<f64>) {
        // Diagonally dominant unsymmetric matrix.
        let g = gaussian_mat(n, n, seed);
        let mut a = g;
        for i in 0..n {
            a[(i, i)] += 3.0 * (n as f64).sqrt();
        }
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.11).cos()).collect();
        (DenseOp::new(a), b)
    }

    #[test]
    fn pcg_converges_on_spd() {
        let (op, b) = spd_problem(80, 11);
        let res = pcg(&op, &Identity { n: 80 }, &b, 200, 1e-10);
        assert!(res.converged, "residual {}", res.relative_residual);
        assert!(res.relative_residual < 1e-9);
    }

    #[test]
    fn pcg_history_is_recorded_and_decreases() {
        let (op, b) = spd_problem(60, 12);
        let res = pcg(&op, &Identity { n: 60 }, &b, 200, 1e-10);
        assert!(res.history.len() >= 2);
        assert!(res.history.last().unwrap() < &res.history[0]);
    }

    #[test]
    fn jacobi_preconditioning_helps_on_scaled_system() {
        // Badly row/column-scaled SPD matrix: diag precond should cut the
        // iteration count substantially.
        let n = 120;
        let g = gaussian_mat(n, n, 13);
        let mut a = h2_dense::matmul(h2_dense::Op::NoTrans, h2_dense::Op::Trans, g.rf(), g.rf());
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        // Scale rows and columns by wildly varying weights.
        for i in 0..n {
            let w = 10f64.powi((i % 7) as i32 - 3);
            for j in 0..n {
                a[(i, j)] *= w;
                a[(j, i)] *= w;
            }
        }
        let op = DenseOp::new(a.clone());
        let b: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let plain = pcg(&op, &Identity { n }, &b, 3000, 1e-8);
        let jac = pcg(&op, &DiagJacobi::new(&op, n), &b, 3000, 1e-8);
        assert!(jac.converged);
        assert!(
            jac.iterations * 2 < plain.iterations.max(1),
            "jacobi {} vs plain {}",
            jac.iterations,
            plain.iterations
        );
    }

    #[test]
    fn gmres_converges_on_unsymmetric() {
        let (op, b) = unsym_problem(90, 14);
        let res = gmres(&op, &Identity { n: 90 }, &b, 30, 400, 1e-10);
        assert!(res.converged, "residual {}", res.relative_residual);
    }

    #[test]
    fn gmres_with_restart_shorter_than_problem() {
        let (op, b) = unsym_problem(100, 15);
        let res = gmres(&op, &Identity { n: 100 }, &b, 10, 2000, 1e-8);
        assert!(
            res.converged,
            "restarted GMRES residual {}",
            res.relative_residual
        );
    }

    #[test]
    fn bicgstab_converges_on_unsymmetric() {
        let (op, b) = unsym_problem(90, 16);
        let res = bicgstab(&op, &Identity { n: 90 }, &b, 400, 1e-10);
        assert!(res.converged, "residual {}", res.relative_residual);
    }

    #[test]
    fn solvers_agree_on_the_solution() {
        let (op, b) = unsym_problem(64, 17);
        let g = gmres(&op, &Identity { n: 64 }, &b, 32, 400, 1e-12);
        let s = bicgstab(&op, &Identity { n: 64 }, &b, 400, 1e-12);
        let mut d = 0.0_f64;
        for i in 0..64 {
            d = d.max((g.x[i] - s.x[i]).abs());
        }
        assert!(d < 1e-8, "gmres and bicgstab disagree by {d}");
    }

    #[test]
    fn block_jacobi_beats_identity_on_block_structured_spd() {
        use h2_tree::ClusterTree;
        let n = 128;
        let pts: Vec<[f64; 3]> = (0..n).map(|i| [i as f64 / n as f64, 0.0, 0.0]).collect();
        let tree = ClusterTree::build(&pts, 16);
        // SPD with strong diagonal blocks, weak off-diagonal coupling.
        let mut a = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let near = (i / 16) == (j / 16);
                let base = (-((i as f64 - j as f64) / 4.0).powi(2)).exp();
                a[(i, j)] = if near { base } else { 0.01 * base };
            }
            a[(i, i)] += 2.0;
        }
        let op = DenseOp::new(a);
        let b: Vec<f64> = (0..n).map(|i| (0.05 * i as f64).sin()).collect();
        let plain = pcg(&op, &Identity { n }, &b, 500, 1e-10);
        let bj = BlockJacobi::from_entry(&op, &tree).unwrap();
        let prec = pcg(&op, &bj, &b, 500, 1e-10);
        assert!(prec.converged);
        assert!(
            prec.iterations < plain.iterations,
            "block-jacobi {} vs plain {}",
            prec.iterations,
            plain.iterations
        );
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let (op, _) = spd_problem(20, 18);
        let b = vec![0.0; 20];
        let res = pcg(&op, &Identity { n: 20 }, &b, 50, 1e-10);
        assert!(res.x.iter().all(|&v| v == 0.0));
        let res = gmres(&op, &Identity { n: 20 }, &b, 10, 50, 1e-10);
        assert!(res.x.iter().all(|&v| v == 0.0));
    }
}
