//! Multi-device scaling projection (paper §IV.B).
//!
//! The paper evaluates on a single A100 and sketches the multi-GPU
//! extension in §IV.B: per-level batches divide across devices, and only
//! `batchedBSRGemm` (Ω fetches) and the line-24 child gather communicate.
//! This harness grounds that discussion quantitatively: it builds a real H2
//! matrix, extracts its per-level execution structure, and projects
//! makespan / traffic / efficiency across device counts under an A100-class
//! device model — and under a weaker compute model where the crossover
//! happens earlier.
//!
//! Usage: `cargo run --release -p h2-bench --bin ablation_multidevice -- [--n 32768] [--samples 256]`

use h2_bench::{build_problem, header, reference_h2, row, App, Args};
use h2_core::{level_specs, sketch_construct, SketchConfig};
use h2_runtime::{simulate, DeviceModel, Runtime};

fn main() {
    let args = Args::parse();
    let n: usize = args.get("n", 32768);
    let d: usize = args.get("samples", 256);
    let tol: f64 = args.get("tol", 1e-6);

    let problem = build_problem(App::Covariance, n, 64, 0.7, 0xD1CE);
    let reference = reference_h2(&problem, tol * 1e-2);
    let rt = Runtime::parallel();
    let cfg = SketchConfig {
        tol,
        initial_samples: d.min(256),
        ..Default::default()
    };
    let (h2, stats) = sketch_construct(
        &reference,
        &problem.kernel,
        problem.tree.clone(),
        problem.partition.clone(),
        &rt,
        &cfg,
    );
    let specs = level_specs(&h2);
    println!(
        "# Multi-device projection (covariance, N={n}, d={d}, {} processed levels, ranks {:?})\n",
        specs.len(),
        h2.rank_range()
    );
    println!(
        "construction used {} samples, {} adaptation rounds\n",
        stats.total_samples, stats.rounds
    );

    for (name, model) in [
        (
            "A100-class (10 TF/s, 200 GB/s links)",
            DeviceModel::default(),
        ),
        (
            "weak-compute (0.5 TF/s, 200 GB/s links)",
            DeviceModel {
                flops_per_sec: 5.0e11,
                ..DeviceModel::default()
            },
        ),
    ] {
        println!("## {name}\n");
        header(&[
            "devices",
            "makespan (ms)",
            "speedup",
            "efficiency",
            "comm (MiB)",
            "launches",
        ]);
        let base = simulate(&specs, d, 1, &model).makespan;
        for devices in [1usize, 2, 4, 8, 16] {
            let rep = simulate(&specs, d, devices, &model);
            row(&[
                devices.to_string(),
                format!("{:.3}", rep.makespan * 1e3),
                format!("{:.2}x", base / rep.makespan),
                format!("{:.2}", rep.efficiency()),
                format!("{:.2}", rep.total_comm_bytes as f64 / (1 << 20) as f64),
                rep.total_launches.to_string(),
            ]);
        }
        println!();
    }

    println!("Interpretation: the batched construction is compute-bound at the leaves");
    println!("and latency/traffic-bound at the top levels; speedup saturates once the");
    println!("per-device level chunks stop amortizing Ω fetches — the §IV.B tradeoff.");
}
