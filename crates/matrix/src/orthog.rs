//! Basis orthogonalization for H2 matrices.
//!
//! The sketching construction produces interpolation bases `U = P[I; T]`
//! which are well-conditioned but not orthonormal. Downstream arithmetic
//! (matvec stability, recompression, the future inversion the paper's §VI
//! announces) prefers orthonormal cluster bases. This pass converts the
//! representation in place, bottom-up, without changing the represented
//! operator:
//!
//! * leaf: `U_τ = Q R` → store `Q`, push `R` into the parent transfer slice
//!   and into every coupling block of `τ`,
//! * inner: the (already-updated) stacked transfer `[R_1 E_1; R_2 E_2] = QR`
//!   → store `Q`, push `R` upward likewise.
//!
//! Both side layouts are supported. For the symmetric layout one QR sweep
//! rescales coupling blocks as `B ← R_s B R_sᵀ`-style with the shared `R`s;
//! for the unsymmetric layout each side gets its own QR sweep and the
//! coupled rescaling is `B_{s,t} ← R^row_s B_{s,t} (R^col_t)ᵀ` — an
//! admissible block acts as `U_s B_{s,t} V_tᵀ`, so the row `R` multiplies
//! from the left and the column `R` from the right.
//!
//! The skeleton index lists keep their values for bookkeeping but the
//! identity-rows property of the interpolative basis no longer holds
//! afterwards (documented trade-off).

use crate::format::H2Matrix;
use h2_dense::{gemm, matmul, qr_factor, Mat, Op};
use h2_tree::ClusterTree;

/// Fold the children's `R` factors into this level's stacked transfers and
/// QR every based node of `ids` on one side. Updates `basis` in place and
/// records the new `R` factors in `r_of`. Returns the number of nodes
/// processed.
fn orthogonalize_side_level(
    tree: &ClusterTree,
    basis: &mut [Mat],
    r_of: &mut [Option<Mat>],
    ids: &[usize],
    l: usize,
    leaf_level: usize,
) -> usize {
    // 1. Update this level's stacked bases with the children's R factors
    //    (no-op at the leaf level).
    if l < leaf_level {
        for &id in ids {
            let (c1, c2) = tree.nodes[id].children.unwrap();
            let b = &basis[id];
            // Rows of the stacked transfer split by the children's *old*
            // ranks (cols of their R factors).
            let k1 = r_of[c1]
                .as_ref()
                .map(|r| r.cols())
                .unwrap_or(basis[c1].cols());
            let k2 = r_of[c2]
                .as_ref()
                .map(|r| r.cols())
                .unwrap_or(basis[c2].cols());
            debug_assert_eq!(k1 + k2, b.rows());
            let top_rows = r_of[c1].as_ref().map(|r| r.rows()).unwrap_or(k1);
            let bot_rows = r_of[c2].as_ref().map(|r| r.rows()).unwrap_or(k2);
            let mut updated = Mat::zeros(top_rows + bot_rows, b.cols());
            {
                let e1 = b.view(0, 0, k1, b.cols());
                let mut dst = updated.view_mut(0, 0, top_rows, b.cols());
                match &r_of[c1] {
                    Some(r) => gemm(Op::NoTrans, Op::NoTrans, 1.0, r.rf(), e1, 0.0, dst),
                    None => dst.copy_from(e1),
                }
            }
            {
                let e2 = b.view(k1, 0, k2, b.cols());
                let mut dst = updated.view_mut(top_rows, 0, bot_rows, b.cols());
                match &r_of[c2] {
                    Some(r) => gemm(Op::NoTrans, Op::NoTrans, 1.0, r.rf(), e2, 0.0, dst),
                    None => dst.copy_from(e2),
                }
            }
            basis[id] = updated;
        }
    }

    // 2. QR each basis; keep Q, remember R.
    for &id in ids {
        let b = std::mem::replace(&mut basis[id], Mat::zeros(0, 0));
        let f = qr_factor(b);
        basis[id] = f.q_thin();
        r_of[id] = Some(f.r());
    }
    ids.len()
}

impl H2Matrix {
    /// Orthogonalize all cluster bases in place, on every stored side.
    /// Returns the number of (node, side) bases processed.
    pub fn orthogonalize(&mut self) -> usize {
        let tree = self.tree.clone();
        let leaf_level = tree.leaf_level();
        let nnodes = tree.nodes.len();
        let mut processed = 0;
        // R factors of the current level, indexed by node id, per side.
        let mut r_row: Vec<Option<Mat>> = vec![None; nnodes];
        let mut r_col: Vec<Option<Mat>> = if self.is_symmetric() {
            Vec::new()
        } else {
            vec![None; nnodes]
        };

        for l in (0..=leaf_level).rev() {
            let row_ids: Vec<usize> = tree
                .level(l)
                .filter(|&id| self.basis[id].cols() > 0)
                .collect();
            processed += orthogonalize_side_level(
                &tree,
                &mut self.basis,
                &mut r_row,
                &row_ids,
                l,
                leaf_level,
            );
            if let Some(c) = &mut self.col {
                let col_ids: Vec<usize> =
                    tree.level(l).filter(|&id| c.basis[id].cols() > 0).collect();
                processed += orthogonalize_side_level(
                    &tree,
                    &mut c.basis,
                    &mut r_col,
                    &col_ids,
                    l,
                    leaf_level,
                );
            }

            // 3. Rescale this level's coupling blocks:
            //    B ← R^row_s B (R^col_t)ᵀ (the column side aliases the row
            //    side when symmetric). Far-field pairs connect same-level
            //    nodes, so both factors were just computed. Rank-0 endpoints
            //    have zero-dimensional blocks and no R — nothing to scale.
            let symmetric = self.is_symmetric();
            for idx in 0..self.coupling.pairs.len() {
                let (s, t) = self.coupling.pairs[idx];
                if tree.level_of(s) != l {
                    continue;
                }
                let rs = r_row[s].as_ref();
                let rt = if symmetric {
                    r_row[t].as_ref()
                } else {
                    r_col[t].as_ref()
                };
                if let (Some(rs), Some(rt)) = (rs, rt) {
                    let b = &self.coupling.blocks[idx];
                    let rb = matmul(Op::NoTrans, Op::NoTrans, rs.rf(), b.rf());
                    self.coupling.blocks[idx] = matmul(Op::NoTrans, Op::Trans, rb.rf(), rt.rf());
                }
            }
        }
        processed
    }

    /// Max deviation of `UᵀU` from identity over all bases of every stored
    /// side — leaf bases and stacked transfers alike (0 for an
    /// orthogonalized matrix). Diagnostic used by tests.
    pub fn basis_orthogonality_error(&self) -> f64 {
        let mut sides: Vec<&[Mat]> = vec![&self.basis];
        if let Some(c) = &self.col {
            sides.push(&c.basis);
        }
        let mut worst = 0.0f64;
        for basis in sides {
            for b in basis.iter() {
                if b.cols() == 0 {
                    continue;
                }
                let g = matmul(Op::Trans, Op::NoTrans, b.rf(), b.rf());
                let mut d = g;
                d.axpy(-1.0, &Mat::eye(b.cols()));
                worst = worst.max(d.norm_max());
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use crate::direct::{direct_construct, DirectConfig};
    use h2_dense::gaussian_mat;
    use h2_kernels::{ExponentialKernel, KernelMatrix};
    use h2_tree::{Admissibility, ClusterTree, Partition};
    use std::sync::Arc;

    #[test]
    fn orthogonalize_preserves_operator_and_orthonormalizes() {
        let pts = h2_tree::uniform_cube(1200, 201);
        let tree = Arc::new(ClusterTree::build(&pts, 16));
        let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
        assert!(part.top_far_level(&tree).is_some());
        let km = KernelMatrix::new(ExponentialKernel::default(), tree.points.clone());
        let mut h2 = direct_construct(&km, tree.clone(), part, &DirectConfig::default());

        assert!(
            h2.basis_orthogonality_error() > 1e-8,
            "interpolative bases are not orthonormal"
        );
        let x = gaussian_mat(1200, 3, 202);
        let before = h2.apply_permuted_mat(&x);

        let processed = h2.orthogonalize();
        assert!(processed > 0);
        assert!(
            h2.basis_orthogonality_error() < 1e-12,
            "bases must be orthonormal, err {}",
            h2.basis_orthogonality_error()
        );

        let after = h2.apply_permuted_mat(&x);
        let mut d = after;
        d.axpy(-1.0, &before);
        assert!(
            d.norm_max() < 1e-10 * before.norm_max().max(1.0),
            "operator changed by {}",
            d.norm_max()
        );
    }

    #[test]
    fn orthogonalize_preserves_entry_extraction() {
        let pts = h2_tree::uniform_cube(900, 203);
        let tree = Arc::new(ClusterTree::build(&pts, 16));
        let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
        let km = KernelMatrix::new(ExponentialKernel::default(), tree.points.clone());
        let mut h2 = direct_construct(&km, tree.clone(), part, &DirectConfig::default());
        let rows: Vec<usize> = (0..900).step_by(97).collect();
        let cols: Vec<usize> = (3..900).step_by(113).collect();
        let before = h2.extract_block(&rows, &cols);
        h2.orthogonalize();
        let after = h2.extract_block(&rows, &cols);
        let mut d = after;
        d.axpy(-1.0, &before);
        assert!(
            d.norm_max() < 1e-10,
            "entry extraction changed by {}",
            d.norm_max()
        );
    }
}
