//! Nested dissection and multifrontal Cholesky for regular 3-D grids.
//!
//! The separator tree is built by recursive planar bisection of the grid
//! (the classical geometric nested dissection for which 3-D Poisson top
//! separators are full grid planes of size `n²` — exactly the frontal sizes
//! 50²=2500 … 250²=62500 on the x-axis of the paper's Fig. 6(b)).
//!
//! The multifrontal factorization processes separators in postorder: each
//! node assembles its frontal matrix from original matrix entries plus the
//! children's update matrices (extend-add), eliminates its separator
//! variables by a partial Cholesky, and passes the Schur complement up.
//! `top_front` returns the fully-assembled root front *before* elimination —
//! the dense Schur complement the paper compresses.

use crate::sparse::{CsrMatrix, Grid3};
use h2_dense::{cholesky_in_place, gemm, Diag, Mat, Op, Triangle};
use std::collections::HashMap;

/// One node of the separator tree.
pub struct NdNode {
    /// Matrix indices eliminated at this node (a separator plane or a leaf
    /// box).
    pub vars: Vec<usize>,
    pub children: Vec<usize>,
    /// Grid bounding box `(x0, x1, y0, y1, z0, z1)` (half-open).
    pub region: (usize, usize, usize, usize, usize, usize),
}

/// Separator tree from geometric nested dissection.
pub struct NdTree {
    pub nodes: Vec<NdNode>,
    pub root: usize,
    /// Postorder traversal (children before parents).
    pub postorder: Vec<usize>,
}

/// Build the separator tree for the grid; boxes of at most `leaf_box`
/// vertices stop recursing.
pub fn nested_dissection(grid: Grid3, leaf_box: usize) -> NdTree {
    let mut nodes = Vec::new();
    let root = dissect(
        grid,
        (0, grid.nx, 0, grid.ny, 0, grid.nz),
        leaf_box.max(1),
        &mut nodes,
    );
    let mut postorder = Vec::with_capacity(nodes.len());
    post(&nodes, root, &mut postorder);
    NdTree {
        nodes,
        root,
        postorder,
    }
}

fn post(nodes: &[NdNode], id: usize, out: &mut Vec<usize>) {
    for &c in &nodes[id].children {
        post(nodes, c, out);
    }
    out.push(id);
}

fn dissect(
    grid: Grid3,
    region: (usize, usize, usize, usize, usize, usize),
    leaf_box: usize,
    nodes: &mut Vec<NdNode>,
) -> usize {
    let (x0, x1, y0, y1, z0, z1) = region;
    let dims = [x1 - x0, y1 - y0, z1 - z0];
    let vol = dims[0] * dims[1] * dims[2];
    if vol <= leaf_box || dims.iter().all(|&d| d <= 1) {
        let mut vars = Vec::with_capacity(vol);
        for z in z0..z1 {
            for y in y0..y1 {
                for x in x0..x1 {
                    vars.push(grid.index(x, y, z));
                }
            }
        }
        nodes.push(NdNode {
            vars,
            children: Vec::new(),
            region,
        });
        return nodes.len() - 1;
    }
    // Split the widest dimension with a one-plane separator.
    let dim = (0..3).max_by_key(|&d| dims[d]).unwrap();
    let (lo, hi) = match dim {
        0 => (x0, x1),
        1 => (y0, y1),
        _ => (z0, z1),
    };
    let mid = lo + (hi - lo) / 2;
    let (left_region, right_region, sep_vars) = match dim {
        0 => (
            (x0, mid, y0, y1, z0, z1),
            (mid + 1, x1, y0, y1, z0, z1),
            plane_vars(grid, dim, mid, region),
        ),
        1 => (
            (x0, x1, y0, mid, z0, z1),
            (x0, x1, mid + 1, y1, z0, z1),
            plane_vars(grid, dim, mid, region),
        ),
        _ => (
            (x0, x1, y0, y1, z0, mid),
            (x0, x1, y0, y1, mid + 1, z1),
            plane_vars(grid, dim, mid, region),
        ),
    };
    let mut children = Vec::new();
    if region_len(left_region) > 0 {
        children.push(dissect(grid, left_region, leaf_box, nodes));
    }
    if region_len(right_region) > 0 {
        children.push(dissect(grid, right_region, leaf_box, nodes));
    }
    nodes.push(NdNode {
        vars: sep_vars,
        children,
        region,
    });
    nodes.len() - 1
}

fn region_len(r: (usize, usize, usize, usize, usize, usize)) -> usize {
    let (x0, x1, y0, y1, z0, z1) = r;
    (x1.saturating_sub(x0)) * (y1.saturating_sub(y0)) * (z1.saturating_sub(z0))
}

fn plane_vars(
    grid: Grid3,
    dim: usize,
    at: usize,
    region: (usize, usize, usize, usize, usize, usize),
) -> Vec<usize> {
    let (x0, x1, y0, y1, z0, z1) = region;
    let mut v = Vec::new();
    match dim {
        0 => {
            for z in z0..z1 {
                for y in y0..y1 {
                    v.push(grid.index(at, y, z));
                }
            }
        }
        1 => {
            for z in z0..z1 {
                for x in x0..x1 {
                    v.push(grid.index(x, at, z));
                }
            }
        }
        _ => {
            for y in y0..y1 {
                for x in x0..x1 {
                    v.push(grid.index(x, y, at));
                }
            }
        }
    }
    v
}

/// A frontal matrix: its index set and the dense values.
pub struct Front {
    /// Global matrix indices of the front (eliminated vars first, then
    /// boundary), each list sorted ascending.
    pub vars: Vec<usize>,
    pub boundary: Vec<usize>,
    /// Dense front of order `vars.len() + boundary.len()`.
    pub mat: Mat,
}

/// Result of the multifrontal factorization.
pub struct MultifrontalResult {
    /// Cholesky factors per node (the `[L11; L21]` panel), by node id.
    pub panels: Vec<Option<Mat>>,
    /// Per node: `(vars, boundary)` global index sets matching the panel
    /// rows (vars first, then boundary).
    pub index_sets: Vec<(Vec<usize>, Vec<usize>)>,
    /// Postorder used during factorization (for the solve sweeps).
    pub postorder: Vec<usize>,
    /// The root front assembled *before* elimination (paper's extracted
    /// frontal matrix) and its index set.
    pub top_front: Mat,
    pub top_vars: Vec<usize>,
}

impl MultifrontalResult {
    /// Solve `A x = b` using the multifrontal Cholesky factors
    /// (forward sweep in postorder, backward sweep in reverse).
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut y = b.to_vec();
        // Forward: y(vars) = L11^{-1} y(vars); y(bnd) -= L21 y(vars).
        for &id in &self.postorder {
            let Some(panel) = &self.panels[id] else {
                continue;
            };
            let (vars, bnd) = &self.index_sets[id];
            let nv = vars.len();
            if nv == 0 {
                continue;
            }
            let mut rhs = Mat::from_fn(nv, 1, |i, _| y[vars[i]]);
            let l11 = panel.view(0, 0, nv, nv);
            h2_dense::solve_triangular_left(Triangle::Lower, Diag::NonUnit, l11, &mut rhs.rm());
            for (i, &v) in vars.iter().enumerate() {
                y[v] = rhs[(i, 0)];
            }
            if !bnd.is_empty() {
                let l21 = panel.view(nv, 0, bnd.len(), nv);
                let mut upd = Mat::zeros(bnd.len(), 1);
                gemm(Op::NoTrans, Op::NoTrans, 1.0, l21, rhs.rf(), 0.0, upd.rm());
                for (i, &v) in bnd.iter().enumerate() {
                    y[v] -= upd[(i, 0)];
                }
            }
        }
        // Backward: x(vars) = L11^{-T} (y(vars) - L21^T x(bnd)).
        let mut x = y;
        for &id in self.postorder.iter().rev() {
            let Some(panel) = &self.panels[id] else {
                continue;
            };
            let (vars, bnd) = &self.index_sets[id];
            let nv = vars.len();
            if nv == 0 {
                continue;
            }
            let mut rhs = Mat::from_fn(nv, 1, |i, _| x[vars[i]]);
            if !bnd.is_empty() {
                let l21 = panel.view(nv, 0, bnd.len(), nv);
                let xb = Mat::from_fn(bnd.len(), 1, |i, _| x[bnd[i]]);
                gemm(Op::Trans, Op::NoTrans, -1.0, l21, xb.rf(), 1.0, rhs.rm());
            }
            let l11 = panel.view(0, 0, nv, nv);
            h2_dense::solve_triangular_left_transposed(
                Triangle::Lower,
                Diag::NonUnit,
                l11,
                &mut rhs.rm(),
            );
            for (i, &v) in vars.iter().enumerate() {
                x[v] = rhs[(i, 0)];
            }
        }
        x
    }
}

/// Run the multifrontal Cholesky. Panics if the matrix is not SPD.
pub fn multifrontal_cholesky(a: &CsrMatrix, tree: &NdTree) -> MultifrontalResult {
    let n = a.n;
    // node owning each variable
    let mut owner = vec![usize::MAX; n];
    for (id, node) in tree.nodes.iter().enumerate() {
        for &v in &node.vars {
            owner[id_checked(v, n)] = id;
        }
    }
    // Elimination order: position of each node in postorder.
    let mut node_pos = vec![0usize; tree.nodes.len()];
    for (p, &id) in tree.postorder.iter().enumerate() {
        node_pos[id] = p;
    }

    let mut updates: Vec<Option<(Vec<usize>, Mat)>> = (0..tree.nodes.len()).map(|_| None).collect();
    let mut panels: Vec<Option<Mat>> = (0..tree.nodes.len()).map(|_| None).collect();
    let mut index_sets: Vec<(Vec<usize>, Vec<usize>)> = (0..tree.nodes.len())
        .map(|_| (Vec::new(), Vec::new()))
        .collect();
    let mut top_front = Mat::zeros(0, 0);
    let mut top_vars = Vec::new();

    for &id in &tree.postorder {
        let node = &tree.nodes[id];
        let mut vars = node.vars.clone();
        vars.sort_unstable();

        // Boundary: union of (a) original-matrix neighbours of `vars`
        // eliminated strictly later, (b) children's boundaries minus `vars`.
        let mut bset: Vec<usize> = Vec::new();
        for &v in &vars {
            for (j, _) in a.row(v) {
                if node_pos[owner[j]] > node_pos[id] {
                    bset.push(j);
                }
            }
        }
        for &c in &node.children {
            if let Some((cb, _)) = &updates[c] {
                for &j in cb {
                    if owner[j] != id {
                        bset.push(j);
                    }
                }
            }
        }
        bset.sort_unstable();
        bset.dedup();

        let nv = vars.len();
        let nb = bset.len();
        let m = nv + nb;
        let mut f = Mat::zeros(m, m);
        let all: Vec<usize> = vars.iter().chain(bset.iter()).copied().collect();
        let pos: HashMap<usize, usize> = all.iter().enumerate().map(|(p, &g)| (g, p)).collect();

        // Assemble original entries: rows of eliminated vars (and symmetry).
        for (p, &v) in vars.iter().enumerate() {
            for (j, val) in a.row(v) {
                if let Some(&q) = pos.get(&j) {
                    // Only assemble entries not already owned by a child
                    // (original entries between two later-eliminated vars
                    // belong to the node eliminating the earlier one).
                    f[(p, q)] += val;
                    if q != p && q >= nv {
                        f[(q, p)] += val;
                    }
                }
            }
        }

        // Extend-add children updates.
        for &c in &node.children {
            if let Some((cb, u)) = updates[c].take() {
                let map: Vec<usize> = cb.iter().map(|g| pos[g]).collect();
                for (ci, &pi) in map.iter().enumerate() {
                    for (cj, &pj) in map.iter().enumerate() {
                        f[(pi, pj)] += u[(ci, cj)];
                    }
                }
            }
        }

        if id == tree.root {
            top_front = f.clone();
            top_vars = all.clone();
        }

        // Partial Cholesky: eliminate the first nv variables.
        {
            let mut f11 = f.view_mut(0, 0, nv, nv);
            cholesky_in_place(&mut f11).expect("front not SPD");
        }
        if nb > 0 {
            // L21 = F21 * L11^{-T}
            let l11 = f.view(0, 0, nv, nv).to_mat();
            let mut f21 = f.view(nv, 0, nb, nv).to_mat();
            // Solve X L11^T = F21  =>  right-solve with lower-transposed.
            solve_lower_transposed_right(&l11, &mut f21);
            // U = F22 - L21 L21^T
            let mut u = f.view(nv, nv, nb, nb).to_mat();
            gemm(
                Op::NoTrans,
                Op::Trans,
                -1.0,
                f21.rf(),
                f21.rf(),
                1.0,
                u.rm(),
            );
            // store panel [L11; L21]
            let mut panel = Mat::zeros(m, nv);
            panel.view_mut(0, 0, nv, nv).copy_from(lower_of(&l11).rf());
            panel.view_mut(nv, 0, nb, nv).copy_from(f21.rf());
            panels[id] = Some(panel);
            index_sets[id] = (vars.clone(), bset.clone());
            updates[id] = Some((bset, u));
        } else {
            let l11 = lower_of(&f.view(0, 0, nv, nv).to_mat());
            panels[id] = Some(l11);
            index_sets[id] = (vars.clone(), Vec::new());
            updates[id] = Some((bset, Mat::zeros(0, 0)));
        }
    }

    MultifrontalResult {
        panels,
        index_sets,
        postorder: tree.postorder.clone(),
        top_front,
        top_vars,
    }
}

fn id_checked(v: usize, n: usize) -> usize {
    debug_assert!(v < n);
    v
}

/// Zero out the strict upper triangle (Cholesky stores L in the lower part).
fn lower_of(a: &Mat) -> Mat {
    Mat::from_fn(
        a.rows(),
        a.cols(),
        |i, j| if i >= j { a[(i, j)] } else { 0.0 },
    )
}

/// Solve `X L^T = B` in place for lower-triangular `L` (i.e. `X = B L^{-T}`).
fn solve_lower_transposed_right(l: &Mat, b: &mut Mat) {
    // X L^T = B  <=>  L X^T = B^T: one left-solve on the transpose.
    let mut bt = b.transpose();
    h2_dense::solve_triangular_left(Triangle::Lower, Diag::NonUnit, l.rf(), &mut bt.rm());
    *b = bt.transpose();
}

/// Extract the root-separator front of the Poisson problem on an `n³` grid:
/// the paper's frontal matrix of size `n²`. Returns the dense front and the
/// physical coordinates of its grid points (for cluster-tree construction).
pub fn poisson_top_front(n: usize, leaf_box: usize) -> (Mat, Vec<[f64; 3]>) {
    let grid = Grid3::cube(n);
    let a = crate::sparse::poisson3d(grid);
    let tree = nested_dissection(grid, leaf_box);
    let res = multifrontal_cholesky(&a, &tree);
    let pts: Vec<[f64; 3]> = res.top_vars.iter().map(|&v| grid.point(v)).collect();
    (res.top_front, pts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::poisson3d;

    #[test]
    fn nd_partitions_all_variables_once() {
        let grid = Grid3::cube(5);
        let tree = nested_dissection(grid, 8);
        let mut seen = vec![false; grid.len()];
        for node in &tree.nodes {
            for &v in &node.vars {
                assert!(!seen[v], "variable {v} in two separators");
                seen[v] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "missing variables");
    }

    #[test]
    fn root_separator_is_a_plane() {
        let grid = Grid3::cube(6);
        let tree = nested_dissection(grid, 8);
        assert_eq!(
            tree.nodes[tree.root].vars.len(),
            36,
            "root separator = 6x6 plane"
        );
    }

    #[test]
    fn top_front_equals_dense_schur_complement() {
        let n = 5;
        let grid = Grid3::cube(n);
        let a = poisson3d(grid);
        let tree = nested_dissection(grid, 4);
        let res = multifrontal_cholesky(&a, &tree);

        // Dense reference: S = A_ss - A_si A_ii^{-1} A_is.
        let dense = a.to_dense();
        let s_idx = &res.top_vars;
        let i_idx: Vec<usize> = (0..a.n).filter(|v| !s_idx.contains(v)).collect();
        let a_ss = dense.select_rows(s_idx).select_cols(s_idx);
        let a_si = dense.select_rows(s_idx).select_cols(&i_idx);
        let a_ii = dense.select_rows(&i_idx).select_cols(&i_idx);
        let f = h2_dense::lu_factor(a_ii).unwrap();
        let a_is = a_si.transpose();
        let x = f.solve(&a_is); // A_ii^{-1} A_is
        let mut want = a_ss;
        gemm(
            Op::NoTrans,
            Op::NoTrans,
            -1.0,
            a_si.rf(),
            x.rf(),
            1.0,
            want.rm(),
        );

        let mut d = res.top_front.clone();
        d.axpy(-1.0, &want);
        assert!(
            d.norm_max() < 1e-9 * want.norm_max().max(1.0),
            "top front differs from Schur complement by {}",
            d.norm_max()
        );
    }

    #[test]
    fn factorization_solves_the_system() {
        // Verify L L^T = A by reconstructing through a matvec comparison on
        // the root front path: the top front must be SPD (factorizable).
        let (front, pts) = poisson_top_front(5, 4);
        assert_eq!(front.rows(), 25);
        assert_eq!(pts.len(), 25);
        let mut f = front;
        assert!(
            h2_dense::cholesky_in_place(&mut f.rm()).is_ok(),
            "top front must be SPD"
        );
    }

    #[test]
    fn multifrontal_solve_matches_dense() {
        let grid = Grid3::cube(6);
        let a = poisson3d(grid);
        let tree = nested_dissection(grid, 8);
        let res = multifrontal_cholesky(&a, &tree);
        // Random RHS; compare against dense Cholesky solve.
        let n = a.n;
        let b: Vec<f64> = (0..n)
            .map(|i| ((i * 37 % 101) as f64 - 50.0) / 50.0)
            .collect();
        let x = res.solve(&b);
        let mut dense = a.to_dense();
        h2_dense::cholesky_in_place(&mut dense.rm()).unwrap();
        let mut want = Mat::from_fn(n, 1, |i, _| b[i]);
        h2_dense::cholesky_solve(dense.rf(), &mut want.rm());
        for i in 0..n {
            assert!(
                (x[i] - want[(i, 0)]).abs() < 1e-9,
                "solution mismatch at {i}: {} vs {}",
                x[i],
                want[(i, 0)]
            );
        }
        // And the residual through the sparse operator must vanish.
        let mut ax = vec![0.0; n];
        a.matvec(&x, &mut ax);
        for i in 0..n {
            assert!((ax[i] - b[i]).abs() < 1e-9, "residual at {i}");
        }
    }

    #[test]
    fn multifrontal_solve_nonuniform_grid() {
        let grid = Grid3 {
            nx: 7,
            ny: 4,
            nz: 5,
        };
        let a = poisson3d(grid);
        let tree = nested_dissection(grid, 6);
        let res = multifrontal_cholesky(&a, &tree);
        let n = a.n;
        let x0: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).cos()).collect();
        let mut b = vec![0.0; n];
        a.matvec(&x0, &mut b);
        let x = res.solve(&b);
        for i in 0..n {
            assert!((x[i] - x0[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn front_sizes_match_paper_axis() {
        // n³ grid ⇒ n² top separator: the paper's 2500..62500 axis is n=50..250.
        let (front, _) = poisson_top_front(8, 16);
        assert_eq!(front.rows(), 64);
    }
}
