//! # h2-serve
//!
//! Operator service on top of the solver stack: cache the expensive part
//! (construction + ULV factorization), coalesce the cheap part (triangular
//! sweeps) into multi-RHS batches.
//!
//! `BENCH_solve.json` shows the factorization dominating end-to-end solve
//! cost, and the sweep itself is latency-dominated at small RHS counts:
//! under the A100-flavored [`h2_runtime::DeviceModel`] (5 µs launch
//! overhead and link latency), a single-RHS sharded sweep spends almost all
//! of its modeled makespan in per-level launches and transfer latencies
//! that do **not** scale with the RHS count. A `k`-column blocked sweep
//! pays those fixed costs once — the per-level transfer count is
//! independent of `k`; only bytes and flops scale — so with non-scaling
//! fraction `f` of the k = 1 makespan, the amortized per-RHS cost improves
//! by `k / (f + k·(1 − f))`. With `f ≈ 0.99` (typical for the HSS sweeps
//! in this repo at N ≈ 2–8k), k = 32 yields ≈ 24× — the amortization the
//! `serve` bench gates at ≥ 4×.
//!
//! Three pieces:
//!
//! * [`cache`] — [`OperatorCache`]: a memory-budgeted LRU keyed by
//!   [`OpKey`] `(kernel, geometry hash, tolerance bits)`, holding
//!   `H2Matrix` + `UlvFactor` pairs; eviction is by least-recent-use under
//!   a byte budget measured with the structures' own `memory_bytes`.
//! * [`queue`] — [`AdmissionQueue`]: arrival-ordered coalescing of client
//!   requests into per-operator batches under a max-batch / max-wait
//!   policy (release when the head operator's pending width reaches
//!   `max_batch` columns, or its oldest request has waited `max_wait`).
//! * [`server`] — [`ServeSim`]: a deterministic single-server event loop
//!   that admits a workload, serves each batch with the *real*
//!   fabric-sharded blocked sweep (`h2_sched::shard_ulv_solve`), asserts
//!   the measured transfer bytes equal the `simulate_solve` prediction for
//!   that batch width (the PR 2–9 trust invariant), and reports
//!   throughput and p50/p99 latency in **modeled makespan** under the
//!   device model — never wall clock, per the ROADMAP's single-core
//!   container rule.

pub mod cache;
pub mod queue;
pub mod server;

pub use cache::{geometry_hash, CachedOperator, OpKey, OperatorCache};
pub use queue::{AdmissionPolicy, AdmissionQueue, Batch, Request};
pub use server::{Response, ServeConfig, ServeReport, ServeSim};
