//! Pipelined == synchronous equivalence: the overlapped schedule must
//! reproduce the fork-join results **bit-identically** — construction and
//! matvec, device counts 1/2/3/7, both symmetry regimes, the
//! weak-admissibility partition where devices get zero nodes, and a stress
//! run that randomizes prefetch completion order through the injected
//! transfer-delay hook. Traffic totals must also be invariant across the
//! two schedules (the pipelined fabric issues the *same* descriptors,
//! earlier), and the pipelined makespan projection must sit within the
//! tightened 2x band of the simulator.

use h2_core::{level_specs, SketchConfig};
use h2_dense::{gaussian_mat, Mat};
use h2_kernels::{ConvectionKernel, ExponentialKernel, KernelMatrix, UnsymKernelMatrix};
use h2_runtime::DeviceModel;
use h2_sched::{
    compare_with_simulator, shard_construct, shard_construct_unsym, shard_matvec, DeviceFabric,
    ExecReport, TransferKind,
};
use h2_tree::{Admissibility, ClusterTree, Partition};
use std::sync::Arc;
use std::time::Duration;

const DEVICE_COUNTS: [usize; 4] = [1, 2, 3, 7];

fn sym_problem(
    n: usize,
    leaf: usize,
    seed: u64,
) -> (
    Arc<ClusterTree>,
    Arc<Partition>,
    KernelMatrix<ExponentialKernel>,
) {
    let pts = h2_tree::uniform_cube(n, seed);
    let tree = Arc::new(ClusterTree::build(&pts, leaf));
    let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
    assert!(part.top_far_level(&tree).is_some(), "problem too small");
    let km = KernelMatrix::new(ExponentialKernel::default(), tree.points.clone());
    (tree, part, km)
}

fn unsym_problem(
    n: usize,
    leaf: usize,
    seed: u64,
) -> (
    Arc<ClusterTree>,
    Arc<Partition>,
    UnsymKernelMatrix<ConvectionKernel>,
) {
    let pts = h2_tree::uniform_cube(n, seed);
    let tree = Arc::new(ClusterTree::build(&pts, leaf));
    let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
    assert!(part.top_far_level(&tree).is_some(), "problem too small");
    let km = UnsymKernelMatrix::new(ConvectionKernel::default(), tree.points.clone());
    (tree, part, km)
}

fn cfg() -> SketchConfig {
    SketchConfig {
        initial_samples: 64,
        ..Default::default()
    }
}

fn assert_same_traffic(sync: &ExecReport, pipe: &ExecReport) {
    assert_eq!(
        sync.total_comm_bytes(),
        pipe.total_comm_bytes(),
        "pipelining must not change the byte total"
    );
    for kind in [
        TransferKind::OmegaFetch,
        TransferKind::ChildGather,
        TransferKind::PartialSum,
    ] {
        assert_eq!(
            sync.bytes_of_kind(kind),
            pipe.bytes_of_kind(kind),
            "pipelining must not change {} bytes",
            kind.name()
        );
    }
    assert_eq!(
        sync.total_comm_messages(),
        pipe.total_comm_messages(),
        "pipelining must not change the message count"
    );
    let (fs, fp) = (sync.total_flops(), pipe.total_flops());
    assert!(
        (fs - fp).abs() <= 1e-9 * fs.max(1.0),
        "pipelining must not change the modeled work: {fs} vs {fp}"
    );
}

/// Exact-equality probe: both constructions must be bitwise the same, so
/// their matvec outputs on a shared probe must be bitwise equal.
fn assert_h2_identical(a: &h2_matrix::H2Matrix, b: &h2_matrix::H2Matrix, n: usize, seed: u64) {
    let x = gaussian_mat(n, 3, seed);
    assert_eq!(
        a.apply_permuted_mat(&x),
        b.apply_permuted_mat(&x),
        "construction results must be bit-identical"
    );
}

#[test]
fn pipelined_construction_bit_identical_sym() {
    let (tree, part, km) = sym_problem(1400, 16, 91);
    for devices in DEVICE_COUNTS {
        let sync = DeviceFabric::new(devices);
        let (h2s, st_s, rep_s) =
            shard_construct(&sync, &km, &km, tree.clone(), part.clone(), &cfg());
        let pipe = DeviceFabric::pipelined(devices);
        let (h2p, st_p, rep_p) =
            shard_construct(&pipe, &km, &km, tree.clone(), part.clone(), &cfg());
        assert_eq!(st_s.total_samples, st_p.total_samples);
        assert_eq!(st_s.rounds, st_p.rounds);
        assert_h2_identical(&h2s, &h2p, 1400, 92);
        assert_same_traffic(&rep_s, &rep_p);
    }
}

#[test]
fn pipelined_construction_bit_identical_unsym() {
    let (tree, part, km) = unsym_problem(1200, 16, 93);
    for devices in DEVICE_COUNTS {
        let sync = DeviceFabric::new(devices);
        let (h2s, _, rep_s) =
            shard_construct_unsym(&sync, &km, &km, tree.clone(), part.clone(), &cfg());
        let pipe = DeviceFabric::pipelined(devices);
        let (h2p, _, rep_p) =
            shard_construct_unsym(&pipe, &km, &km, tree.clone(), part.clone(), &cfg());
        assert_h2_identical(&h2s, &h2p, 1200, 94);
        // The transpose product must also coincide exactly.
        let x = gaussian_mat(1200, 2, 95);
        assert_eq!(
            h2s.apply_transpose_permuted_mat(&x),
            h2p.apply_transpose_permuted_mat(&x)
        );
        assert_same_traffic(&rep_s, &rep_p);
    }
}

#[test]
fn pipelined_matvec_bit_identical() {
    let (tree, part, km) = sym_problem(1000, 16, 96);
    let sync1 = DeviceFabric::new(1);
    let (sym, _, _) = shard_construct(&sync1, &km, &km, tree, part, &cfg());
    let (treeu, partu, kmu) = unsym_problem(900, 16, 97);
    let (unsym, _, _) = shard_construct_unsym(&sync1, &kmu, &kmu, treeu, partu, &cfg());

    for (h2, n) in [(&sym, 1000usize), (&unsym, 900usize)] {
        let x = gaussian_mat(n, 3, 98);
        for transpose in [false, true] {
            for devices in DEVICE_COUNTS {
                let sync = DeviceFabric::new(devices);
                let want: Mat = shard_matvec(&sync, h2, &x, transpose);
                let rep_s = sync.report("matvec");
                let pipe = DeviceFabric::pipelined(devices);
                let got: Mat = shard_matvec(&pipe, h2, &x, transpose);
                let rep_p = pipe.report("matvec");
                assert_eq!(
                    got, want,
                    "D={devices} transpose={transpose}: pipelined matvec must be bit-identical"
                );
                assert_same_traffic(&rep_s, &rep_p);
            }
        }
    }
}

#[test]
fn pipelined_zero_node_devices_are_harmless() {
    // Weak (HSS-style) partition: levels narrow to 2 nodes, so most of the
    // 7 devices own nothing there — empty queues and zero-work chunks must
    // flow through the pipelined schedule unchanged.
    let pts = h2_tree::uniform_cube(450, 99);
    let tree = Arc::new(ClusterTree::build(&pts, 16));
    let part = Arc::new(Partition::build(&tree, Admissibility::Weak));
    let km = KernelMatrix::new(ExponentialKernel { l: 2.0 }, tree.points.clone());
    let top = part.top_far_level(&tree).unwrap();
    assert!(
        (top..=tree.leaf_level()).any(|l| tree.level_len(l) < 7),
        "test geometry must have a level narrower than the device count"
    );
    let sync = DeviceFabric::new(7);
    let (h2s, _, _) = shard_construct(&sync, &km, &km, tree.clone(), part.clone(), &cfg());
    let pipe = DeviceFabric::pipelined(7);
    let (h2p, _, _) = shard_construct(&pipe, &km, &km, tree, part, &cfg());
    assert_h2_identical(&h2s, &h2p, 450, 100);
    let x = gaussian_mat(450, 2, 101);
    assert_eq!(
        shard_matvec(&sync, &h2s, &x, false),
        shard_matvec(&pipe, &h2p, &x, false)
    );
}

/// Deterministic pseudo-random per-transfer delay: scrambles completion
/// order across the concurrently-serviced virtual copies.
fn scrambling_delay() -> h2_sched::TransferDelay {
    Arc::new(|t: &h2_sched::Transfer| {
        let mut h = t.bytes ^ ((t.src as u64) << 32) ^ ((t.dst as u64) << 17) ^ 0x9E37_79B9;
        h ^= h >> 13;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        Duration::from_micros(h % 2500)
    })
}

#[test]
fn pipelined_stress_randomized_prefetch_completion_order() {
    let (tree, part, km) = sym_problem(1400, 16, 102);
    let sync = DeviceFabric::new(3);
    let (h2s, _, _) = shard_construct(&sync, &km, &km, tree.clone(), part.clone(), &cfg());
    let pipe = DeviceFabric::pipelined(3);
    pipe.set_transfer_delay(Some(scrambling_delay()));
    let (h2p, _, rep_p) = shard_construct(&pipe, &km, &km, tree, part, &cfg());
    assert_h2_identical(&h2s, &h2p, 1400, 103);
    // Jobs gated on slow copies must have recorded real stall time — the
    // hook is exercised, not bypassed.
    assert!(
        rep_p.total_comm_messages() > 0,
        "stress geometry must communicate"
    );
    let x = gaussian_mat(1400, 2, 104);
    let want = shard_matvec(&sync, &h2s, &x, false);
    let got = shard_matvec(&pipe, &h2p, &x, false);
    assert_eq!(got, want, "delayed prefetches must not change the matvec");
}

/// Acceptance: the pipelined executor's measured totals equal the
/// simulator's prediction exactly (bytes) / to rounding (work), and its
/// overlap-aware makespan projection sits within the **tightened 2x band**
/// (vs. the synchronous fabric's documented 3x).
#[test]
fn pipelined_accounting_matches_simulator_within_2x() {
    let (tree, part, km) = sym_problem(1400, 16, 105);
    let model = DeviceModel::default();
    for devices in [2usize, 4] {
        let pipe = DeviceFabric::pipelined(devices);
        let (h2, stats, report) =
            shard_construct(&pipe, &km, &km, tree.clone(), part.clone(), &cfg());
        assert_eq!(stats.rounds, 0, "config must converge without adaptation");
        let cmp = compare_with_simulator(&report, &level_specs(&h2), stats.total_samples, &model);
        assert!(
            cmp.flops_rel_err() < 1e-9,
            "work totals diverge: {:.3e}",
            cmp.flops_rel_err()
        );
        assert!(
            cmp.bytes_match(),
            "traffic totals diverge: measured {} vs predicted {} bytes",
            cmp.measured_bytes,
            cmp.predicted_bytes
        );
        let ratio = cmp.makespan_ratio();
        assert!(
            (1.0 / 3.0..=2.0).contains(&ratio),
            "D={devices}: pipelined makespan ratio {ratio} outside the tightened 2x band"
        );
    }
}

#[test]
fn pipelined_projection_beats_synchronous_when_comm_matters() {
    // Same counters, different schedule: at D >= 2 with real traffic the
    // overlap-aware projection must not exceed the serialized one.
    let (tree, part, km) = sym_problem(1400, 16, 106);
    let model = DeviceModel::default();
    let sync = DeviceFabric::new(4);
    let (_, _, rep_s) = shard_construct(&sync, &km, &km, tree.clone(), part.clone(), &cfg());
    let pipe = DeviceFabric::pipelined(4);
    let (_, _, rep_p) = shard_construct(&pipe, &km, &km, tree, part, &cfg());
    let (ms, mp) = (
        rep_s.modeled_makespan(&model),
        rep_p.modeled_makespan(&model),
    );
    assert!(
        mp <= ms * (1.0 + 1e-9),
        "overlap can only shorten the projected makespan: sync {ms} vs pipelined {mp}"
    );
    assert!(
        rep_s.total_comm_bytes() > 0,
        "test geometry must communicate at D=4"
    );
}
