//! # h2-kernels
//!
//! Kernel functions and kernel matrices — the paper's three test problems
//! plus a few extras:
//!
//! * exponential covariance `K(x,y) = exp(-|x-y| / l)` (paper eq. (8),
//!   Gaussian spatial process, correlation length `l = 0.2`),
//! * Helmholtz volume IE `K(x,y) = cos(k |x-y|) / |x-y|` (paper eq. (9),
//!   `k = 3`), with a configurable diagonal self-term,
//! * Gaussian and Matérn-3/2 covariance kernels,
//! * the 3-D Laplace (free-space Green's function) kernel used by the
//!   frontal-matrix surrogate,
//! * unsymmetric operators feeding the two-stream construction:
//!   [`ConvectionKernel`] (diffusion plus directional drift,
//!   `K(x,y) = exp(-r/l)·(1 + v·(x-y))` — the structure of a
//!   convection-diffusion volume operator) behind [`UnsymKernelMatrix`],
//!   and [`ScaledKernelMatrix`] (`D_r K D_c`, the structure produced by row
//!   equilibration or non-Galerkin discretizations).
//!
//! [`KernelMatrix`] binds a kernel to a point cloud in *tree order* and
//! implements both black-box inputs of Algorithm 1 ([`LinOp`] for sketching
//! and [`EntryAccess`] for `batchedGen`); the unsymmetric matrices
//! additionally implement `apply_transpose`, the `Kᵀ·Ψ` sampler of the
//! column sketch stream. Every `apply` here is the exact O(N² d) product —
//! used as ground truth in tests and to bootstrap reference operators;
//! large-scale sampling goes through the O(N) H2 matvec in `h2-matrix`.

use h2_dense::{EntryAccess, LinOp, MatMut, MatRef};
use h2_tree::{dist, Point};
use rayon::prelude::*;

/// A symmetric, translation-invariant kernel function.
pub trait Kernel: Sync + Send {
    /// Evaluate the kernel at distance `r > 0`.
    fn eval_r(&self, r: f64) -> f64;

    /// Value on the diagonal (and for coincident points).
    fn diag(&self) -> f64;

    /// Evaluate for a point pair.
    fn eval(&self, x: &Point, y: &Point) -> f64 {
        let r = dist(x, y);
        if r == 0.0 {
            self.diag()
        } else {
            self.eval_r(r)
        }
    }
}

/// Exponential covariance kernel `exp(-r / l)` (paper eq. (8)).
#[derive(Clone, Copy, Debug)]
pub struct ExponentialKernel {
    /// Correlation length (paper uses 0.2).
    pub l: f64,
}

impl Default for ExponentialKernel {
    fn default() -> Self {
        ExponentialKernel { l: 0.2 }
    }
}

impl Kernel for ExponentialKernel {
    fn eval_r(&self, r: f64) -> f64 {
        (-r / self.l).exp()
    }

    fn diag(&self) -> f64 {
        1.0
    }
}

/// Helmholtz volume IE kernel `cos(k r) / r` (paper eq. (9)).
///
/// The paper leaves the `x = y` self-term to the discretization; we expose it
/// as `diag`. The `paper(n)` constructor uses an `n^{1/3}`-scaled self-term
/// mimicking a volume quadrature self-interaction (≈ 2/h for mesh width h),
/// which keeps the operator well conditioned.
#[derive(Clone, Copy, Debug)]
pub struct HelmholtzKernel {
    /// Wavenumber (paper fixes k = 3).
    pub k: f64,
    /// Diagonal self-term.
    pub diag: f64,
}

impl HelmholtzKernel {
    /// Paper configuration for an `n`-point unit-cube volume grid.
    pub fn paper(n: usize) -> Self {
        HelmholtzKernel {
            k: 3.0,
            diag: 2.0 * (n as f64).cbrt(),
        }
    }
}

impl Kernel for HelmholtzKernel {
    fn eval_r(&self, r: f64) -> f64 {
        (self.k * r).cos() / r
    }

    fn diag(&self) -> f64 {
        self.diag
    }
}

/// Gaussian (squared-exponential) covariance kernel `exp(-r² / (2 l²))`.
#[derive(Clone, Copy, Debug)]
pub struct GaussianKernel {
    pub l: f64,
}

impl Kernel for GaussianKernel {
    fn eval_r(&self, r: f64) -> f64 {
        (-0.5 * (r / self.l) * (r / self.l)).exp()
    }

    fn diag(&self) -> f64 {
        1.0
    }
}

/// Matérn-3/2 covariance kernel `(1 + √3 r/l) exp(-√3 r/l)`.
#[derive(Clone, Copy, Debug)]
pub struct Matern32Kernel {
    pub l: f64,
}

impl Kernel for Matern32Kernel {
    fn eval_r(&self, r: f64) -> f64 {
        let s = 3f64.sqrt() * r / self.l;
        (1.0 + s) * (-s).exp()
    }

    fn diag(&self) -> f64 {
        1.0
    }
}

/// Matérn-5/2 covariance kernel `(1 + √5 r/l + 5r²/(3l²)) exp(-√5 r/l)` —
/// the twice-differentiable member of the Matérn family, the default in
/// much of the Gaussian-process literature.
#[derive(Clone, Copy, Debug)]
pub struct Matern52Kernel {
    pub l: f64,
}

impl Kernel for Matern52Kernel {
    fn eval_r(&self, r: f64) -> f64 {
        let s = 5f64.sqrt() * r / self.l;
        (1.0 + s + s * s / 3.0) * (-s).exp()
    }

    fn diag(&self) -> f64 {
        1.0
    }
}

/// Inverse multiquadric kernel `1 / √(1 + (r/l)²)` — an RBF-interpolation
/// staple with algebraic (not exponential) decay; strictly positive
/// definite on distinct points.
#[derive(Clone, Copy, Debug)]
pub struct InverseMultiquadricKernel {
    pub l: f64,
}

impl Kernel for InverseMultiquadricKernel {
    fn eval_r(&self, r: f64) -> f64 {
        let s = r / self.l;
        1.0 / (1.0 + s * s).sqrt()
    }

    fn diag(&self) -> f64 {
        1.0
    }
}

/// Cauchy (rational-quadratic limit) kernel `1 / (1 + (r/l)²)` — heavy
/// polynomial tails, long-range correlations.
#[derive(Clone, Copy, Debug)]
pub struct CauchyKernel {
    pub l: f64,
}

impl Kernel for CauchyKernel {
    fn eval_r(&self, r: f64) -> f64 {
        let s = r / self.l;
        1.0 / (1.0 + s * s)
    }

    fn diag(&self) -> f64 {
        1.0
    }
}

/// 3-D Laplace single-layer kernel `1 / (4π r)` with a diagonal self-term —
/// the Green's-function surrogate for Poisson frontal matrices.
#[derive(Clone, Copy, Debug)]
pub struct LaplaceKernel {
    pub diag: f64,
}

impl LaplaceKernel {
    /// Self-term `≈ 1/(2π h)` for mesh width `h` (keeps the surrogate SPD-ish).
    pub fn with_mesh_width(h: f64) -> Self {
        LaplaceKernel {
            diag: 1.0 / (2.0 * std::f64::consts::PI * h),
        }
    }
}

impl Kernel for LaplaceKernel {
    fn eval_r(&self, r: f64) -> f64 {
        1.0 / (4.0 * std::f64::consts::PI * r)
    }

    fn diag(&self) -> f64 {
        self.diag
    }
}

/// A kernel matrix over a point cloud in tree (permuted) order.
///
/// Index `i` refers to `points[i]`; callers pass points already permuted by
/// the cluster tree so that matrix indices match cluster index ranges.
pub struct KernelMatrix<K: Kernel> {
    pub kernel: K,
    pub points: Vec<Point>,
}

impl<K: Kernel> KernelMatrix<K> {
    pub fn new(kernel: K, points: Vec<Point>) -> Self {
        KernelMatrix { kernel, points }
    }

    pub fn n(&self) -> usize {
        self.points.len()
    }

    #[inline]
    fn value(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return self.kernel.diag();
        }
        let r = dist(&self.points[i], &self.points[j]);
        if r == 0.0 {
            self.kernel.diag()
        } else {
            self.kernel.eval_r(r)
        }
    }
}

impl<K: Kernel> EntryAccess for KernelMatrix<K> {
    fn entry(&self, i: usize, j: usize) -> f64 {
        self.value(i, j)
    }

    fn block(&self, rows: &[usize], cols: &[usize], out: &mut MatMut<'_>) {
        assert_eq!(out.rows(), rows.len());
        assert_eq!(out.cols(), cols.len());
        for (jj, &j) in cols.iter().enumerate() {
            let col = out.col_mut(jj);
            for (ii, &i) in rows.iter().enumerate() {
                col[ii] = self.value(i, j);
            }
        }
    }
}

impl<K: Kernel> LinOp for KernelMatrix<K> {
    fn nrows(&self) -> usize {
        self.n()
    }

    fn ncols(&self) -> usize {
        self.n()
    }

    /// Exact dense product, computed on the fly (never forms the N x N
    /// matrix), parallelized over output columns. O(N² d) — ground truth for
    /// tests and reference-operator bootstrap.
    fn apply(&self, x: MatRef<'_>, y: MatMut<'_>) {
        let n = self.n();
        assert_eq!(x.rows(), n);
        assert_eq!(y.rows(), n);
        let d = x.cols();

        // Disjoint single-column views of y for safe parallelism.
        let mut cols: Vec<MatMut<'_>> = Vec::with_capacity(d);
        let mut rest = y;
        for _ in 0..d {
            let (head, tail) = rest.split_cols(1);
            cols.push(head);
            rest = tail;
        }
        cols.into_par_iter().enumerate().for_each(|(j, mut yj)| {
            let xj = x.col(j);
            for i in 0..n {
                let mut s = 0.0;
                for (l, xl) in xj.iter().enumerate() {
                    s += self.value(i, l) * xl;
                }
                *yj.at_mut(i, 0) = s;
            }
        });
    }
}

/// A general (possibly unsymmetric) kernel function of two points.
pub trait Kernel2: Sync + Send {
    /// Evaluate `K(x, y)` for distinct points.
    fn eval2(&self, x: &Point, y: &Point) -> f64;

    /// Value for coincident points.
    fn diag(&self) -> f64;
}

/// Exponential diffusion with a directional drift:
/// `K(x, y) = exp(-|x-y|/l) · (1 + v · (x - y))`.
///
/// The drift term is antisymmetric in `(x, y)`, so `K(x,y) ≠ K(y,x)` while
/// the function stays smooth away from the diagonal — admissible blocks keep
/// the low numerical rank the construction relies on.
#[derive(Clone, Copy, Debug)]
pub struct ConvectionKernel {
    /// Correlation length of the diffusive part.
    pub l: f64,
    /// Drift velocity.
    pub v: [f64; 3],
}

impl Default for ConvectionKernel {
    fn default() -> Self {
        ConvectionKernel {
            l: 0.2,
            v: [0.4, -0.25, 0.1],
        }
    }
}

impl Kernel2 for ConvectionKernel {
    fn eval2(&self, x: &Point, y: &Point) -> f64 {
        let r = dist(x, y);
        let drift: f64 = (0..3).map(|c| self.v[c] * (x[c] - y[c])).sum();
        (-r / self.l).exp() * (1.0 + drift)
    }

    fn diag(&self) -> f64 {
        1.0
    }
}

/// A kernel matrix for a general two-point kernel, in tree-permuted order.
pub struct UnsymKernelMatrix<K: Kernel2> {
    pub kernel: K,
    pub points: Vec<Point>,
}

impl<K: Kernel2> UnsymKernelMatrix<K> {
    pub fn new(kernel: K, points: Vec<Point>) -> Self {
        UnsymKernelMatrix { kernel, points }
    }

    pub fn n(&self) -> usize {
        self.points.len()
    }

    #[inline]
    fn value(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return self.kernel.diag();
        }
        let x = &self.points[i];
        let y = &self.points[j];
        if dist(x, y) == 0.0 {
            self.kernel.diag()
        } else {
            self.kernel.eval2(x, y)
        }
    }

    fn apply_dir(&self, x: MatRef<'_>, y: MatMut<'_>, transpose: bool) {
        let n = self.n();
        assert_eq!(x.rows(), n);
        assert_eq!(y.rows(), n);
        let d = x.cols();
        let mut cols: Vec<MatMut<'_>> = Vec::with_capacity(d);
        let mut rest = y;
        for _ in 0..d {
            let (head, tail) = rest.split_cols(1);
            cols.push(head);
            rest = tail;
        }
        cols.into_par_iter().enumerate().for_each(|(j, mut yj)| {
            let xj = x.col(j);
            for i in 0..n {
                let mut s = 0.0;
                for (l, xl) in xj.iter().enumerate() {
                    let v = if transpose {
                        self.value(l, i)
                    } else {
                        self.value(i, l)
                    };
                    s += v * xl;
                }
                *yj.at_mut(i, 0) = s;
            }
        });
    }
}

impl<K: Kernel2> EntryAccess for UnsymKernelMatrix<K> {
    fn entry(&self, i: usize, j: usize) -> f64 {
        self.value(i, j)
    }

    fn block(&self, rows: &[usize], cols: &[usize], out: &mut MatMut<'_>) {
        assert_eq!(out.rows(), rows.len());
        assert_eq!(out.cols(), cols.len());
        for (jj, &j) in cols.iter().enumerate() {
            let col = out.col_mut(jj);
            for (ii, &i) in rows.iter().enumerate() {
                col[ii] = self.value(i, j);
            }
        }
    }
}

impl<K: Kernel2> LinOp for UnsymKernelMatrix<K> {
    fn nrows(&self) -> usize {
        self.n()
    }

    fn ncols(&self) -> usize {
        self.n()
    }

    /// Exact dense product, O(N² d): ground truth for tests.
    fn apply(&self, x: MatRef<'_>, y: MatMut<'_>) {
        self.apply_dir(x, y, false);
    }

    fn apply_transpose(&self, x: MatRef<'_>, y: MatMut<'_>) {
        self.apply_dir(x, y, true);
    }
}

/// Two-sided diagonal scaling `D_r K D_c` of a symmetric kernel matrix.
pub struct ScaledKernelMatrix<K: Kernel> {
    pub inner: KernelMatrix<K>,
    /// Row scaling `D_r` (length N).
    pub row_scale: Vec<f64>,
    /// Column scaling `D_c` (length N).
    pub col_scale: Vec<f64>,
}

impl<K: Kernel> ScaledKernelMatrix<K> {
    pub fn new(inner: KernelMatrix<K>, row_scale: Vec<f64>, col_scale: Vec<f64>) -> Self {
        assert_eq!(inner.n(), row_scale.len());
        assert_eq!(inner.n(), col_scale.len());
        ScaledKernelMatrix {
            inner,
            row_scale,
            col_scale,
        }
    }

    pub fn n(&self) -> usize {
        self.inner.n()
    }
}

impl<K: Kernel> EntryAccess for ScaledKernelMatrix<K> {
    fn entry(&self, i: usize, j: usize) -> f64 {
        self.row_scale[i] * self.inner.entry(i, j) * self.col_scale[j]
    }
}

impl<K: Kernel> LinOp for ScaledKernelMatrix<K> {
    fn nrows(&self) -> usize {
        self.n()
    }

    fn ncols(&self) -> usize {
        self.n()
    }

    fn apply(&self, x: MatRef<'_>, mut y: MatMut<'_>) {
        // y = D_r K D_c x
        let n = self.n();
        let d = x.cols();
        let mut xs = x.to_mat();
        for j in 0..d {
            let col = xs.col_mut(j);
            for i in 0..n {
                col[i] *= self.col_scale[i];
            }
        }
        self.inner.apply(xs.rf(), y.rb_mut());
        for j in 0..d {
            let col = y.col_mut(j);
            for i in 0..n {
                col[i] *= self.row_scale[i];
            }
        }
    }

    fn apply_transpose(&self, x: MatRef<'_>, mut y: MatMut<'_>) {
        // (D_r K D_c)^T = D_c K D_r (K symmetric)
        let n = self.n();
        let d = x.cols();
        let mut xs = x.to_mat();
        for j in 0..d {
            let col = xs.col_mut(j);
            for i in 0..n {
                col[i] *= self.row_scale[i];
            }
        }
        self.inner.apply(xs.rf(), y.rb_mut());
        for j in 0..d {
            let col = y.col_mut(j);
            for i in 0..n {
                col[i] *= self.col_scale[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2_dense::{gaussian_mat, Mat};
    use h2_tree::uniform_cube;

    #[test]
    fn kernels_match_formulas() {
        let e = ExponentialKernel { l: 0.2 };
        assert!((e.eval_r(0.2) - (-1.0f64).exp()).abs() < 1e-15);
        assert_eq!(e.diag(), 1.0);

        let h = HelmholtzKernel { k: 3.0, diag: 5.0 };
        assert!((h.eval_r(0.5) - (1.5f64).cos() / 0.5).abs() < 1e-15);
        assert_eq!(h.diag(), 5.0);

        let g = GaussianKernel { l: 1.0 };
        assert!((g.eval_r(1.0) - (-0.5f64).exp()).abs() < 1e-15);

        let m = Matern32Kernel { l: 1.0 };
        let s = 3f64.sqrt();
        assert!((m.eval_r(1.0) - (1.0 + s) * (-s).exp()).abs() < 1e-15);

        let m5 = Matern52Kernel { l: 1.0 };
        let s5 = 5f64.sqrt();
        assert!((m5.eval_r(1.0) - (1.0 + s5 + 5.0 / 3.0) * (-s5).exp()).abs() < 1e-15);

        let imq = InverseMultiquadricKernel { l: 2.0 };
        assert!((imq.eval_r(2.0) - 1.0 / 2f64.sqrt()).abs() < 1e-15);

        let c = CauchyKernel { l: 1.0 };
        assert!((c.eval_r(3.0) - 0.1).abs() < 1e-15);

        let lp = LaplaceKernel { diag: 1.0 };
        assert!((lp.eval_r(2.0) - 1.0 / (8.0 * std::f64::consts::PI)).abs() < 1e-15);
    }

    #[test]
    fn matern_family_ordering() {
        // At a fixed distance, smoother Matérn members stay closer to 1
        // (faster small-r Taylor agreement): exp (ν=1/2) < 3/2 < 5/2 < Gauss.
        let r = 0.3;
        let e = ExponentialKernel { l: 1.0 }.eval_r(r);
        let m3 = Matern32Kernel { l: 1.0 }.eval_r(r);
        let m5 = Matern52Kernel { l: 1.0 }.eval_r(r);
        assert!(
            e < m3 && m3 < m5,
            "Matérn smoothness ordering violated: {e} {m3} {m5}"
        );
    }

    #[test]
    fn new_kernels_are_spd_on_small_clouds() {
        let pts = uniform_cube(50, 67);
        for k in [
            &KernelMatrix::new(Matern52Kernel { l: 0.5 }, pts.clone()) as &dyn EntryAccess,
            &KernelMatrix::new(InverseMultiquadricKernel { l: 0.5 }, pts.clone()),
            &KernelMatrix::new(CauchyKernel { l: 0.5 }, pts.clone()),
        ] {
            let mut dense = Mat::from_fn(50, 50, |i, j| k.entry(i, j));
            assert!(
                h2_dense::cholesky_in_place(&mut dense.rm()).is_ok(),
                "kernel matrix must be SPD on distinct points"
            );
        }
    }

    #[test]
    fn kernel_matrix_symmetric() {
        let pts = uniform_cube(50, 61);
        let km = KernelMatrix::new(ExponentialKernel::default(), pts);
        for i in (0..50).step_by(7) {
            for j in (0..50).step_by(11) {
                assert_eq!(km.entry(i, j), km.entry(j, i));
            }
        }
        assert_eq!(km.entry(3, 3), 1.0);
    }

    #[test]
    fn block_matches_entries() {
        let pts = uniform_cube(40, 62);
        let km = KernelMatrix::new(HelmholtzKernel::paper(40), pts);
        let rows = [3, 17, 0];
        let cols = [5, 3, 39, 1];
        let b = km.block_mat(&rows, &cols);
        for (ii, &i) in rows.iter().enumerate() {
            for (jj, &j) in cols.iter().enumerate() {
                assert_eq!(b[(ii, jj)], km.entry(i, j));
            }
        }
    }

    #[test]
    fn apply_matches_dense() {
        let pts = uniform_cube(120, 63);
        let km = KernelMatrix::new(ExponentialKernel::default(), pts);
        let dense = Mat::from_fn(120, 120, |i, j| km.entry(i, j));
        let x = gaussian_mat(120, 3, 64);
        let y = km.apply_mat(&x);
        let want = h2_dense::matmul(
            h2_dense::Op::NoTrans,
            h2_dense::Op::NoTrans,
            dense.rf(),
            x.rf(),
        );
        let mut d = y;
        d.axpy(-1.0, &want);
        assert!(d.norm_max() < 1e-11);
    }

    #[test]
    fn covariance_matrix_is_spd_small() {
        // Exponential covariance on distinct points is strictly PD.
        let pts = uniform_cube(60, 65);
        let km = KernelMatrix::new(ExponentialKernel::default(), pts);
        let mut dense = Mat::from_fn(60, 60, |i, j| km.entry(i, j));
        assert!(h2_dense::cholesky_in_place(&mut dense.rm()).is_ok());
    }

    #[test]
    fn kernel_decay_ordering() {
        // At the paper's correlation length, distant interactions are tiny —
        // the low-rank structure the whole method exploits.
        let e = ExponentialKernel { l: 0.2 };
        assert!(e.eval_r(1.0) < 0.01);
        assert!(e.eval_r(0.05) > 0.75);
    }

    #[test]
    fn helmholtz_far_blocks_are_low_rank() {
        // Two well-separated clusters: the interaction block must compress.
        let mut pts = uniform_cube(64, 66);
        for p in pts.iter_mut().take(32) {
            // cluster A: compact box [0, 0.2]^3
            for c in p.iter_mut() {
                *c *= 0.2;
            }
        }
        for p in pts.iter_mut().skip(32) {
            // cluster B: compact box [0.8, 1.0]^3 (distance ≈ 1, diam ≈ 0.35)
            for c in p.iter_mut() {
                *c = 0.8 + 0.2 * *c;
            }
        }
        let km = KernelMatrix::new(HelmholtzKernel::paper(64), pts);
        let rows: Vec<usize> = (0..32).collect();
        let cols: Vec<usize> = (32..64).collect();
        let b = km.block_mat(&rows, &cols);
        let f = h2_dense::svd(&b);
        let rel_rank = f.s.iter().take_while(|&&s| s > 1e-6 * f.s[0]).count();
        assert!(
            rel_rank <= 20,
            "separated 32x32 block should be numerically low rank, got rank {rel_rank}"
        );
    }
}

#[cfg(test)]
mod unsym_tests {
    use super::*;

    use h2_dense::{gaussian_mat, Mat};
    use h2_tree::uniform_cube;

    #[test]
    fn convection_kernel_is_unsymmetric() {
        let k = ConvectionKernel::default();
        let x = [0.1, 0.2, 0.3];
        let y = [0.7, 0.1, 0.5];
        let a = k.eval2(&x, &y);
        let b = k.eval2(&y, &x);
        assert!(
            (a - b).abs() > 1e-3,
            "drift must break symmetry: {a} vs {b}"
        );
    }

    #[test]
    fn unsym_apply_matches_dense() {
        let pts = uniform_cube(80, 201);
        let km = UnsymKernelMatrix::new(ConvectionKernel::default(), pts);
        let dense = Mat::from_fn(80, 80, |i, j| km.entry(i, j));
        let x = gaussian_mat(80, 3, 202);
        let y = km.apply_mat(&x);
        let want = h2_dense::matmul(
            h2_dense::Op::NoTrans,
            h2_dense::Op::NoTrans,
            dense.rf(),
            x.rf(),
        );
        let mut d = y;
        d.axpy(-1.0, &want);
        assert!(d.norm_max() < 1e-11);
    }

    #[test]
    fn unsym_apply_transpose_matches_dense() {
        let pts = uniform_cube(70, 203);
        let km = UnsymKernelMatrix::new(ConvectionKernel::default(), pts);
        let dense = Mat::from_fn(70, 70, |i, j| km.entry(i, j));
        let x = gaussian_mat(70, 2, 204);
        let mut y = Mat::zeros(70, 2);
        km.apply_transpose(x.rf(), y.rm());
        let want = h2_dense::matmul(
            h2_dense::Op::Trans,
            h2_dense::Op::NoTrans,
            dense.rf(),
            x.rf(),
        );
        let mut d = y;
        d.axpy(-1.0, &want);
        assert!(d.norm_max() < 1e-11);
    }

    #[test]
    fn scaled_kernel_entries_and_apply_agree() {
        let pts = uniform_cube(60, 205);
        let inner = KernelMatrix::new(ExponentialKernel::default(), pts);
        let dr: Vec<f64> = (0..60).map(|i| 1.0 + 0.01 * i as f64).collect();
        let dc: Vec<f64> = (0..60).map(|i| 2.0 - 0.02 * i as f64).collect();
        let sk = ScaledKernelMatrix::new(inner, dr, dc);
        let dense = Mat::from_fn(60, 60, |i, j| sk.entry(i, j));
        let x = gaussian_mat(60, 2, 206);
        let y = sk.apply_mat(&x);
        let want = h2_dense::matmul(
            h2_dense::Op::NoTrans,
            h2_dense::Op::NoTrans,
            dense.rf(),
            x.rf(),
        );
        let mut d = y;
        d.axpy(-1.0, &want);
        assert!(d.norm_max() < 1e-11);

        // transpose path
        let mut yt = Mat::zeros(60, 2);
        sk.apply_transpose(x.rf(), yt.rm());
        let want_t = h2_dense::matmul(
            h2_dense::Op::Trans,
            h2_dense::Op::NoTrans,
            dense.rf(),
            x.rf(),
        );
        let mut dt = yt;
        dt.axpy(-1.0, &want_t);
        assert!(dt.norm_max() < 1e-11);
    }

    #[test]
    fn convection_far_blocks_low_rank() {
        // Separated clusters: the unsymmetric far block must still compress.
        let mut pts = uniform_cube(64, 207);
        for p in pts.iter_mut().take(32) {
            for c in p.iter_mut() {
                *c *= 0.2;
            }
        }
        for p in pts.iter_mut().skip(32) {
            for c in p.iter_mut() {
                *c = 0.8 + 0.2 * *c;
            }
        }
        let km = UnsymKernelMatrix::new(ConvectionKernel::default(), pts);
        let rows: Vec<usize> = (0..32).collect();
        let cols: Vec<usize> = (32..64).collect();
        let b = km.block_mat(&rows, &cols);
        let f = h2_dense::svd(&b);
        let rel_rank = f.s.iter().take_while(|&&s| s > 1e-8 * f.s[0]).count();
        assert!(rel_rank <= 24, "unsym far block rank {rel_rank}");
    }
}
