//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the slice of criterion its benches use: groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter` and the
//! `criterion_group!` / `criterion_main!` macros. Measurement is a simple
//! best-of-N wall-clock timer printed to stdout — enough to compare curve
//! shapes, not a statistics engine.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.sample_size;
        println!("group {name}");
        BenchmarkGroup {
            _c: self,
            name,
            sample_size,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size;
        run_one(&format!("{id}"), samples, &mut f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{id}", self.name), self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.repr);
        let mut bencher = Bencher {
            best: Duration::MAX,
        };
        let samples = sample_count(self.sample_size);
        for _ in 0..samples {
            f(&mut bencher, input);
        }
        report(&label, bencher.best);
        self
    }

    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter.
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            repr: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            repr: format!("{parameter}"),
        }
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    best: Duration,
}

impl Bencher {
    /// Time one execution of `f`, keeping the best observation.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let t0 = Instant::now();
        black_box(f());
        let dt = t0.elapsed();
        if dt < self.best {
            self.best = dt;
        }
    }
}

fn sample_count(requested: usize) -> usize {
    // Best-of-N with a small N: benches here are macro-scale (ms..s), so a
    // handful of repeats bounds noise without criterion's statistics.
    requested.clamp(1, 5)
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher {
        best: Duration::MAX,
    };
    for _ in 0..sample_count(sample_size) {
        f(&mut bencher);
    }
    report(label, bencher.best);
}

fn report(label: &str, best: Duration) {
    if best == Duration::MAX {
        println!("  {label}: no measurement");
    } else {
        println!("  {label}: {:.6} s", best.as_secs_f64());
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let _ = $cfg;
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bench_run() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(2);
        let mut hits = 0usize;
        g.bench_function("noop", |b| {
            b.iter(|| hits = hits.wrapping_add(1));
        });
        g.bench_with_input(BenchmarkId::new("sq", 4), &4usize, |b, &n| {
            b.iter(|| n * n);
        });
        g.finish();
        assert!(hits > 0);
    }
}
