//! Integration: construction → solve, across crates.
//!
//! The construction exists to feed fast arithmetic (paper §I); these tests
//! run complete compress-then-solve pipelines: Krylov iterations on H2
//! operators, ULV direct solves of HSS compressions of *frontal matrices*
//! (the multifrontal use case), and Woodbury solves of low-rank updates.

use h2sketch::dense::{gaussian_mat, lu_factor, DenseOp, LinOp, Mat};
use h2sketch::frontal::poisson_top_front;
use h2sketch::kernels::{ConvectionKernel, ExponentialKernel, KernelMatrix, UnsymKernelMatrix};
use h2sketch::matrix::LowRankUpdate;
use h2sketch::runtime::Runtime;
use h2sketch::sketch::{sketch_construct, sketch_construct_unsym, SketchConfig};
use h2sketch::solve::{bicgstab, gmres, pcg, woodbury_solve, BlockJacobi, Identity, UlvFactor};
use h2sketch::tree::{uniform_cube, Admissibility, ClusterTree, Partition};
use std::sync::Arc;

/// CG on a compressed covariance operator converges and solves the kernel
/// system to the compression accuracy.
#[test]
fn pcg_on_h2_covariance() {
    let n = 2000;
    let pts = uniform_cube(n, 701);
    let tree = Arc::new(ClusterTree::build(&pts, 32));
    let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
    let km = KernelMatrix::new(ExponentialKernel::default(), tree.points.clone());
    let rt = Runtime::parallel();
    let cfg = SketchConfig {
        tol: 1e-8,
        initial_samples: 64,
        ..Default::default()
    };
    let (h2, _) = sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg);

    let b: Vec<f64> = (0..n).map(|i| (0.02 * i as f64).sin()).collect();
    let bj = BlockJacobi::from_h2(&h2).unwrap();
    let res = pcg(&h2, &bj, &b, 800, 1e-9);
    assert!(res.converged, "residual {}", res.relative_residual);

    // The H2 solution also solves the *exact* kernel system to roughly the
    // compression tolerance.
    let x = Mat::from_vec(n, 1, res.x.clone());
    let kx = km.apply_mat(&x);
    let mut r = 0.0f64;
    let mut bn = 0.0f64;
    for i in 0..n {
        r += (kx[(i, 0)] - b[i]).powi(2);
        bn += b[i] * b[i];
    }
    assert!(
        (r / bn).sqrt() < 1e-5,
        "exact-system residual {}",
        (r / bn).sqrt()
    );
}

/// GMRES and BiCGStab solve an unsymmetric compressed system and agree.
#[test]
fn unsym_h2_gmres_and_bicgstab() {
    let n = 1200;
    let pts = uniform_cube(n, 702);
    let tree = Arc::new(ClusterTree::build(&pts, 16));
    let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
    let km = UnsymKernelMatrix::new(ConvectionKernel::default(), tree.points.clone());
    let rt = Runtime::parallel();
    let cfg = SketchConfig {
        tol: 1e-8,
        initial_samples: 80,
        ..Default::default()
    };
    let (h2, _) = sketch_construct_unsym(&km, &km, tree.clone(), part, &rt, &cfg);

    let b: Vec<f64> = (0..n).map(|i| 1.0 + (0.05 * i as f64).cos()).collect();
    let g = gmres(&h2, &Identity { n }, &b, 40, 800, 1e-10);
    assert!(g.converged, "gmres residual {}", g.relative_residual);
    let s = bicgstab(&h2, &Identity { n }, &b, 800, 1e-10);
    assert!(s.converged, "bicgstab residual {}", s.relative_residual);

    let mut dmax = 0.0f64;
    for i in 0..n {
        dmax = dmax.max((g.x[i] - s.x[i]).abs());
    }
    let xscale = g.x.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
    assert!(dmax < 1e-6 * xscale.max(1.0), "solvers disagree by {dmax}");

    // And the solution solves the exact system.
    let x = Mat::from_vec(n, 1, g.x.clone());
    let kx = km.apply_mat(&x);
    let mut r = 0.0f64;
    let mut bn = 0.0f64;
    for i in 0..n {
        r += (kx[(i, 0)] - b[i]).powi(2);
        bn += b[i] * b[i];
    }
    assert!(
        (r / bn).sqrt() < 1e-5,
        "exact-system residual {}",
        (r / bn).sqrt()
    );
}

/// The multifrontal use case: compress a Poisson top-separator front with
/// the weak (HSS) pattern and ULV-solve it; validate against a dense solve.
#[test]
fn frontal_hss_ulv_solve() {
    let (front, points) = poisson_top_front(14, 7);
    let n = front.rows();
    let tree = Arc::new(ClusterTree::build(&points, 32));
    let part = Arc::new(Partition::build(&tree, Admissibility::Weak));
    // Operator in tree order.
    let perm = &tree.perm;
    let permuted = Mat::from_fn(n, n, |i, j| front[(perm[i], perm[j])]);
    let op = DenseOp::new(permuted.clone());

    let rt = Runtime::parallel();
    let cfg = SketchConfig {
        tol: 1e-10,
        initial_samples: 64,
        max_rank: 160,
        ..Default::default()
    };
    let (hss, _) = sketch_construct(&op, &op, tree, part, &rt, &cfg);
    let ulv = UlvFactor::new(&hss).expect("frontal matrices are SPD");

    let b = gaussian_mat(n, 2, 703);
    let x = ulv.solve(&b);
    let want = lu_factor(permuted).unwrap().solve(&b);
    let mut d = x;
    d.axpy(-1.0, &want);
    let rel = d.norm_fro() / want.norm_fro();
    assert!(rel < 1e-6, "frontal ULV vs dense solve rel {rel}");
}

/// Woodbury + ULV: solve a low-rank-updated HSS system without refactoring,
/// and cross-check against recompress-then-iterate.
#[test]
fn lowrank_update_woodbury_vs_recompression() {
    let n = 1024;
    let pts: Vec<[f64; 3]> = (0..n).map(|i| [i as f64 / n as f64, 0.0, 0.0]).collect();
    let tree = Arc::new(ClusterTree::build(&pts, 32));
    let wpart = Arc::new(Partition::build(&tree, Admissibility::Weak));
    let km = KernelMatrix::new(ExponentialKernel { l: 0.5 }, tree.points.clone());
    let rt = Runtime::parallel();
    let cfg = SketchConfig {
        tol: 1e-10,
        initial_samples: 64,
        max_rank: 128,
        ..Default::default()
    };
    let (mut hss, _) = sketch_construct(&km, &km, tree.clone(), wpart, &rt, &cfg);
    // Shift: K + 2I.
    for i in 0..hss.dense.pairs.len() {
        let (s, t) = hss.dense.pairs[i];
        if s == t {
            let blk = &mut hss.dense.blocks[i];
            for j in 0..blk.rows() {
                blk[(j, j)] += 2.0;
            }
        }
    }
    let ulv = UlvFactor::new(&hss).unwrap();

    let mut p = gaussian_mat(n, 6, 704);
    p.scale(0.1);
    let b = gaussian_mat(n, 1, 705);
    let solve_a = |rhs: h2sketch::dense::MatRef<'_>, mut out: h2sketch::dense::MatMut<'_>| {
        out.copy_from(ulv.solve(&rhs.to_mat()).rf())
    };
    let x = woodbury_solve(solve_a, &p, &p, &b).expect("nonsingular update");

    // Reference: iterate on the updated operator directly.
    let upd = LowRankUpdate::symmetric(&hss, p.clone());
    let res = pcg(&upd, &Identity { n }, b.as_slice(), 2000, 1e-12);
    assert!(res.converged);
    let mut dmax = 0.0f64;
    for i in 0..n {
        dmax = dmax.max((x[(i, 0)] - res.x[i]).abs());
    }
    assert!(dmax < 1e-7, "woodbury vs iterative disagreement {dmax}");
}

/// The ULV factor of the *unshifted* covariance HSS also works (the kernel
/// matrix is SPD), demonstrating direct inversion of a compressed kernel.
#[test]
fn unshifted_covariance_ulv() {
    let n = 768;
    let pts: Vec<[f64; 3]> = (0..n).map(|i| [i as f64 / n as f64, 0.0, 0.0]).collect();
    let tree = Arc::new(ClusterTree::build(&pts, 32));
    let part = Arc::new(Partition::build(&tree, Admissibility::Weak));
    // Short correlation length keeps the condition number moderate.
    let km = KernelMatrix::new(ExponentialKernel { l: 0.05 }, tree.points.clone());
    let rt = Runtime::parallel();
    let cfg = SketchConfig {
        tol: 1e-11,
        initial_samples: 64,
        max_rank: 128,
        ..Default::default()
    };
    let (hss, _) = sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg);
    let ulv = UlvFactor::new(&hss).expect("SPD kernel HSS");
    let b = gaussian_mat(n, 1, 706);
    let x = ulv.solve(&b);
    let mut r = hss.apply_permuted_mat(&x);
    r.axpy(-1.0, &b);
    assert!(
        r.norm_fro() / b.norm_fro() < 1e-9,
        "residual {}",
        r.norm_fro() / b.norm_fro()
    );
}

/// Unsymmetric H2 persistence: bitwise roundtrip through the binary format.
#[test]
fn unsym_io_roundtrip() {
    let n = 600;
    let pts = uniform_cube(n, 707);
    let tree = Arc::new(ClusterTree::build(&pts, 16));
    let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
    let km = UnsymKernelMatrix::new(ConvectionKernel::default(), tree.points.clone());
    let rt = Runtime::parallel();
    let cfg = SketchConfig {
        tol: 1e-6,
        initial_samples: 48,
        ..Default::default()
    };
    let (h2, _) = sketch_construct_unsym(&km, &km, tree, part, &rt, &cfg);

    let bytes = h2.to_bytes();
    let back = h2sketch::matrix::H2MatrixUnsym::from_bytes(&bytes).unwrap();
    back.validate().unwrap();
    let x = gaussian_mat(n, 2, 708);
    let y1 = h2.apply_permuted_mat(&x);
    let y2 = back.apply_permuted_mat(&x);
    let mut d = y1;
    d.axpy(-1.0, &y2);
    assert_eq!(
        d.norm_max(),
        0.0,
        "loaded unsym matvec must be bitwise identical"
    );
    let t1 = h2.apply_transpose_permuted_mat(&x);
    let t2 = back.apply_transpose_permuted_mat(&x);
    let mut dt = t1;
    dt.axpy(-1.0, &t2);
    assert_eq!(dt.norm_max(), 0.0);
    // Garbage rejection.
    assert!(h2sketch::matrix::H2MatrixUnsym::from_bytes(&bytes[..50]).is_err());
    assert!(h2sketch::matrix::H2MatrixUnsym::from_bytes(b"H2SKgarbage").is_err());
}
