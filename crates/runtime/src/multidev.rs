//! Multi-device (multi-GPU) execution model for the batched construction.
//!
//! The paper's §IV.B sketches the multi-GPU extension of Algorithm 1: the
//! per-level batch count divides across devices, no batched operation needs
//! inter-device communication *except* `batchedBSRGemm` (which must fetch
//! the input vectors `Ω_b` of off-device column partners) and the child
//! stacking of line 24 (children resident on two devices gathered into one
//! parent). This module turns those observations into a quantitative model:
//! given the level structure of a concrete construction (node sizes, BSR
//! adjacency, ranks, sample count), it computes per-device compute costs,
//! cross-device traffic, kernel-launch counts and a makespan estimate for
//! any device count.
//!
//! Nodes of a level are assigned to devices in contiguous chunks — the
//! level-contiguous storage layout of §IV.A makes this the natural
//! decomposition, and it keeps siblings (merged at line 24) on the same
//! device except at chunk boundaries.

use crate::shard::{PipelineMode, Transfer, TransferKind};
use h2_dense::Precision;

/// Combine one level's three schedule terms — busiest device's compute,
/// link time, per-device launch overhead — under an execution discipline.
/// This is the *same* composition `h2_sched`'s `ExecReport::epoch_makespan`
/// applies to measured counters: serialized for a synchronous schedule
/// (every copy and kernel-boundary barrier is exposed), the max of the
/// three for a pipelined one (prefetched transfers overlap compute, and
/// job-level dependency chaining lets the host enqueue kernel *k+1* while
/// kernel *k* drains, hiding launch overhead too).
#[inline]
pub fn combine_terms(mode: PipelineMode, compute_max: f64, comm: f64, launch: f64) -> f64 {
    match mode {
        PipelineMode::Synchronous => compute_max + comm + launch,
        PipelineMode::Pipelined => compute_max.max(comm).max(launch),
    }
}

/// The work/traffic formulas shared by the closed-form simulator and the
/// sharded executor's accounting ([`crate::ops`], [`crate::bsr`],
/// `h2_sched`). One definition per kernel, so "measured totals equal
/// predicted totals" is structural rather than a comment-level promise.
pub mod cost {
    use h2_dense::Precision;

    /// Convergence-QR flops for an `m × d` sample block (lines 11/29).
    pub fn qr_flops(m: usize, d: usize) -> f64 {
        2.0 * m as f64 * d as f64 * d as f64
    }

    /// Batched row-ID flops for an `m × d` sample block (lines 16/34).
    pub fn id_flops(m: usize, d: usize) -> f64 {
        4.0 * m as f64 * d as f64 * m.min(d) as f64
    }

    /// Upsweep-GEMM flops: compress `m × d` inputs by an `m × k` basis
    /// (lines 18/36).
    pub fn upsweep_flops(m: usize, k: usize, d: usize) -> f64 {
        2.0 * m as f64 * k as f64 * d as f64
    }

    /// `batchedBSRGemm` flops for one `rows × partner_rows` block against a
    /// width-`d` sample batch (lines 9/26).
    pub fn bsr_flops(rows: usize, partner_rows: usize, d: usize) -> f64 {
        2.0 * rows as f64 * partner_rows as f64 * d as f64
    }

    /// `batchedGen` entry evaluations of an `r × c` block (flop-equivalents
    /// are `DeviceModel::entry_cost` per entry).
    pub fn gen_entries(r: usize, c: usize) -> f64 {
        (r * c) as f64
    }

    /// Bytes of one fetched `rows × d` f64 block (an Ω/Ψ partner fetch, or
    /// one half of a sibling merge). The f64 specialization of
    /// [`fetch_bytes_p`], kept for the historical call sites.
    pub fn fetch_bytes(rows: usize, d: usize) -> u64 {
        fetch_bytes_p(rows, d, Precision::F64)
    }

    /// Bytes of one fetched `rows × d` block at wire precision `prec` —
    /// the element width is the only thing the precision tier changes in
    /// the transfer model, so every byte formula is linear in it.
    pub fn fetch_bytes_p(rows: usize, d: usize, prec: Precision) -> u64 {
        (rows * d * prec.bytes()) as u64
    }

    /// Bytes of a line-24 boundary sibling merge: the moved child's samples
    /// *and* inputs — twice [`fetch_bytes`] (the executor records the two
    /// halves as separate `stack_children` transfers).
    pub fn merge_bytes(rows: usize, d: usize) -> u64 {
        merge_bytes_p(rows, d, Precision::F64)
    }

    /// [`merge_bytes`] at wire precision `prec`.
    pub fn merge_bytes_p(rows: usize, d: usize, prec: Precision) -> u64 {
        2 * fetch_bytes_p(rows, d, prec)
    }

    // ---- solver-sweep formulas (batched ULV elimination and the
    // triangular solve sweeps; shared by `simulate_solve`, the batched
    // primitives in `crate::solve_ops`, and `h2_sched`'s sharded sweep) ----

    /// LU factorization flops of an `n × n` pivot block (`2n³/3`).
    pub fn lu_flops(n: usize) -> f64 {
        2.0 / 3.0 * (n as f64).powi(3)
    }

    /// Triangular-solve flops: one `n × n` triangle against `d` columns.
    pub fn trsm_flops(n: usize, d: usize) -> f64 {
        (n * n * d) as f64
    }

    /// LU solve flops (row pivots are free; two triangular solves).
    pub fn lu_solve_flops(n: usize, d: usize) -> f64 {
        2.0 * trsm_flops(n, d)
    }

    /// Flops of applying `t` Householder reflectors (length ≤ `m`) to an
    /// `m × d` block — the ULV rotation `Qᵀ B` / un-rotation `Q B`.
    pub fn qr_apply_flops(m: usize, t: usize, d: usize) -> f64 {
        4.0 * (m * t * d) as f64
    }

    /// Plain GEMM flops, `(m × k) · (k × n)`.
    pub fn gemm_flops(m: usize, k: usize, n: usize) -> f64 {
        2.0 * (m * k * n) as f64
    }
}

/// Hardware parameters of the modeled device fabric.
#[derive(Clone, Copy, Debug)]
pub struct DeviceModel {
    /// Sustained FLOP rate of one device (flops/s).
    pub flops_per_sec: f64,
    /// Inter-device link bandwidth (bytes/s).
    pub link_bandwidth: f64,
    /// Per-message link latency (s).
    pub link_latency: f64,
    /// Kernel launch overhead (s per launch).
    pub launch_overhead: f64,
    /// Cost of evaluating one matrix entry, in flop-equivalents
    /// (`batchedGen` per-entry work: a kernel evaluation).
    pub entry_cost: f64,
}

impl Default for DeviceModel {
    /// Loosely A100-flavored defaults: 10 TF/s sustained f64, 200 GB/s
    /// NVLink-class links, 5 µs latency, 5 µs launch overhead, 20 flops per
    /// kernel-entry evaluation.
    fn default() -> Self {
        DeviceModel {
            flops_per_sec: 1.0e13,
            link_bandwidth: 2.0e11,
            link_latency: 5.0e-6,
            launch_overhead: 5.0e-6,
            entry_cost: 20.0,
        }
    }
}

/// Execution structure of one processed level of Algorithm 1, in the form
/// the simulator consumes (extracted from a constructed H2 matrix by
/// `h2_core::multidev::level_specs`).
///
/// Two node populations appear at inner levels: the **BSR population**
/// (the *children*, whose samples are subtracted against coupling blocks,
/// lines 26-28) and the **ID population** (the level's own nodes, whose
/// stacked samples are skeletonized, line 34). At the leaf level the two
/// coincide.
#[derive(Clone, Debug, Default)]
pub struct LevelSpec {
    /// BSR population: per row-node, rows of its local sample block
    /// (cluster size at the leaf level; node rank at inner levels).
    pub rows: Vec<usize>,
    /// BSR adjacency of the subtraction: per row-node, local indices of its
    /// column partners in the same population.
    pub adj: Vec<Vec<usize>>,
    /// Per column-partner node (same local indexing as `adj` targets): rows
    /// of its input-vector block `Ω_b`.
    pub col_rows: Vec<usize>,
    /// `batchedGen` blocks issued at this level: `(rows, cols)` dimensions.
    /// For an unsymmetric instance this holds every *ordered* pair (the two
    /// orientations are disjoint entry sets); both streams' generation work
    /// is therefore covered by this one list.
    pub gen_blocks: Vec<(usize, usize)>,
    /// ID population: per node processed at this level, rows of the stacked
    /// sample block fed to the QR convergence test and the row ID.
    pub id_rows: Vec<usize>,
    /// Post-ID rank per ID-population node.
    pub ranks: Vec<usize>,
    /// Pairs of BSR-population local indices merged into one ID-population
    /// node (line 24). Empty at the leaf level.
    pub merges: Vec<(usize, usize)>,
    /// Column-stream populations of the unsymmetric two-stream engine
    /// (`Z = Kᵀ Ψ`): `None` for the symmetric one-stream instance. The
    /// stream shares the level's `adj` and `merges` structure (the block
    /// partition is symmetric as a pattern) but carries its own sizes and
    /// ranks.
    pub col_stream: Option<StreamSpec>,
}

/// Per-side kernel populations of one additional sketch stream at a level
/// (the column stream of the unsymmetric engine). Structure (`adj`,
/// `merges`) is shared with the owning [`LevelSpec`].
#[derive(Clone, Debug, Default)]
pub struct StreamSpec {
    /// BSR population: per node, rows of its local `Z`/`Ψ` block.
    pub rows: Vec<usize>,
    /// ID population: rows of the stacked sample block per processed node.
    pub id_rows: Vec<usize>,
    /// Post-ID column rank per ID-population node.
    pub ranks: Vec<usize>,
}

/// Cost breakdown of one level at a given device count.
#[derive(Clone, Debug)]
pub struct LevelCost {
    /// Wall-clock estimate: max per-device compute + comm + launch overhead.
    pub makespan: f64,
    /// Total compute time summed over devices (s).
    pub compute_total: f64,
    /// Per-device compute seconds.
    pub compute_per_device: Vec<f64>,
    /// Cross-device traffic in bytes (Ω fetches + child gathers).
    pub comm_bytes: u64,
    /// Cross-device messages.
    pub comm_messages: usize,
    /// Kernel launches across all devices at this level.
    pub launches: usize,
}

/// Simulation result over all levels.
#[derive(Clone, Debug)]
pub struct SimReport {
    pub devices: usize,
    pub levels: Vec<LevelCost>,
    /// Sum of level makespans (levels are sequential in Algorithm 1).
    pub makespan: f64,
    pub total_comm_bytes: u64,
    pub total_launches: usize,
}

impl SimReport {
    /// Total compute time aggregated over devices and levels.
    pub fn compute_total(&self) -> f64 {
        self.levels.iter().map(|l| l.compute_total).sum()
    }

    /// Parallel efficiency relative to an ideal single device:
    /// `T_compute / (devices · makespan)`.
    pub fn efficiency(&self) -> f64 {
        if self.makespan == 0.0 {
            return 1.0;
        }
        self.compute_total() / (self.devices as f64 * self.makespan)
    }
}

/// Per-stream cost accumulation for one level: the BSR subtraction with its
/// deduplicated off-device Ω fetches, the node-local QR/ID/upsweep chain
/// over the ID population (the upsweep GEMM is skipped at the topmost
/// level, which has no parent), and the line-24 boundary sibling merges.
#[allow(clippy::too_many_arguments)]
fn stream_cost(
    rows: &[usize],
    adj: &[Vec<usize>],
    col_rows: &[usize],
    id_rows: &[usize],
    ranks: &[usize],
    merges: &[(usize, usize)],
    d_samples: usize,
    devices: usize,
    model: &DeviceModel,
    is_top: bool,
    wire: Precision,
    compute: &mut [f64],
    comm_bytes: &mut u64,
    comm_messages: &mut usize,
) {
    let n = rows.len();

    // batchedBSRGemm: 2·m_s·m_b·d flops per block; fetch Ω_b when the
    // partner lives on another device (once per (device, partner)).
    let mut fetched: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
    for (i, partners) in adj.iter().enumerate() {
        let dev = owner(i, n, devices);
        for &b in partners {
            let mb = col_rows.get(b).copied().unwrap_or(0);
            compute[dev] += cost::bsr_flops(rows[i], mb, d_samples) / model.flops_per_sec;
            let dev_b = owner(b, col_rows.len().max(n), devices);
            if dev_b != dev && fetched.insert((dev, b)) {
                *comm_bytes += cost::fetch_bytes_p(mb, d_samples, wire);
                *comm_messages += 1;
            }
        }
    }

    // Convergence QR + row ID + upsweep GEMM (skipped at the top), all
    // node-local, over the ID population.
    let n_id = id_rows.len();
    for i in 0..n_id {
        let m = id_rows[i];
        let k = if is_top {
            0
        } else {
            ranks.get(i).copied().unwrap_or(0)
        };
        let dev = owner(i, n_id, devices);
        compute[dev] += (cost::qr_flops(m, d_samples)
            + cost::id_flops(m, d_samples)
            + cost::upsweep_flops(m, k, d_samples))
            / model.flops_per_sec;
    }

    // Line-24 gather: a merge whose children live on different devices
    // moves one child's samples + inputs (rows × d × 2 × 8B).
    for &(a, b) in merges {
        let (da, db) = (owner(a, n, devices), owner(b, n, devices));
        if da != db {
            let moved = rows.get(b).copied().unwrap_or(0);
            *comm_bytes += cost::merge_bytes_p(moved, d_samples, wire);
            *comm_messages += 1;
        }
    }
}

/// Executor-granularity enumeration of one stream's cross-device
/// transfers: the same dedup/owner/byte logic as [`stream_cost`], but
/// emitting one [`Transfer`] descriptor per copy the fabric actually
/// issues instead of accumulating totals. Line-24 merges emit **two**
/// descriptors (the straddling sibling's samples and its inputs are
/// stacked by separate `stack_children` calls), matching the executor's
/// record stream where the simulator folds both into one
/// `merge_bytes_p` message.
#[allow(clippy::too_many_arguments)]
fn stream_census(
    rows: &[usize],
    adj: &[Vec<usize>],
    col_rows: &[usize],
    merges: &[(usize, usize)],
    d_samples: usize,
    devices: usize,
    wire: Precision,
    out: &mut Vec<Transfer>,
) {
    let n = rows.len();
    let mut fetched: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
    for (i, partners) in adj.iter().enumerate() {
        let dev = owner(i, n, devices);
        for &b in partners {
            let mb = col_rows.get(b).copied().unwrap_or(0);
            let dev_b = owner(b, col_rows.len().max(n), devices);
            if dev_b != dev && fetched.insert((dev, b)) {
                out.push(Transfer {
                    src: dev_b,
                    dst: dev,
                    bytes: cost::fetch_bytes_p(mb, d_samples, wire),
                    kind: TransferKind::OmegaFetch,
                    prec: wire,
                });
            }
        }
    }
    for &(a, b) in merges {
        let (da, db) = (owner(a, n, devices), owner(b, n, devices));
        if da != db {
            let moved = rows.get(b).copied().unwrap_or(0);
            let t = Transfer {
                src: db,
                dst: da,
                bytes: cost::fetch_bytes_p(moved, d_samples, wire),
                kind: TransferKind::ChildGather,
                prec: wire,
            };
            out.push(t);
            out.push(t);
        }
    }
}

/// Closed-form enumeration of every cross-device [`Transfer`] a
/// non-adaptive construction issues — the extended simulator's input for
/// predicting *faulted* byte totals. The multiset returned here equals the
/// executor's transfer record multiset exactly (same owner mapping, same
/// dedup, same byte formulas as [`stream_cost`], whose totals the
/// equivalence tests pin to the executor), so replaying a seeded
/// [`h2_fault::FaultPlan`] over it — fingerprint plus occurrence index per
/// descriptor — reproduces the executor's exact retry stream, and
/// therefore its retry bytes, without running anything.
pub fn transfer_census(
    levels: &[LevelSpec],
    d_samples: usize,
    devices: usize,
    wire: Precision,
) -> Vec<Transfer> {
    let mut out = Vec::new();
    for spec in levels {
        stream_census(
            &spec.rows,
            &spec.adj,
            &spec.col_rows,
            &spec.merges,
            d_samples,
            devices,
            wire,
            &mut out,
        );
        if let Some(cs) = &spec.col_stream {
            stream_census(
                &cs.rows,
                &spec.adj,
                &spec.rows,
                &spec.merges,
                d_samples,
                devices,
                wire,
                &mut out,
            );
        }
    }
    out
}

/// Contiguous-chunk owner of local node `i` among `n` nodes on `d` devices.
#[inline]
pub fn owner(i: usize, n: usize, d: usize) -> usize {
    if n == 0 || d <= 1 {
        return 0;
    }
    (i * d / n).min(d - 1)
}

/// Simulate the construction's batched execution on `devices` devices.
///
/// `d_samples` is the sample block width (paper: 256 initial). The per-level
/// costs follow Algorithm 1's kernel sequence: `batchedGen`,
/// `batchedBSRGemm` (the only op with Ω traffic), convergence QR,
/// `batchedID`, and the upsweep GEMM, plus the line-24 child gather.
///
/// ```
/// use h2_runtime::{simulate, DeviceModel, LevelSpec};
/// let leaf = LevelSpec {
///     rows: vec![64; 8],
///     adj: (0..8).map(|i| vec![i]).collect(),
///     col_rows: vec![64; 8],
///     gen_blocks: vec![(64, 64); 8],
///     id_rows: vec![64; 8],
///     ranks: vec![16; 8],
///     merges: vec![],
///     ..Default::default()
/// };
/// let rep = simulate(&[leaf], 128, 1, &DeviceModel::default());
/// assert_eq!(rep.total_comm_bytes, 0); // one device never communicates
/// assert!(rep.makespan > 0.0);
/// ```
pub fn simulate(
    levels: &[LevelSpec],
    d_samples: usize,
    devices: usize,
    model: &DeviceModel,
) -> SimReport {
    simulate_prec(levels, d_samples, devices, model, Precision::F64)
}

/// [`simulate`] at an explicit wire precision: every transfer byte count
/// (`Ω`/`Ψ` fetches, line-24 merges) scales by the element width while the
/// flop and launch model is untouched — arithmetic always accumulates in
/// f64, only the shipped representation narrows.
pub fn simulate_prec(
    levels: &[LevelSpec],
    d_samples: usize,
    devices: usize,
    model: &DeviceModel,
    wire: Precision,
) -> SimReport {
    simulate_prec_mode(
        levels,
        d_samples,
        devices,
        model,
        wire,
        PipelineMode::Synchronous,
    )
}

/// [`simulate_prec`] under an explicit execution discipline: the per-level
/// byte/flop/launch populations are identical (the trust contract's
/// equality invariants are mode-independent); only how the three schedule
/// terms combine into the level makespan changes — see [`combine_terms`].
pub fn simulate_prec_mode(
    levels: &[LevelSpec],
    d_samples: usize,
    devices: usize,
    model: &DeviceModel,
    wire: Precision,
    mode: PipelineMode,
) -> SimReport {
    assert!(devices > 0, "at least one device");
    let mut out_levels = Vec::with_capacity(levels.len());
    let mut makespan = 0.0;
    let mut total_comm = 0u64;
    let mut total_launches = 0usize;

    for (lvl, spec) in levels.iter().enumerate() {
        // The topmost processed level has no parent to sweep into: the
        // construction skips the shrink/compress GEMM there, so the model
        // does too.
        let is_top = lvl + 1 == levels.len();
        let n = spec.rows.len();
        let mut compute = vec![0.0_f64; devices];
        let mut comm_bytes = 0u64;
        let mut comm_messages = 0usize;

        // batchedGen: entry evaluation, no communication (generator is
        // device-resident, §IV.A). Blocks are distributed like their row
        // nodes; approximate with round-robin over devices.
        for (i, &(r, c)) in spec.gen_blocks.iter().enumerate() {
            let dev = if devices > 1 { i % devices } else { 0 };
            compute[dev] += cost::gen_entries(r, c) * model.entry_cost / model.flops_per_sec;
        }

        // Row stream: BSR subtraction, QR/ID/upsweep, boundary merges.
        stream_cost(
            &spec.rows,
            &spec.adj,
            &spec.col_rows,
            &spec.id_rows,
            &spec.ranks,
            &spec.merges,
            d_samples,
            devices,
            model,
            is_top,
            wire,
            &mut compute,
            &mut comm_bytes,
            &mut comm_messages,
        );

        // Column stream (unsymmetric two-stream engine): same structure,
        // its own sizes/ranks, its own Ψ traffic. Its partner inputs `Ψ_b`
        // were compressed by the *row* basis (`Ψ ← Uᵀ Ψ`), so their row
        // counts are the row-side ranks (`spec.rows`).
        if let Some(cs) = &spec.col_stream {
            stream_cost(
                &cs.rows,
                &spec.adj,
                &spec.rows,
                &cs.id_rows,
                &cs.ranks,
                &spec.merges,
                d_samples,
                devices,
                model,
                is_top,
                wire,
                &mut compute,
                &mut comm_bytes,
                &mut comm_messages,
            );
        }

        // Launches: each device launches each of the ~6 per-level batched
        // kernels over its chunk, plus one BSR launch per Csp slot (§IV.A),
        // once per stream.
        let csp = spec.adj.iter().map(|a| a.len()).max().unwrap_or(0);
        let nstreams = 1 + spec.col_stream.is_some() as usize;
        let active = devices.min(n.max(1));
        let launches = active * (6 + csp) * nstreams;

        let compute_max = compute.iter().cloned().fold(0.0, f64::max);
        let comm_time =
            comm_bytes as f64 / model.link_bandwidth + comm_messages as f64 * model.link_latency;
        let level_makespan = combine_terms(
            mode,
            compute_max,
            comm_time,
            launches as f64 / active.max(1) as f64 * model.launch_overhead,
        );

        makespan += level_makespan;
        total_comm += comm_bytes;
        total_launches += launches;
        out_levels.push(LevelCost {
            makespan: level_makespan,
            compute_total: compute.iter().sum(),
            compute_per_device: compute,
            comm_bytes,
            comm_messages,
            launches,
        });
    }

    SimReport {
        devices,
        levels: out_levels,
        makespan,
        total_comm_bytes: total_comm,
        total_launches,
    }
}

/// One elimination level of a ULV solve sweep, in the form the solver
/// simulator consumes (extracted from a factorization by
/// `h2_solve::UlvFactor::solve_spec`). Nodes are listed in tree level
/// order, the same order the sharded executor chunks by
/// [`owner`]/[`crate::chunk_bounds`].
#[derive(Clone, Debug, Default)]
pub struct SolveLevel {
    /// Per node: reduced diagonal block size `m` (= retained + eliminated).
    pub m: Vec<usize>,
    /// Per node: retained (skeleton) size `k`; the forward sweep passes a
    /// `k × nrhs` block up, the backward sweep distributes one back down.
    pub k: Vec<usize>,
    /// Per node: row-side Householder reflector count (the forward-sweep
    /// rotation cost `Qᵀ b`).
    pub t_row: Vec<usize>,
    /// Per node: column-side reflector count (the backward-sweep
    /// un-rotation cost `P x̃`).
    pub t_col: Vec<usize>,
    /// Per parent at the level above, in *its* level order: the local
    /// indices of the two children whose retained blocks it stacks.
    pub merges: Vec<(usize, usize)>,
}

/// Level structure of a ULV triangular solve sweep (leaf level first, root
/// excluded), plus the dense root system and right-hand-side width.
#[derive(Clone, Debug, Default)]
pub struct SolveSpec {
    pub levels: Vec<SolveLevel>,
    pub root_size: usize,
    pub nrhs: usize,
}

/// Simulate the ULV solve sweep (forward eliminate, root solve, backward
/// substitute) on `devices` devices — the solver analogue of [`simulate`].
///
/// Per forward level, each node costs the rotation `Qᵀ b`
/// ([`cost::qr_apply_flops`]), the pivot-block solve
/// ([`cost::lu_solve_flops`] on the `m − k` eliminated rows) and the
/// retained-block update ([`cost::gemm_flops`]); the pass-up moves a
/// child's `k × nrhs` block to its parent's device when the contiguous
/// chunk decompositions of the two levels split the pair. The backward
/// levels mirror this with the partial-solution distribution in the
/// opposite direction; the root is one dense LU solve on device 0. The
/// sharded executor (`h2_sched::shard_ulv_solve`) records exactly these
/// transfers and flop formulas, so measured byte totals must equal this
/// model's — the solver extension of the construction/matvec equivalence.
pub fn simulate_solve(spec: &SolveSpec, devices: usize, model: &DeviceModel) -> SimReport {
    simulate_solve_prec(spec, devices, model, Precision::F64)
}

/// [`simulate_solve`] at an explicit wire precision: the pass-up /
/// distribution blocks ship at `wire` width, the flop model is unchanged.
pub fn simulate_solve_prec(
    spec: &SolveSpec,
    devices: usize,
    model: &DeviceModel,
    wire: Precision,
) -> SimReport {
    simulate_solve_prec_mode(spec, devices, model, wire, PipelineMode::Synchronous)
}

/// [`simulate_solve_prec`] under an explicit execution discipline — the
/// solver analogue of [`simulate_prec_mode`]: populations unchanged, level
/// term composition per [`combine_terms`].
pub fn simulate_solve_prec_mode(
    spec: &SolveSpec,
    devices: usize,
    model: &DeviceModel,
    wire: Precision,
    mode: PipelineMode,
) -> SimReport {
    assert!(devices > 0, "at least one device");
    let d = spec.nrhs;
    let mut out_levels: Vec<LevelCost> = Vec::new();
    let push_level = |compute: Vec<f64>,
                      comm_bytes: u64,
                      comm_messages: usize,
                      launches: usize,
                      out: &mut Vec<LevelCost>| {
        let active = compute.iter().filter(|&&c| c > 0.0).count().max(1);
        let compute_max = compute.iter().cloned().fold(0.0, f64::max);
        let comm_time =
            comm_bytes as f64 / model.link_bandwidth + comm_messages as f64 * model.link_latency;
        let makespan = combine_terms(
            mode,
            compute_max,
            comm_time,
            launches as f64 / active as f64 * model.launch_overhead,
        );
        out.push(LevelCost {
            makespan,
            compute_total: compute.iter().sum(),
            compute_per_device: compute,
            comm_bytes,
            comm_messages,
            launches,
        });
    };

    // Pass-up / distribution traffic of one level: a child whose owner
    // differs from its parent's moves its retained k × nrhs block.
    let level_comm = |li: usize| -> (u64, usize) {
        let lvl = &spec.levels[li];
        let nl = lvl.m.len();
        let np = lvl.merges.len();
        let (mut bytes, mut msgs) = (0u64, 0usize);
        for (j, &(a, b)) in lvl.merges.iter().enumerate() {
            let dev_p = owner(j, np, devices);
            for c in [a, b] {
                let kc = lvl.k.get(c).copied().unwrap_or(0);
                if kc > 0 && owner(c, nl, devices) != dev_p {
                    bytes += cost::fetch_bytes_p(kc, d, wire);
                    msgs += 1;
                }
            }
        }
        (bytes, msgs)
    };

    // ---- forward sweep, leaf level first ----
    for (li, lvl) in spec.levels.iter().enumerate() {
        let nl = lvl.m.len();
        let mut compute = vec![0.0_f64; devices];
        for i in 0..nl {
            let (m, k) = (lvl.m[i], lvl.k[i]);
            let e = m - k;
            compute[owner(i, nl, devices)] += (cost::qr_apply_flops(m, lvl.t_row[i], d)
                + cost::lu_solve_flops(e, d)
                + cost::gemm_flops(k, e, d))
                / model.flops_per_sec;
        }
        let (bytes, msgs) = level_comm(li);
        push_level(
            compute,
            bytes,
            msgs,
            devices.min(nl.max(1)),
            &mut out_levels,
        );
    }

    // ---- root solve on device 0 ----
    {
        let mut compute = vec![0.0_f64; devices];
        compute[0] = cost::lu_solve_flops(spec.root_size, d) / model.flops_per_sec;
        push_level(compute, 0, 0, 1, &mut out_levels);
    }

    // ---- backward sweep, root level first ----
    for (li, lvl) in spec.levels.iter().enumerate().rev() {
        let nl = lvl.m.len();
        let mut compute = vec![0.0_f64; devices];
        for i in 0..nl {
            let (m, k) = (lvl.m[i], lvl.k[i]);
            let e = m - k;
            compute[owner(i, nl, devices)] += (cost::gemm_flops(e, k, d)
                + cost::lu_solve_flops(e, d)
                + cost::qr_apply_flops(m, lvl.t_col[i], d))
                / model.flops_per_sec;
        }
        let (bytes, msgs) = level_comm(li);
        push_level(
            compute,
            bytes,
            msgs,
            devices.min(nl.max(1)),
            &mut out_levels,
        );
    }

    let makespan = out_levels.iter().map(|l| l.makespan).sum();
    let total_comm_bytes = out_levels.iter().map(|l| l.comm_bytes).sum();
    let total_launches = out_levels.iter().map(|l| l.launches).sum();
    SimReport {
        devices,
        levels: out_levels,
        makespan,
        total_comm_bytes,
        total_launches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_levels() -> Vec<LevelSpec> {
        // Leaf level: 8 nodes of 64 rows, ring adjacency, rank 16; the BSR
        // and ID populations coincide.
        let n = 8;
        let leaf = LevelSpec {
            rows: vec![64; n],
            adj: (0..n)
                .map(|i| vec![i, (i + 1) % n, (i + n - 1) % n])
                .collect(),
            col_rows: vec![64; n],
            gen_blocks: (0..n).map(|_| (64, 64)).collect(),
            id_rows: vec![64; n],
            ranks: vec![16; n],
            merges: vec![],
            ..Default::default()
        };
        // Inner level: BSR over the 8 children (rank 16 each), merged in
        // sibling pairs into 4 ID nodes of 32 stacked rows.
        let inner = LevelSpec {
            rows: vec![16; n],
            adj: (0..n).map(|i| vec![(i + 2) % n]).collect(),
            col_rows: vec![16; n],
            gen_blocks: (0..4).map(|_| (16, 16)).collect(),
            id_rows: vec![32; 4],
            ranks: vec![12; 4],
            merges: (0..n / 2).map(|p| (2 * p, 2 * p + 1)).collect(),
            ..Default::default()
        };
        vec![leaf, inner]
    }

    #[test]
    fn owner_is_contiguous_and_balanced() {
        let n = 10;
        let d = 3;
        let owners: Vec<usize> = (0..n).map(|i| owner(i, n, d)).collect();
        // Non-decreasing.
        assert!(owners.windows(2).all(|w| w[0] <= w[1]));
        // All devices used.
        assert_eq!(owners.iter().cloned().max().unwrap(), d - 1);
        // Balanced within 1.
        let counts: Vec<usize> = (0..d)
            .map(|dev| owners.iter().filter(|&&o| o == dev).count())
            .collect();
        assert!(counts.iter().max().unwrap() - counts.iter().min().unwrap() <= 1);
    }

    #[test]
    fn single_device_has_no_communication() {
        let rep = simulate(&toy_levels(), 128, 1, &DeviceModel::default());
        assert_eq!(rep.total_comm_bytes, 0);
        assert!(rep.makespan > 0.0);
    }

    #[test]
    fn multi_device_reduces_makespan_on_large_levels() {
        // A wide leaf level with enough work for parallelism to win.
        let n = 256;
        let level = LevelSpec {
            rows: vec![256; n],
            adj: (0..n).map(|i| vec![i]).collect(),
            col_rows: vec![256; n],
            gen_blocks: (0..n).map(|_| (256, 256)).collect(),
            id_rows: vec![256; n],
            ranks: vec![32; n],
            merges: vec![],
            ..Default::default()
        };
        let m = DeviceModel::default();
        let r1 = simulate(std::slice::from_ref(&level), 256, 1, &m);
        let r4 = simulate(&[level], 256, 4, &m);
        assert!(
            r4.makespan < r1.makespan / 2.0,
            "4 devices {} vs 1 device {}",
            r4.makespan,
            r1.makespan
        );
    }

    #[test]
    fn communication_grows_with_devices() {
        let levels = toy_levels();
        let m = DeviceModel::default();
        let c2 = simulate(&levels, 128, 2, &m).total_comm_bytes;
        let c8 = simulate(&levels, 128, 8, &m).total_comm_bytes;
        assert!(c2 > 0, "cross-device partners must appear at D=2");
        assert!(c8 >= c2, "more devices cannot reduce traffic: {c2} -> {c8}");
    }

    #[test]
    fn compute_total_is_device_invariant() {
        let levels = toy_levels();
        let m = DeviceModel::default();
        let t1 = simulate(&levels, 64, 1, &m).compute_total();
        let t4 = simulate(&levels, 64, 4, &m).compute_total();
        assert!((t1 - t4).abs() < 1e-12 * t1.max(1e-30), "work is conserved");
    }

    #[test]
    fn efficiency_bounded_by_one() {
        let levels = toy_levels();
        let m = DeviceModel::default();
        for d in [1, 2, 4, 8] {
            let e = simulate(&levels, 64, d, &m).efficiency();
            assert!(e > 0.0 && e <= 1.0 + 1e-9, "efficiency {e} at D={d}");
        }
    }

    #[test]
    fn launches_scale_with_active_devices_not_nodes() {
        let n = 1024;
        let level = LevelSpec {
            rows: vec![64; n],
            adj: (0..n).map(|i| vec![i]).collect(),
            col_rows: vec![64; n],
            gen_blocks: vec![],
            id_rows: vec![64; n],
            ranks: vec![8; n],
            merges: vec![],
            ..Default::default()
        };
        let rep = simulate(&[level], 64, 4, &DeviceModel::default());
        assert!(
            rep.total_launches < 64,
            "launches must not scale with node count"
        );
    }

    #[test]
    fn empty_levels_cost_nothing() {
        let rep = simulate(&[], 64, 4, &DeviceModel::default());
        assert_eq!(rep.makespan, 0.0);
        assert_eq!(rep.total_comm_bytes, 0);
    }

    fn toy_solve_spec() -> SolveSpec {
        // 8 leaves of 64 rows retaining 16, merged pairwise into 4 nodes of
        // 32 retaining 8, merged into 2 of 16 retaining 4; root 8.
        SolveSpec {
            levels: vec![
                SolveLevel {
                    m: vec![16; 2],
                    k: vec![4; 2],
                    t_row: vec![16; 2],
                    t_col: vec![16; 2],
                    merges: vec![(0, 1)],
                },
                SolveLevel {
                    m: vec![32; 4],
                    k: vec![8; 4],
                    t_row: vec![32; 4],
                    t_col: vec![32; 4],
                    merges: vec![(0, 1), (2, 3)],
                },
                SolveLevel {
                    m: vec![64; 8],
                    k: vec![16; 8],
                    t_row: vec![64; 8],
                    t_col: vec![64; 8],
                    merges: vec![(0, 1), (2, 3), (4, 5), (6, 7)],
                },
            ]
            .into_iter()
            .rev()
            .collect(),
            root_size: 8,
            nrhs: 4,
        }
    }

    #[test]
    fn solve_sim_single_device_no_comm_and_work_conserved() {
        let spec = toy_solve_spec();
        let m = DeviceModel::default();
        let r1 = simulate_solve(&spec, 1, &m);
        assert_eq!(r1.total_comm_bytes, 0);
        assert!(r1.makespan > 0.0);
        // Forward levels + root + backward levels.
        assert_eq!(r1.levels.len(), 2 * spec.levels.len() + 1);
        let r4 = simulate_solve(&spec, 4, &m);
        assert!(
            (r1.compute_total() - r4.compute_total()).abs() < 1e-12 * r1.compute_total(),
            "solve work is conserved across device counts"
        );
    }

    #[test]
    fn solve_sim_comm_grows_with_devices() {
        let spec = toy_solve_spec();
        let m = DeviceModel::default();
        let c2 = simulate_solve(&spec, 2, &m).total_comm_bytes;
        let c8 = simulate_solve(&spec, 8, &m).total_comm_bytes;
        assert!(c2 > 0, "split sibling pairs must move retained blocks");
        assert!(c8 >= c2);
        // Forward and backward sweeps mirror each other's traffic.
        let r = simulate_solve(&spec, 4, &m);
        let nf = spec.levels.len();
        let fwd: u64 = r.levels[..nf].iter().map(|l| l.comm_bytes).sum();
        let bwd: u64 = r.levels[nf + 1..].iter().map(|l| l.comm_bytes).sum();
        assert_eq!(fwd, bwd);
    }

    #[test]
    fn latency_dominates_tiny_levels() {
        // A level with 2 tiny nodes on 8 devices: makespan should be close
        // to pure overhead (launch + latency), not compute.
        let level = LevelSpec {
            rows: vec![4, 4],
            adj: vec![vec![1], vec![0]],
            col_rows: vec![4, 4],
            gen_blocks: vec![(4, 4)],
            id_rows: vec![8],
            ranks: vec![2],
            merges: vec![(0, 1)],
            ..Default::default()
        };
        let m = DeviceModel::default();
        let rep = simulate(&[level], 16, 8, &m);
        let overhead = m.launch_overhead + m.link_latency;
        assert!(rep.makespan >= overhead, "tiny levels are overhead-bound");
    }
}
