//! Offline drop-in subset of the `rayon` parallel-iterator API.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the small slice of rayon it actually uses. Parallel
//! "iterators" here are eager: every adapter materializes its input, and
//! `map`/`filter`/`for_each`/... fan the per-item work out over scoped OS
//! threads in contiguous, order-preserving chunks. Semantics match rayon
//! for the patterns used in this repository (deterministic order-preserving
//! `map`+`collect`, side-effecting `for_each` over disjoint targets).

use std::thread;

/// Number of worker threads used for chunked execution.
pub fn current_num_threads() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParVec,
    };
}

pub mod iter {
    pub use crate::prelude::*;
}

/// An eagerly-materialized "parallel iterator": a vector of items whose
/// adapters execute their closures across scoped threads.
pub struct ParVec<T> {
    items: Vec<T>,
}

/// Apply `f` to every item across scoped threads, preserving order.
fn run_chunks<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 || n < 2 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let f = &f;
    thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::with_capacity(n);
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

impl<T: Send> ParVec<T> {
    pub fn map<R, F>(self, f: F) -> ParVec<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParVec {
            items: run_chunks(self.items, f),
        }
    }

    pub fn filter<F>(self, f: F) -> ParVec<T>
    where
        F: Fn(&T) -> bool + Sync,
    {
        let kept = run_chunks(self.items, |t| if f(&t) { Some(t) } else { None });
        ParVec {
            items: kept.into_iter().flatten().collect(),
        }
    }

    pub fn filter_map<R, F>(self, f: F) -> ParVec<R>
    where
        R: Send,
        F: Fn(T) -> Option<R> + Sync,
    {
        let kept = run_chunks(self.items, f);
        ParVec {
            items: kept.into_iter().flatten().collect(),
        }
    }

    pub fn flat_map<R, I, F>(self, f: F) -> ParVec<R>
    where
        R: Send,
        I: IntoIterator<Item = R> + Send,
        F: Fn(T) -> I + Sync,
    {
        let parts = run_chunks(self.items, |t| f(t).into_iter().collect::<Vec<R>>());
        ParVec {
            items: parts.into_iter().flatten().collect(),
        }
    }

    pub fn enumerate(self) -> ParVec<(usize, T)> {
        ParVec {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    pub fn zip<U: Send>(self, other: ParVec<U>) -> ParVec<(T, U)> {
        ParVec {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        run_chunks(self.items, f);
    }

    pub fn any<F>(self, f: F) -> bool
    where
        F: Fn(T) -> bool + Sync,
    {
        run_chunks(self.items, f).into_iter().any(|b| b)
    }

    pub fn all<F>(self, f: F) -> bool
    where
        F: Fn(T) -> bool + Sync,
    {
        run_chunks(self.items, f).into_iter().all(|b| b)
    }

    pub fn count(self) -> usize {
        self.items.len()
    }

    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T>,
    {
        self.items.into_iter().sum()
    }

    pub fn reduce<ID, F>(self, identity: ID, op: F) -> T
    where
        ID: Fn() -> T + Sync,
        F: Fn(T, T) -> T + Sync,
    {
        self.items.into_iter().fold(identity(), op)
    }

    pub fn max_by<F>(self, cmp: F) -> Option<T>
    where
        F: Fn(&T, &T) -> std::cmp::Ordering,
    {
        self.items.into_iter().max_by(cmp)
    }

    pub fn min_by<F>(self, cmp: F) -> Option<T>
    where
        F: Fn(&T, &T) -> std::cmp::Ordering,
    {
        self.items.into_iter().min_by(cmp)
    }

    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Owned conversion into a [`ParVec`], mirroring rayon's
/// `IntoParallelIterator`.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParVec<Self::Item>;
}

impl<I> IntoParallelIterator for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;
    fn into_par_iter(self) -> ParVec<I::Item> {
        ParVec {
            items: self.into_iter().collect(),
        }
    }
}

/// Borrowing conversion, mirroring rayon's `IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    type Item: Send;
    fn par_iter(&'data self) -> ParVec<Self::Item>;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefIterator<'data> for I
where
    &'data I: IntoIterator,
    <&'data I as IntoIterator>::Item: Send,
{
    type Item = <&'data I as IntoIterator>::Item;
    fn par_iter(&'data self) -> ParVec<Self::Item> {
        ParVec {
            items: <&'data I as IntoIterator>::into_iter(self).collect(),
        }
    }
}

/// Mutably-borrowing conversion, mirroring rayon's
/// `IntoParallelRefMutIterator`.
pub trait IntoParallelRefMutIterator<'data> {
    type Item: Send;
    fn par_iter_mut(&'data mut self) -> ParVec<Self::Item>;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefMutIterator<'data> for I
where
    &'data mut I: IntoIterator,
    <&'data mut I as IntoIterator>::Item: Send,
{
    type Item = <&'data mut I as IntoIterator>::Item;
    fn par_iter_mut(&'data mut self) -> ParVec<Self::Item> {
        ParVec {
            items: <&'data mut I as IntoIterator>::into_iter(self).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v[500], 1000);
        assert_eq!(v.len(), 1000);
    }

    #[test]
    fn filter_and_enumerate() {
        let v: Vec<(usize, i32)> = vec![1, -2, 3, -4, 5]
            .into_par_iter()
            .enumerate()
            .filter(|&(_, x)| x > 0)
            .collect();
        assert_eq!(v, vec![(0, 1), (2, 3), (4, 5)]);
    }

    #[test]
    fn for_each_disjoint_writes() {
        let mut out = vec![0usize; 64];
        out.par_iter_mut()
            .enumerate()
            .for_each(|(i, slot)| *slot = i * i);
        assert_eq!(out[7], 49);
    }

    #[test]
    fn any_and_zip() {
        let a = vec![1, 2, 3];
        let b = vec![30, 20, 10];
        let pairs: Vec<(i32, i32)> = a.par_iter().map(|&x| x).zip(b.into_par_iter()).collect();
        assert_eq!(pairs[2], (3, 10));
        assert!(pairs.par_iter().any(|&(x, _)| x == 2));
    }
}
