//! Memory-budgeted operator cache.
//!
//! A cached operator is the pair the service amortizes: the compressed
//! `H2Matrix` and its `UlvFactor`. Both carry their own `memory_bytes`
//! accounting, so the cache's eviction currency is exact resident bytes,
//! not an entry count. Eviction is least-recent-use under a byte budget:
//! admitting a new operator evicts the stalest entries until the new total
//! fits (an operator larger than the whole budget is still admitted alone —
//! refusing it would wedge every request for that key).

use h2_matrix::H2Matrix;
use h2_solve::UlvFactor;
use std::sync::Arc;

/// Cache key: which operator a request asks to solve with.
///
/// * `kernel` — the kernel family and its parameters, rendered to a
///   canonical string by the caller (e.g. `"exp3d:len=0.25"`);
/// * `geometry` — [`geometry_hash`] of the point set (bit-exact: two
///   geometries that differ in one ulp are different operators);
/// * `tol_bits` — the construction tolerance's IEEE bit pattern, so keys
///   are `Eq + Hash` without any float-comparison ambiguity.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpKey {
    pub kernel: String,
    pub geometry: u64,
    pub tol_bits: u64,
}

impl OpKey {
    /// Key for `kernel` over `points` at construction tolerance `tol`.
    pub fn new(kernel: &str, points: &[[f64; 3]], tol: f64) -> Self {
        OpKey {
            kernel: kernel.to_string(),
            geometry: geometry_hash(points),
            tol_bits: tol.to_bits(),
        }
    }

    /// Key from a precomputed geometry hash.
    pub fn from_hash(kernel: &str, geometry: u64, tol: f64) -> Self {
        OpKey {
            kernel: kernel.to_string(),
            geometry,
            tol_bits: tol.to_bits(),
        }
    }

    /// The construction tolerance the key encodes.
    pub fn tol(&self) -> f64 {
        f64::from_bits(self.tol_bits)
    }
}

/// FNV-1a over the exact bit patterns of the coordinates. Deterministic
/// across runs and platforms; any coordinate perturbation — even one ulp —
/// produces a different operator identity, which is the safe direction for
/// a cache fronting a direct factorization.
pub fn geometry_hash(points: &[[f64; 3]]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for p in points {
        for c in p {
            for b in c.to_bits().to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        }
    }
    h
}

/// The cached pair: compressed operator + its ULV factorization.
#[derive(Clone)]
pub struct CachedOperator {
    pub h2: Arc<H2Matrix>,
    pub ulv: Arc<UlvFactor>,
}

impl CachedOperator {
    /// Resident bytes of the pair — the cache's eviction currency.
    pub fn memory_bytes(&self) -> usize {
        self.h2.memory_bytes() + self.ulv.memory_bytes()
    }
}

struct Slot {
    key: OpKey,
    op: CachedOperator,
    bytes: usize,
    last_use: u64,
}

/// LRU operator cache under a byte budget.
pub struct OperatorCache {
    budget_bytes: usize,
    slots: Vec<Slot>,
    clock: u64,
    hits: usize,
    misses: usize,
    evictions: usize,
}

impl OperatorCache {
    pub fn new(budget_bytes: usize) -> Self {
        OperatorCache {
            budget_bytes,
            slots: Vec::new(),
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Current resident bytes across all slots.
    pub fn total_bytes(&self) -> usize {
        self.slots.iter().map(|s| s.bytes).sum()
    }

    pub fn hits(&self) -> usize {
        self.hits
    }

    pub fn misses(&self) -> usize {
        self.misses
    }

    pub fn evictions(&self) -> usize {
        self.evictions
    }

    /// Whether `key` is resident (no LRU touch, no hit/miss accounting).
    pub fn contains(&self, key: &OpKey) -> bool {
        self.slots.iter().any(|s| &s.key == key)
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &OpKey) -> Option<CachedOperator> {
        self.clock += 1;
        let clock = self.clock;
        if let Some(slot) = self.slots.iter_mut().find(|s| &s.key == key) {
            slot.last_use = clock;
            self.hits += 1;
            Some(slot.op.clone())
        } else {
            self.misses += 1;
            None
        }
    }

    /// Admit `op` under `key`, evicting least-recently-used slots until the
    /// budget holds. Replaces any existing slot for the same key. Returns
    /// the number of evictions this admission caused.
    pub fn insert(&mut self, key: OpKey, op: CachedOperator) -> usize {
        self.clock += 1;
        let bytes = op.memory_bytes();
        self.slots.retain(|s| s.key != key);
        let mut evicted = 0;
        while !self.slots.is_empty() && self.total_bytes() + bytes > self.budget_bytes {
            let victim = self
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_use)
                .map(|(i, _)| i)
                .expect("non-empty");
            self.slots.remove(victim);
            evicted += 1;
        }
        self.evictions += evicted;
        self.slots.push(Slot {
            key,
            op,
            bytes,
            last_use: self.clock,
        });
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_hash_is_bit_exact() {
        let pts: Vec<[f64; 3]> = vec![[0.0, 1.0, 2.0], [3.0, 4.0, 5.0]];
        let mut perturbed = pts.clone();
        perturbed[1][2] = f64::from_bits(perturbed[1][2].to_bits() + 1);
        assert_eq!(geometry_hash(&pts), geometry_hash(&pts));
        assert_ne!(geometry_hash(&pts), geometry_hash(&perturbed));
    }

    #[test]
    fn opkey_distinguishes_all_three_fields() {
        let pts = vec![[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]];
        let k = OpKey::new("exp", &pts, 1e-6);
        assert_ne!(k, OpKey::new("matern", &pts, 1e-6));
        assert_ne!(k, OpKey::new("exp", &pts, 1e-8));
        assert_ne!(k, OpKey::new("exp", &pts[..1], 1e-6));
        assert_eq!(k.tol(), 1e-6);
    }
}
