//! Fabric-sharded solver sweeps: the ULV forward/backward triangular
//! solves executed level by level over contiguous node chunks, plus the
//! [`FabricOp`] adapter that routes Krylov matvecs through
//! [`crate::shard_matvec`].
//!
//! Phase mapping (the solver analogue of the matvec's §IV dataflow):
//!
//! * **forward sweep** (upsweep-ordered eliminate, leaf level first) —
//!   each level's nodes shard by [`h2_runtime::owner`]; a parent whose
//!   child lives across a chunk boundary reads that child's retained
//!   `k × nrhs` block through a [`TransferKind::ChildGather`] (the sweep
//!   analogue of the line-24 sibling merge);
//! * **root solve** — one dense LU solve on device 0, gathering the root's
//!   children across the fabric;
//! * **backward sweep** (downsweep-ordered substitute, root level first) —
//!   a child on a different device than its parent reads its slice of the
//!   parent's partial solution ([`TransferKind::PartialSum`]); leaf row
//!   ranges are disjoint, so per-device partial outputs assemble into `x`
//!   without a reduction.
//!
//! On a [`PipelineMode::Pipelined`] fabric the transfers are issued as
//! prefetch descriptors and the per-device jobs are gated on their
//! tickets (the same enqueue/flush surface the construction and matvec
//! use); per-device FIFO order keeps the arithmetic identical to the
//! synchronous schedule, so outputs are bit-identical in both modes — and
//! identical to the in-process [`UlvFactor::solve`], which drives the same
//! [`h2_solve::UlvSweep`] node kernels.
//!
//! Byte totals are validated against the closed-form
//! [`h2_runtime::simulate_solve`] model by [`compare_solve_with_simulator`]
//! — the solver extension of the construction/matvec equivalence suite:
//! both sides evaluate the same `k > 0 && owner(child) != owner(parent)`
//! predicate with the same [`h2_runtime::multidev::cost`] byte formula, so
//! the totals must be *equal*, not merely close.

use crate::exec::SimComparison;
use crate::fabric::{DeviceFabric, ExecReport};
use h2_dense::{LinOp, Mat, MatMut, MatRef};
use h2_matrix::H2Matrix;
use h2_runtime::multidev::cost;
use h2_runtime::{
    chunk_bounds, owner, simulate_solve_prec_mode, DeviceModel, PipelineMode, ShardJob, SolveSpec,
    Transfer, TransferKind,
};
use h2_solve::{Preconditioner, UlvFactor};
use std::sync::Arc;

/// Where a Krylov solve's iteration vectors live between fabric applies.
///
/// The fabric is virtual, so both modes run identical arithmetic and
/// produce bit-identical iterates — what changes is the modeled traffic,
/// exactly as on real hardware:
///
/// * [`Residency::Staged`] — the vectors live in the host
///   [`h2_solve::KrylovWorkspace`]; every operator or preconditioner
///   application stages the input's per-device row chunks out and gathers
///   the output back, `2·(n − chunk₀)·d` elements of
///   [`TransferKind::VectorStage`] traffic per apply (device 0 doubles as
///   the host staging slot, so its own chunk never crosses a link).
/// * [`Residency::Resident`] — the `x`/`r`/basis shards stay pinned in the
///   device arenas across iterations; an apply exchanges only the boundary
///   gathers already internal to the sharded kernels, and each global
///   dot/norm costs one `8·(D−1)`-byte scalar allreduce (wire it with
///   [`resident_reduce_hook`]). The blocked reductions
///   ([`h2_solve::blocked_dot`]) make the per-device partial combine
///   bit-equal to the host arithmetic, which is what keeps the two modes'
///   iterates identical.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Residency {
    Staged,
    Resident,
}

/// Per-apply [`TransferKind::VectorStage`] bytes of a [`Residency::Staged`]
/// operator at shape `n × d` — the closed-form the residency tests assert
/// against the executor's accounting, exactly.
pub fn staged_apply_bytes(n: usize, d: usize, devices: usize, wire: h2_dense::Precision) -> u64 {
    let bounds = chunk_bounds(n, devices);
    (1..devices)
        .map(|dev| 2 * ((bounds[dev + 1] - bounds[dev]) * d * wire.bytes()) as u64)
        .sum()
}

/// Bytes of one scalar allreduce in [`Residency::Resident`] mode: every
/// non-root device ships its 8-byte partial to device 0.
pub fn resident_reduce_bytes(devices: usize) -> u64 {
    8 * (devices.saturating_sub(1)) as u64
}

/// A [`h2_solve::ReduceHook`] charging the fabric one scalar allreduce
/// ([`resident_reduce_bytes`]) per global reduction — attach it to the
/// [`h2_solve::KrylovWorkspace`] when driving a [`Residency::Resident`]
/// operator so the only per-iteration traffic that leaves the devices is
/// accounted. A one-device fabric charges nothing.
pub fn resident_reduce_hook(fabric: &Arc<DeviceFabric>) -> h2_solve::ReduceHook {
    let fabric = fabric.clone();
    Arc::new(move || {
        for dev in 1..fabric.devices() {
            fabric.record_transfer(Transfer {
                src: dev,
                dst: 0,
                bytes: 8,
                kind: TransferKind::VectorStage,
                prec: h2_dense::Precision::F64,
            });
        }
    })
}

/// Charge one staged round trip (scatter the input chunks, gather the
/// output chunks) for an apply of an `n × d` vector block.
fn charge_vector_stage(fabric: &DeviceFabric, n: usize, d: usize) {
    let devices = fabric.devices();
    let wire = fabric.wire();
    let bounds = chunk_bounds(n, devices);
    for dev in 1..devices {
        let rows = bounds[dev + 1] - bounds[dev];
        if rows == 0 {
            continue;
        }
        let bytes = (rows * d * wire.bytes()) as u64;
        for (src, dst) in [(0, dev), (dev, 0)] {
            fabric.record_transfer(Transfer {
                src,
                dst,
                bytes,
                kind: TransferKind::VectorStage,
                prec: wire,
            });
        }
        // Staged copies of the input chunk and the output chunk coexist.
        fabric.arena_charge(dev, 2 * rows * d * wire.bytes());
    }
}

/// Charge the arena residency of a pinned `n × d` shard set (f64 master
/// copies; nothing crosses a link).
fn charge_resident_arena(fabric: &DeviceFabric, n: usize, d: usize) {
    let devices = fabric.devices();
    let bounds = chunk_bounds(n, devices);
    for dev in 0..devices {
        let rows = bounds[dev + 1] - bounds[dev];
        if rows > 0 {
            fabric.arena_charge(dev, rows * d * 8);
        }
    }
}

/// An H2 operator whose products execute sharded on a device fabric —
/// hand this to the Krylov methods so every basis-vector product runs
/// through [`crate::shard_matvec`]'s three sharded passes.
///
/// [`FabricOp::new`] models the historical dataflow ([`Residency::Staged`]:
/// the Krylov vectors round-trip through the host workspace every apply);
/// [`FabricOp::resident`] pins the vector shards in the device arenas and
/// drops the staging traffic entirely.
pub struct FabricOp<'a> {
    fabric: &'a DeviceFabric,
    h2: &'a H2Matrix,
    residency: Residency,
}

impl<'a> FabricOp<'a> {
    pub fn new(fabric: &'a DeviceFabric, h2: &'a H2Matrix) -> Self {
        FabricOp {
            fabric,
            h2,
            residency: Residency::Staged,
        }
    }

    /// [`FabricOp::new`] with [`Residency::Resident`] vectors. Pair with
    /// [`resident_reduce_hook`] on the driving workspace so the scalar
    /// allreduces are charged too.
    pub fn resident(fabric: &'a DeviceFabric, h2: &'a H2Matrix) -> Self {
        FabricOp {
            fabric,
            h2,
            residency: Residency::Resident,
        }
    }

    /// Override the vector residency (builder form).
    pub fn with_residency(mut self, residency: Residency) -> Self {
        self.residency = residency;
        self
    }

    pub fn residency(&self) -> Residency {
        self.residency
    }

    fn charge_apply(&self, d: usize) {
        match self.residency {
            Residency::Staged => charge_vector_stage(self.fabric, self.h2.n(), d),
            Residency::Resident => charge_resident_arena(self.fabric, self.h2.n(), 2 * d),
        }
    }
}

impl LinOp for FabricOp<'_> {
    fn nrows(&self) -> usize {
        self.h2.n()
    }

    fn ncols(&self) -> usize {
        self.h2.n()
    }

    fn apply(&self, x: MatRef<'_>, mut y: MatMut<'_>) {
        self.charge_apply(x.cols());
        let r = crate::shard_matvec(self.fabric, self.h2, &x.to_mat(), false);
        y.copy_from(r.rf());
    }

    fn apply_transpose(&self, x: MatRef<'_>, mut y: MatMut<'_>) {
        self.charge_apply(x.cols());
        let r = crate::shard_matvec(self.fabric, self.h2, &x.to_mat(), true);
        y.copy_from(r.rf());
    }
}

/// A ULV factorization applied as a preconditioner through the
/// fabric-sharded sweep: each Krylov iteration's `M⁻¹ r` runs
/// [`shard_ulv_solve`] instead of the in-process solve. Residency follows
/// the same contract as [`FabricOp`] (staged by default, resident via
/// [`UlvFabricPrecond::resident`]).
pub struct UlvFabricPrecond<'a> {
    fabric: &'a DeviceFabric,
    ulv: &'a UlvFactor,
    residency: Residency,
}

impl<'a> UlvFabricPrecond<'a> {
    pub fn new(fabric: &'a DeviceFabric, ulv: &'a UlvFactor) -> Self {
        UlvFabricPrecond {
            fabric,
            ulv,
            residency: Residency::Staged,
        }
    }

    /// [`UlvFabricPrecond::new`] with [`Residency::Resident`] vectors.
    pub fn resident(fabric: &'a DeviceFabric, ulv: &'a UlvFactor) -> Self {
        UlvFabricPrecond {
            fabric,
            ulv,
            residency: Residency::Resident,
        }
    }

    pub fn residency(&self) -> Residency {
        self.residency
    }
}

impl Preconditioner for UlvFabricPrecond<'_> {
    fn n(&self) -> usize {
        self.ulv.n()
    }

    fn apply_inv(&self, r: &Mat) -> Mat {
        match self.residency {
            Residency::Staged => charge_vector_stage(self.fabric, self.ulv.n(), r.cols()),
            Residency::Resident => charge_resident_arena(self.fabric, self.ulv.n(), 2 * r.cols()),
        }
        shard_ulv_solve(self.fabric, self.ulv, r)
    }
}

/// `x = K_H2⁻¹ b` through the ULV sweeps executed sharded on the fabric
/// (tree-permuted coordinates). Numerically identical to
/// [`UlvFactor::solve`] — the same per-node sweep kernels run, only the
/// scheduling differs.
pub fn shard_ulv_solve(fabric: &DeviceFabric, ulv: &UlvFactor, b: &Mat) -> Mat {
    let n = ulv.n();
    assert_eq!(b.rows(), n, "shard_ulv_solve: rhs rows");
    let d = b.cols();
    let tree = ulv.tree().clone();
    let leaf_level = tree.leaf_level();
    let devices = fabric.devices();
    let pipelined = fabric.mode() == PipelineMode::Pipelined;
    // Cross-device reduced blocks ship (and land in the arena) at the
    // fabric's wire precision; the solve simulator mirrors the width.
    let wire = fabric.wire();
    let sweep = ulv.sweep();
    let nnodes = tree.nodes.len();

    // Issue one sweep transfer: prefetched (ticket pushed) or synchronous.
    let issue = |t: Transfer, tickets: &mut Vec<Vec<u64>>| {
        if pipelined {
            let tk = fabric.prefetch_transfer(t);
            if tk != 0 {
                tickets[t.dst].push(tk);
            }
        } else {
            fabric.record_transfer(t);
        }
    };

    if leaf_level == 0 {
        fabric.record_flops(0, cost::lu_solve_flops(ulv.root_size(), d));
        fabric.record_launches(0, 1);
        let mut slot: Vec<Mat> = Vec::with_capacity(1);
        {
            let sweep_ref = &sweep;
            let job: ShardJob<'_> = Box::new(|| slot.push(sweep_ref.root_solve(b)));
            // SAFETY: run_jobs flushes before the borrows end.
            fabric.run_jobs(vec![job]);
        }
        fabric.close_epoch("ulv root");
        return slot.pop().expect("root solution");
    }

    let mut b1s: Vec<Option<Mat>> = (0..nnodes).map(|_| None).collect();
    let mut b2s: Vec<Option<Mat>> = (0..nnodes).map(|_| None).collect();

    // ---- forward sweep: rotate, eliminate, pass up (leaf level first) ----
    for l in (1..=leaf_level).rev() {
        let ids: Vec<usize> = tree.level(l).collect();
        let nl = ids.len();
        let bounds = chunk_bounds(nl, devices);
        let mut tickets: Vec<Vec<u64>> = vec![Vec::new(); devices];
        for (local, &id) in ids.iter().enumerate() {
            let dev = owner(local, nl, devices);
            let fl = ulv.forward_flops(id, d);
            if fl > 0.0 {
                fabric.record_flops(dev, fl);
            }
            fabric.arena_charge(dev, (ulv.retained(id) + 1) * d * wire.bytes());
            if l < leaf_level {
                // The node stacks its children's retained blocks: a child
                // owned by another device moves k × d numbers over.
                let ncl = tree.level_len(l + 1);
                let (c1, c2) = tree.nodes[id].children.unwrap();
                for c in [c1, c2] {
                    let kc = ulv.retained(c);
                    let cdev = owner(tree.local_index(c), ncl, devices);
                    if kc > 0 && cdev != dev {
                        issue(
                            Transfer {
                                src: cdev,
                                dst: dev,
                                bytes: cost::fetch_bytes_p(kc, d, wire),
                                kind: TransferKind::ChildGather,
                                prec: wire,
                            },
                            &mut tickets,
                        );
                    }
                }
            }
        }
        let mut results: Vec<Vec<(usize, Mat, Mat)>> = (0..devices).map(|_| Vec::new()).collect();
        {
            let (b1s_ref, ids_ref, sweep_ref, tree_ref) = (&b1s, &ids, &sweep, &tree);
            for (dev, slot) in results.iter_mut().enumerate() {
                let (lo, hi) = (bounds[dev], bounds[dev + 1]);
                if hi > lo {
                    fabric.record_launches(dev, 1);
                }
                let job: ShardJob<'_> = Box::new(move || {
                    for local in lo..hi {
                        let id = ids_ref[local];
                        let bl = if l == tree_ref.leaf_level() {
                            let (a, e) = tree_ref.range(id);
                            b.view(a, 0, e - a, d).to_mat()
                        } else {
                            let (c1, c2) = tree_ref.nodes[id].children.unwrap();
                            let t1 = b1s_ref[c1].as_ref().expect("child reduced rhs");
                            let t2 = b1s_ref[c2].as_ref().expect("child reduced rhs");
                            t1.vcat(t2)
                        };
                        let (b1, b2) = sweep_ref.forward_node(id, bl);
                        slot.push((id, b1, b2));
                    }
                });
                // SAFETY: flushed below before the borrows end.
                unsafe { fabric.enqueue(dev, &tickets[dev], job) };
            }
            fabric.flush();
        }
        for (id, b1, b2) in results.into_iter().flatten() {
            b1s[id] = Some(b1);
            b2s[id] = Some(b2);
        }
        fabric.close_epoch(&format!("ulv forward L{l}"));
    }

    // ---- root solve on device 0, gathering the root's children ----
    let mut xts: Vec<Option<Mat>> = (0..nnodes).map(|_| None).collect();
    {
        let (c1, c2) = tree.nodes[0].children.unwrap();
        let n1 = tree.level_len(1);
        let mut tickets: Vec<Vec<u64>> = vec![Vec::new(); devices];
        for c in [c1, c2] {
            let kc = ulv.retained(c);
            let cdev = owner(tree.local_index(c), n1, devices);
            if kc > 0 && cdev != 0 {
                issue(
                    Transfer {
                        src: cdev,
                        dst: 0,
                        bytes: cost::fetch_bytes_p(kc, d, wire),
                        kind: TransferKind::ChildGather,
                        prec: wire,
                    },
                    &mut tickets,
                );
            }
        }
        fabric.record_flops(0, cost::lu_solve_flops(ulv.root_size(), d));
        fabric.record_launches(0, 1);
        let mut slot: Vec<Mat> = Vec::with_capacity(1);
        {
            let (b1s_ref, sweep_ref) = (&b1s, &sweep);
            let job: ShardJob<'_> = Box::new(|| {
                let r1 = b1s_ref[c1].as_ref().expect("root child rhs");
                let r2 = b1s_ref[c2].as_ref().expect("root child rhs");
                slot.push(sweep_ref.root_solve(&r1.vcat(r2)));
            });
            // SAFETY: flushed below before the borrows end.
            unsafe { fabric.enqueue(0, &tickets[0], job) };
            fabric.flush();
        }
        xts[0] = Some(slot.pop().expect("root solution"));
        fabric.close_epoch("ulv root");
    }

    // ---- backward sweep: distribute, substitute, un-rotate ----
    let mut x = Mat::zeros(n, d);
    for l in 1..=leaf_level {
        let ids: Vec<usize> = tree.level(l).collect();
        let nl = ids.len();
        let np = tree.level_len(l - 1);
        let bounds = chunk_bounds(nl, devices);
        let mut tickets: Vec<Vec<u64>> = vec![Vec::new(); devices];
        for (local, &id) in ids.iter().enumerate() {
            let dev = owner(local, nl, devices);
            let fl = ulv.backward_flops(id, d);
            if fl > 0.0 {
                fabric.record_flops(dev, fl);
            }
            let parent = tree.nodes[id].parent.expect("non-root node");
            let pdev = owner(tree.local_index(parent), np, devices);
            let kc = ulv.retained(id);
            if kc > 0 && pdev != dev {
                issue(
                    Transfer {
                        src: pdev,
                        dst: dev,
                        bytes: cost::fetch_bytes_p(kc, d, wire),
                        kind: TransferKind::PartialSum,
                        prec: wire,
                    },
                    &mut tickets,
                );
            }
        }
        // Each node's cached b2 is consumed exactly once: drain it into
        // per-device owned chunks so the jobs take ownership instead of
        // cloning every `e × nrhs` block.
        let b2_chunks: Vec<Vec<Mat>> = (0..devices)
            .map(|dev| {
                (bounds[dev]..bounds[dev + 1])
                    .map(|local| b2s[ids[local]].take().expect("cached b2"))
                    .collect()
            })
            .collect();
        let mut results: Vec<Vec<(usize, Mat)>> = (0..devices).map(|_| Vec::new()).collect();
        {
            let (xts_ref, ids_ref, sweep_ref, tree_ref, ulv_ref) = (&xts, &ids, &sweep, &tree, ulv);
            for ((dev, slot), chunk) in results.iter_mut().enumerate().zip(b2_chunks) {
                let lo = bounds[dev];
                if !chunk.is_empty() {
                    fabric.record_launches(dev, 1);
                }
                let job: ShardJob<'_> = Box::new(move || {
                    for (j, b2) in chunk.into_iter().enumerate() {
                        let id = ids_ref[lo + j];
                        let parent = tree_ref.nodes[id].parent.unwrap();
                        let (c1, _) = tree_ref.nodes[parent].children.unwrap();
                        let off = if id == c1 { 0 } else { ulv_ref.retained(c1) };
                        let k = ulv_ref.retained(id);
                        let px = xts_ref[parent].as_ref().expect("parent solution");
                        let x1 = px.view(off, 0, k, d).to_mat();
                        slot.push((id, sweep_ref.backward_node(id, &x1, b2)));
                    }
                });
                // SAFETY: flushed below before the borrows end.
                unsafe { fabric.enqueue(dev, &tickets[dev], job) };
            }
            fabric.flush();
        }
        for (id, xt) in results.into_iter().flatten() {
            if l == leaf_level {
                let (lo, hi) = tree.range(id);
                x.view_mut(lo, 0, hi - lo, d)
                    .copy_from(xt.view(0, 0, hi - lo, d));
            } else {
                xts[id] = Some(xt);
            }
        }
        fabric.close_epoch(&format!("ulv backward L{l}"));
    }
    x
}

/// [`shard_ulv_solve`] with a fresh accounting scope: resets the fabric,
/// runs, and returns the solution with the execution report.
pub fn shard_ulv_solve_with_report(
    fabric: &DeviceFabric,
    ulv: &UlvFactor,
    b: &Mat,
) -> (Mat, ExecReport) {
    fabric.reset();
    let x = shard_ulv_solve(fabric, ulv, b);
    (x, fabric.report("ulv solve tail"))
}

/// Measured-vs-simulated comparison of one sharded solve sweep against
/// [`simulate_solve_prec_mode`] on the factorization's own [`SolveSpec`],
/// evaluated under the report's own pipeline mode — the solver arm of the
/// simulator-equivalence suite. Byte totals must match exactly; work
/// totals to rounding; the makespan within the documented band (the two
/// sides place pass-up traffic in adjacent levels).
pub fn compare_solve_with_simulator(
    report: &ExecReport,
    spec: &SolveSpec,
    model: &DeviceModel,
) -> SimComparison {
    let sim = simulate_solve_prec_mode(spec, report.devices, model, report.wire, report.mode);
    SimComparison {
        measured_flop_equiv: report.flop_equiv(model.entry_cost),
        predicted_flop_equiv: sim.compute_total() * model.flops_per_sec,
        measured_bytes: report.total_comm_bytes(),
        predicted_bytes: sim.total_comm_bytes,
        measured_makespan: report.modeled_makespan(model),
        predicted_makespan: sim.makespan,
    }
}
