//! Ablation study over the design choices DESIGN.md calls out:
//!
//! * the **safety factor** on the absolute truncation threshold (our
//!   calibration knob for "measured error lands at or below ε", §III.B),
//! * the **per-level tolerance schedule** (the paper's "simple error
//!   compensation scheme" and its tightened variants),
//! * **adaptive vs fixed** sampling at several initial sample counts,
//! * the **convergence-test scaling** `√d` (via sample-block size sweeps).
//!
//! Usage: `cargo run --release -p h2-bench --bin ablation -- [--n 8192]
//! [--trace trace.json]`

use h2_bench::{build_problem, header, mib, reference_h2, row, App, Args, TraceSink};
use h2_core::{sketch_construct, SketchConfig, TolSchedule};
use h2_dense::relative_error_2;
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let n: usize = args.get("n", 8192);
    let tol: f64 = args.get("tol", 1e-6);
    let sink = TraceSink::from_args(&args);
    let problem = build_problem(App::Covariance, n, 64, 0.7, 0xAB1A);
    let reference = reference_h2(&problem, tol * 1e-2);

    let run = |cfg: &SketchConfig| {
        let rt = sink.runtime();
        let t = Instant::now();
        let (h2, stats) = sketch_construct(
            &reference,
            &problem.kernel,
            problem.tree.clone(),
            problem.partition.clone(),
            &rt,
            cfg,
        );
        let secs = t.elapsed().as_secs_f64();
        let err = relative_error_2(&reference, &h2, 12, 0xAB1B);
        (secs, h2, stats, err)
    };

    println!("# Ablation (covariance, N={n}, tol={tol})\n");

    println!("## safety factor on the truncation threshold\n");
    header(&[
        "safety",
        "time (s)",
        "rank range",
        "memory (MiB)",
        "samples",
        "rel error",
        "err/tol",
    ]);
    for safety in [1.0, 1.0 / 3.0, 1.0 / 10.0, 1.0 / 30.0, 1.0 / 100.0] {
        let cfg = SketchConfig {
            tol,
            initial_samples: 128,
            safety,
            ..Default::default()
        };
        let (secs, h2, stats, err) = run(&cfg);
        let (lo, hi) = h2.rank_range();
        row(&[
            format!("{safety:.4}"),
            format!("{secs:.3}"),
            format!("{lo}-{hi}"),
            format!("{:.1}", mib(h2.memory_bytes())),
            stats.total_samples.to_string(),
            format!("{err:.2e}"),
            format!("{:.2}", err / tol),
        ]);
    }

    println!("\n## per-level tolerance schedule\n");
    header(&[
        "schedule",
        "time (s)",
        "rank range",
        "memory (MiB)",
        "rel error",
    ]);
    for (name, schedule) in [
        ("constant", TolSchedule::Constant),
        ("x0.7/level", TolSchedule::PerLevel { factor: 0.7 }),
        ("x0.5/level", TolSchedule::PerLevel { factor: 0.5 }),
    ] {
        let cfg = SketchConfig {
            tol,
            initial_samples: 128,
            schedule,
            ..Default::default()
        };
        let (secs, h2, _, err) = run(&cfg);
        let (lo, hi) = h2.rank_range();
        row(&[
            name.to_string(),
            format!("{secs:.3}"),
            format!("{lo}-{hi}"),
            format!("{:.1}", mib(h2.memory_bytes())),
            format!("{err:.2e}"),
        ]);
    }

    println!("\n## adaptive vs fixed sampling\n");
    header(&[
        "mode",
        "d0",
        "block",
        "time (s)",
        "samples",
        "rounds",
        "rel error",
    ]);
    for (mode, d0, block, adaptive) in [
        ("fixed", 256usize, 32usize, false),
        ("fixed", 128, 32, false),
        ("fixed", 64, 32, false),
        ("adaptive", 32, 32, true),
        ("adaptive", 32, 16, true),
        ("adaptive", 16, 16, true),
    ] {
        let cfg = SketchConfig {
            tol,
            initial_samples: d0,
            sample_block: block,
            adaptive,
            ..Default::default()
        };
        let (secs, _, stats, err) = run(&cfg);
        row(&[
            mode.to_string(),
            d0.to_string(),
            block.to_string(),
            format!("{secs:.3}"),
            stats.total_samples.to_string(),
            stats.rounds.to_string(),
            format!("{err:.2e}"),
        ]);
    }
    println!("\n(Observations to compare with the paper: the adaptive runs converge to the\n sample count the spectrum demands; over-tight safety factors inflate ranks for\n little error benefit; per-level tightening trades memory for upsweep error.)");
    sink.finish();
}
