//! Deterministic single-server event loop over the cache + queue.
//!
//! Time is modeled, never measured: batches are served with the *real*
//! fabric-sharded blocked sweep, but their duration is the execution
//! report's modeled makespan under the configured
//! [`h2_runtime::DeviceModel`], and a cache miss is charged the factor's
//! modeled (re)build time `factor_flops / flops_per_sec`. Every batch
//! asserts the trust invariant: measured fabric transfer bytes equal the
//! `simulate_solve` prediction for that batch's RHS width.

use crate::cache::{CachedOperator, OpKey, OperatorCache};
use crate::queue::{AdmissionPolicy, AdmissionQueue, Batch, Request};
use h2_dense::Mat;
use h2_runtime::{DeviceModel, PipelineMode};
use h2_sched::{compare_solve_with_simulator, shard_ulv_solve_with_report, DeviceFabric};

/// Service configuration: device fabric shape, device model, admission
/// policy and cache budget.
pub struct ServeConfig {
    pub devices: usize,
    pub mode: PipelineMode,
    pub model: DeviceModel,
    pub policy: AdmissionPolicy,
    pub cache_budget_bytes: usize,
}

/// One served request: its solution columns and modeled latency.
pub struct Response {
    pub id: u64,
    pub x: Mat,
    pub latency: f64,
}

/// Aggregate service metrics over one workload (all times modeled).
#[derive(Clone, Debug)]
pub struct ServeReport {
    pub completed: usize,
    pub total_rhs: usize,
    pub batches: usize,
    pub mean_batch_width: f64,
    /// Modeled time from first arrival to last completion.
    pub makespan: f64,
    pub throughput_rhs_per_sec: f64,
    pub p50_latency: f64,
    pub p99_latency: f64,
    pub cache_hits: usize,
    pub cache_misses: usize,
    pub cache_evictions: usize,
    /// Summed measured fabric bytes across batches.
    pub solve_bytes: u64,
    /// Summed `simulate_solve` bytes across batches.
    pub predicted_bytes: u64,
    /// Whether every batch matched its simulator byte prediction exactly.
    pub bytes_equal: bool,
    /// Modeled seconds spent (re)building factors on cache misses.
    pub factor_seconds: f64,
}

/// Single-server operator service simulation. `build` constructs the
/// operator pair for a key on a cache miss (the modeled *cost* of the miss
/// is taken from the built factor, not from the builder's wall clock).
pub struct ServeSim<'a> {
    cfg: ServeConfig,
    cache: OperatorCache,
    build: Box<dyn Fn(&OpKey) -> CachedOperator + 'a>,
}

/// Nearest-rank percentile of a latency sample (deterministic; `q` in
/// `[0, 1]`).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

impl<'a> ServeSim<'a> {
    pub fn new(cfg: ServeConfig, build: impl Fn(&OpKey) -> CachedOperator + 'a) -> Self {
        let cache = OperatorCache::new(cfg.cache_budget_bytes);
        ServeSim {
            cfg,
            cache,
            build: Box::new(build),
        }
    }

    /// Cache statistics accessor (for post-run assertions).
    pub fn cache(&self) -> &OperatorCache {
        &self.cache
    }

    /// Run a workload to completion: admit every request, coalesce, serve
    /// each batch with the sharded blocked sweep, drain the queue at the
    /// end. Requests are admitted in arrival order; returns the per-request
    /// responses (in completion order) and the aggregate report.
    pub fn run(&mut self, mut requests: Vec<Request>) -> (Vec<Response>, ServeReport) {
        requests.sort_by(|a, b| a.arrival.total_cmp(&b.arrival));
        let total_rhs: usize = requests.iter().map(|r| r.width()).sum();
        let first_arrival = requests.first().map(|r| r.arrival).unwrap_or(0.0);

        let mut pending: std::collections::VecDeque<Request> = requests.into();
        let mut queue = AdmissionQueue::new(self.cfg.policy);
        let mut clock = first_arrival;
        let mut responses = Vec::new();
        let mut latencies = Vec::new();
        let mut batches = 0usize;
        let mut width_sum = 0usize;
        let mut solve_bytes = 0u64;
        let mut predicted_bytes = 0u64;
        let mut bytes_equal = true;
        let mut factor_seconds = 0.0;

        loop {
            // Admit every arrival that has happened by `clock`.
            while pending.front().map(|r| r.arrival <= clock) == Some(true) {
                queue.push(pending.pop_front().expect("checked front"));
            }
            if let Some(b) = queue.poll(clock) {
                batches += 1;
                width_sum += b.width();
                let done = self.serve_batch(&b, &mut clock, &mut factor_seconds);
                solve_bytes += done.measured_bytes;
                predicted_bytes += done.predicted_bytes;
                bytes_equal &= done.measured_bytes == done.predicted_bytes;
                for resp in done.responses {
                    latencies.push(resp.latency);
                    responses.push(resp);
                }
                continue;
            }
            // Nothing fires now: jump to the next event. Every arrival
            // at or before `clock` is admitted, and a deadline at `clock`
            // would have fired above, so the clock strictly advances.
            clock = match (pending.front().map(|r| r.arrival), queue.next_deadline()) {
                (Some(a), Some(d)) => a.min(d).max(clock),
                (Some(a), None) => a.max(clock),
                (None, Some(d)) => d.max(clock),
                (None, None) => break,
            };
        }

        latencies.sort_by(f64::total_cmp);
        let makespan = (clock - first_arrival).max(0.0);
        let report = ServeReport {
            completed: responses.len(),
            total_rhs,
            batches,
            mean_batch_width: if batches > 0 {
                width_sum as f64 / batches as f64
            } else {
                0.0
            },
            makespan,
            throughput_rhs_per_sec: if makespan > 0.0 {
                total_rhs as f64 / makespan
            } else {
                0.0
            },
            p50_latency: percentile(&latencies, 0.50),
            p99_latency: percentile(&latencies, 0.99),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            cache_evictions: self.cache.evictions(),
            solve_bytes,
            predicted_bytes,
            bytes_equal,
            factor_seconds,
        };
        (responses, report)
    }

    fn serve_batch(&mut self, batch: &Batch, clock: &mut f64, factor_seconds: &mut f64) -> Served {
        // Operator lookup; a miss charges the modeled factorization time.
        let op = match self.cache.get(&batch.key) {
            Some(op) => op,
            None => {
                let op = (self.build)(&batch.key);
                let rebuild = op.ulv.factor_flops() / self.cfg.model.flops_per_sec;
                *clock += rebuild;
                *factor_seconds += rebuild;
                self.cache.insert(batch.key.clone(), op.clone());
                op
            }
        };

        // Gather the coalesced RHS block: one zero-copy column-group view
        // per request, written side by side.
        let n = op.ulv.n();
        let width = batch.width();
        let mut rhs = Mat::zeros(n, width);
        let mut c0 = 0;
        for req in &batch.requests {
            assert_eq!(req.rhs.rows(), n, "request rhs rows mismatch");
            rhs.col_block_mut(c0, req.width()).copy_from(req.rhs.rf());
            c0 += req.width();
        }

        // One blocked sharded sweep for the whole batch, byte-checked
        // against the simulator at this width.
        let fabric = match self.cfg.mode {
            PipelineMode::Pipelined => DeviceFabric::pipelined(self.cfg.devices),
            _ => DeviceFabric::new(self.cfg.devices),
        };
        let (x, report) = shard_ulv_solve_with_report(&fabric, &op.ulv, &rhs);
        let spec = op.ulv.solve_spec(width);
        let cmp = compare_solve_with_simulator(&report, &spec, &self.cfg.model);
        let service = report.modeled_makespan(&self.cfg.model);
        *clock += service;

        // Scatter: each request's columns come back as one zero-copy view.
        let mut responses = Vec::with_capacity(batch.requests.len());
        let mut c0 = 0;
        for req in &batch.requests {
            responses.push(Response {
                id: req.id,
                x: x.col_block(c0, req.width()).to_mat(),
                latency: *clock - req.arrival,
            });
            c0 += req.width();
        }
        Served {
            measured_bytes: cmp.measured_bytes,
            predicted_bytes: cmp.predicted_bytes,
            responses,
        }
    }
}

struct Served {
    measured_bytes: u64,
    predicted_bytes: u64,
    responses: Vec<Response>,
}
