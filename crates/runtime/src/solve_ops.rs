//! Batched dense *solver* primitives over [`VarBatch`] workspaces — the
//! kernels the per-level ULV elimination sweeps are built from.
//!
//! The construction kernels in [`crate::ops`] cover Algorithm 1; a batched
//! direct solver needs four more per-level operations (the H2Opus/KBLAS
//! batched-solver repertoire): variable-size Householder QR of the reduced
//! bases, LU of the rotated pivot blocks, triangular solves against blocks
//! of right-hand sides, and the application of stored Q factors. Each
//! follows the same discipline as the construction kernels:
//!
//! * one launch recorded per call ([`crate::Kernel::Qr`] /
//!   [`crate::Kernel::Lu`] / [`crate::Kernel::Trsm`] /
//!   [`crate::Kernel::Gemm`]),
//! * per-entry work executed on the runtime's backend with **cost-aware
//!   chunking** ([`crate::batch::cost_chunk_bounds`] over the modeled
//!   flops, so one worker is not stuck behind the few huge top-level
//!   blocks),
//! * sharded-mode accounting with the **simulator's own cost formulas**
//!   ([`crate::multidev::cost::lu_flops`] and friends, owner-attributed in
//!   the §IV.A contiguous chunks) — which is what lets
//!   `h2_sched::compare_solve_with_simulator` assert measured-equals-
//!   predicted for solver sweeps exactly as it does for construction.

use crate::batch::VarBatch;
use crate::multidev::cost;
use crate::ops::{batch_for_each_mut, batch_map};
use crate::profile::Kernel;
use crate::runtime::Runtime;
use h2_dense::{
    lu_factor, qr_factor, solve_triangular_left, Diag, LuFactor, Mat, QrFactor, Triangle,
};

/// Batched Householder QR: factor every entry of `batch`, returning the
/// per-entry compact factors (R upper, reflectors lower, `tau` aside).
pub fn batched_qr(rt: &Runtime, batch: &VarBatch) -> Vec<QrFactor> {
    rt.launch(Kernel::Qr);
    let flops = |i: usize| cost::qr_flops(batch.rows_of(i), batch.cols_of(i));
    batch_map(rt, batch, flops, |_, m| qr_factor(m.to_mat()))
}

/// Batched LU with partial pivoting of square entries. `None` marks an
/// exactly singular entry (the caller maps it to its node id).
pub fn batched_lu(rt: &Runtime, batch: &VarBatch) -> Vec<Option<LuFactor>> {
    rt.launch(Kernel::Lu);
    let flops = |i: usize| cost::lu_flops(batch.rows_of(i));
    batch_map(rt, batch, flops, |_, m| lu_factor(m.to_mat()))
}

/// Batched triangular solve: entry `i` of `b` is overwritten by
/// `tris[i]⁻¹ b_i` (left solve with the given triangle/diagonal).
pub fn batched_trsm(rt: &Runtime, tri: Triangle, diag: Diag, tris: &[Mat], b: &mut VarBatch) {
    assert_eq!(tris.len(), b.count(), "batched_trsm: batch count mismatch");
    rt.launch(Kernel::Trsm);
    let cols: Vec<usize> = (0..b.count()).map(|i| b.cols_of(i)).collect();
    let flops = |i: usize| cost::trsm_flops(tris[i].rows(), cols[i]);
    batch_for_each_mut(rt, b, flops, |i, mut m| {
        solve_triangular_left(tri, diag, tris[i].rf(), &mut m);
    });
}

/// Batched LU solve: entry `i` of `b` is overwritten by `lus[i]⁻¹ b_i`
/// (pivot application plus the two triangular solves, so two
/// [`Kernel::Trsm`] launches are recorded).
pub fn batched_lu_solve(rt: &Runtime, lus: &[LuFactor], b: &mut VarBatch) {
    assert_eq!(lus.len(), b.count(), "batched_lu_solve: count mismatch");
    rt.launch(Kernel::Trsm);
    rt.launch(Kernel::Trsm);
    let cols: Vec<usize> = (0..b.count()).map(|i| b.cols_of(i)).collect();
    let flops = |i: usize| cost::lu_solve_flops(lus[i].a.rows(), cols[i]);
    batch_for_each_mut(rt, b, flops, |i, mut m| {
        lus[i].solve_in_place(&mut m);
    });
}

/// Batched `b_i ← Qᵢᵀ b_i` for stored compact QR factors (the ULV rotation
/// of diagonal blocks and right-hand sides).
pub fn batched_apply_qt(rt: &Runtime, qrs: &[QrFactor], b: &mut VarBatch) {
    assert_eq!(qrs.len(), b.count(), "batched_apply_qt: count mismatch");
    rt.launch(Kernel::Gemm);
    let cols: Vec<usize> = (0..b.count()).map(|i| b.cols_of(i)).collect();
    let flops = |i: usize| cost::qr_apply_flops(qrs[i].rows(), qrs[i].tau.len(), cols[i]);
    batch_for_each_mut(rt, b, flops, |i, mut m| {
        qrs[i].apply_qt(&mut m);
    });
}

/// Batched entry transpose into a fresh workspace (the marshaling step
/// between the two one-sided rotations of `D̃ = Qᵀ D P`).
pub fn batched_transpose(rt: &Runtime, batch: &VarBatch) -> VarBatch {
    rt.launch(Kernel::Transpose);
    let rows: Vec<usize> = (0..batch.count()).map(|i| batch.cols_of(i)).collect();
    let cols: Vec<usize> = (0..batch.count()).map(|i| batch.rows_of(i)).collect();
    let mut out = VarBatch::zeros(rows, cols);
    batch_for_each_mut(
        rt,
        &mut out,
        |_| 0.0,
        |i, mut m| {
            let src = batch.mat(i);
            for c in 0..m.cols() {
                for r in 0..m.rows() {
                    *m.at_mut(r, c) = src.at(c, r);
                }
            }
        },
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Backend;
    use h2_dense::{gaussian_mat, matmul, Op};

    fn rts() -> [Runtime; 2] {
        [
            Runtime::new(Backend::Sequential),
            Runtime::new(Backend::Parallel),
        ]
    }

    fn fill_batch(shapes: &[(usize, usize)], seed: u64) -> (VarBatch, Vec<Mat>) {
        let rows: Vec<usize> = shapes.iter().map(|&(r, _)| r).collect();
        let cols: Vec<usize> = shapes.iter().map(|&(_, c)| c).collect();
        let mats: Vec<Mat> = shapes
            .iter()
            .enumerate()
            .map(|(i, &(r, c))| gaussian_mat(r, c, seed + i as u64))
            .collect();
        let mut b = VarBatch::zeros(rows, cols);
        for (i, m) in mats.iter().enumerate() {
            b.set(i, m.rf());
        }
        (b, mats)
    }

    #[test]
    fn batched_qr_factors_every_entry() {
        for rt in rts() {
            let (b, mats) = fill_batch(&[(8, 5), (6, 6), (0, 3), (7, 2)], 31);
            let qrs = batched_qr(&rt, &b);
            for (i, src) in mats.iter().enumerate() {
                let q = qrs[i].q_thin();
                let r = qrs[i].r();
                let rec = matmul(Op::NoTrans, Op::NoTrans, q.rf(), r.rf());
                let mut d = rec;
                d.axpy(-1.0, src);
                assert!(d.norm_max() < 1e-12, "entry {i}");
            }
        }
    }

    #[test]
    fn batched_lu_solves_and_flags_singular() {
        for rt in rts() {
            let (b, mats) = fill_batch(&[(6, 6), (4, 4), (0, 0)], 41);
            let lus = batched_lu(&rt, &b);
            for (i, src) in mats.iter().enumerate() {
                let lu = lus[i].as_ref().expect("nonsingular gaussian block");
                let x0 = gaussian_mat(src.rows(), 2, 90 + i as u64);
                let rhs = matmul(Op::NoTrans, Op::NoTrans, src.rf(), x0.rf());
                let mut d = lu.solve(&rhs);
                d.axpy(-1.0, &x0);
                assert!(d.norm_max() < 1e-9, "entry {i}");
            }
            let mut sing = VarBatch::zeros(vec![3], vec![3]);
            sing.mat_mut(0).fill(0.0);
            assert!(batched_lu(&rt, &sing)[0].is_none());
        }
    }

    #[test]
    fn batched_trsm_matches_dense_solve() {
        for rt in rts() {
            let tris: Vec<Mat> = (0..3)
                .map(|i| {
                    let mut t = gaussian_mat(4, 4, 50 + i);
                    for r in 0..4 {
                        t[(r, r)] += 4.0;
                        for c in (r + 1)..4 {
                            t[(r, c)] = 0.0;
                        }
                    }
                    t
                })
                .collect();
            let (mut b, rhs) = fill_batch(&[(4, 2), (4, 3), (4, 1)], 60);
            batched_trsm(&rt, Triangle::Lower, Diag::NonUnit, &tris, &mut b);
            for i in 0..3 {
                let got = b.to_mat(i);
                let back = matmul(Op::NoTrans, Op::NoTrans, tris[i].rf(), got.rf());
                let mut d = back;
                d.axpy(-1.0, &rhs[i]);
                assert!(d.norm_max() < 1e-11, "entry {i}");
            }
        }
    }

    #[test]
    fn batched_lu_solve_roundtrips() {
        for rt in rts() {
            let (a, mats) = fill_batch(&[(5, 5), (3, 3)], 70);
            let lus: Vec<LuFactor> = batched_lu(&rt, &a)
                .into_iter()
                .map(|o| o.unwrap())
                .collect();
            let (mut b, x0) = fill_batch(&[(5, 2), (3, 2)], 75);
            // b ← A x0, then solve in place: recover x0.
            for i in 0..2 {
                let ax = matmul(Op::NoTrans, Op::NoTrans, mats[i].rf(), x0[i].rf());
                b.set(i, ax.rf());
            }
            batched_lu_solve(&rt, &lus, &mut b);
            for i in 0..2 {
                let mut d = b.to_mat(i);
                d.axpy(-1.0, &x0[i]);
                assert!(d.norm_max() < 1e-9);
            }
        }
    }

    #[test]
    fn apply_qt_then_transpose_recovers_rotation() {
        for rt in rts() {
            let (w, _) = fill_batch(&[(6, 3)], 80);
            let qrs = batched_qr(&rt, &w);
            let (mut b, src) = fill_batch(&[(6, 4)], 85);
            batched_apply_qt(&rt, &qrs, &mut b);
            // Qᵀ is orthogonal: norms are preserved.
            assert!((b.to_mat(0).norm_fro() - src[0].norm_fro()).abs() < 1e-11);
            let t = batched_transpose(&rt, &b);
            assert_eq!(t.rows_of(0), 4);
            assert_eq!(t.mat(0).at(1, 2), b.mat(0).at(2, 1));
        }
    }

    #[test]
    fn launches_recorded() {
        let rt = Runtime::parallel();
        let (b, _) = fill_batch(&[(4, 4)], 95);
        let _ = batched_lu(&rt, &b);
        assert_eq!(rt.profile().launches(Kernel::Lu), 1);
        let lus: Vec<LuFactor> = batched_lu(&rt, &b)
            .into_iter()
            .map(|o| o.unwrap())
            .collect();
        let (mut rhs, _) = fill_batch(&[(4, 2)], 96);
        batched_lu_solve(&rt, &lus, &mut rhs);
        assert_eq!(rt.profile().launches(Kernel::Trsm), 2);
    }
}
