//! Admission queue: coalesce concurrent client requests into multi-RHS
//! batches.
//!
//! Policy (`max_batch` columns, `max_wait` seconds):
//!
//! * requests are held in arrival order;
//! * the queue releases a batch for the **head** request's operator key —
//!   strictly FIFO in the head position, so no key can be starved by a
//!   busier neighbour;
//! * release fires when the head key's pending width reaches `max_batch`,
//!   or the head request has waited `max_wait` since its arrival;
//! * a batch gathers pending requests *of the head key only*, in arrival
//!   order, while their summed column count fits in `max_batch` (requests
//!   are never split — a client's columns stay contiguous in the batch).

use crate::cache::OpKey;
use h2_dense::Mat;
use std::collections::VecDeque;

/// One client request: solve the operator identified by `key` against the
/// columns of `rhs` (tree-permuted coordinates), submitted at modeled time
/// `arrival`.
pub struct Request {
    pub id: u64,
    pub key: OpKey,
    pub arrival: f64,
    pub rhs: Mat,
}

impl Request {
    /// Number of right-hand-side columns this request contributes.
    pub fn width(&self) -> usize {
        self.rhs.cols()
    }
}

/// Coalescing policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionPolicy {
    /// Release a batch once this many columns are pending for the head key.
    pub max_batch: usize,
    /// Release the head's batch after it has waited this long (modeled
    /// seconds) even if under-full.
    pub max_wait: f64,
}

/// A released batch: same-key requests whose RHS columns ride one blocked
/// sweep.
pub struct Batch {
    pub key: OpKey,
    pub requests: Vec<Request>,
}

impl Batch {
    /// Total RHS columns across the coalesced requests.
    pub fn width(&self) -> usize {
        self.requests.iter().map(|r| r.width()).sum()
    }

    /// Arrival time of the oldest request in the batch.
    pub fn oldest_arrival(&self) -> f64 {
        self.requests
            .iter()
            .map(|r| r.arrival)
            .fold(f64::INFINITY, f64::min)
    }
}

/// Arrival-ordered coalescing queue (see module docs for the policy).
pub struct AdmissionQueue {
    policy: AdmissionPolicy,
    pending: VecDeque<Request>,
}

impl AdmissionQueue {
    pub fn new(policy: AdmissionPolicy) -> Self {
        assert!(policy.max_batch >= 1, "max_batch must admit one column");
        AdmissionQueue {
            policy,
            pending: VecDeque::new(),
        }
    }

    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    pub fn len(&self) -> usize {
        self.pending.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Enqueue a request (callers admit in nondecreasing arrival order).
    pub fn push(&mut self, req: Request) {
        self.pending.push_back(req);
    }

    /// The next time a release could fire without new arrivals: the head
    /// request's `max_wait` deadline.
    pub fn next_deadline(&self) -> Option<f64> {
        self.pending
            .front()
            .map(|r| r.arrival + self.policy.max_wait)
    }

    /// Pending column count for the head request's key.
    fn head_width(&self) -> usize {
        let key = match self.pending.front() {
            Some(r) => &r.key,
            None => return 0,
        };
        self.pending
            .iter()
            .filter(|r| &r.key == key)
            .map(|r| r.width())
            .sum()
    }

    /// Release the head batch if the policy fires at time `now`; otherwise
    /// `None` (wait for more arrivals or the deadline).
    pub fn poll(&mut self, now: f64) -> Option<Batch> {
        let head = self.pending.front()?;
        let deadline_hit = now >= head.arrival + self.policy.max_wait;
        if self.head_width() >= self.policy.max_batch || deadline_hit {
            return self.release_head();
        }
        None
    }

    /// Release the head batch unconditionally (end-of-workload drain).
    pub fn flush(&mut self) -> Option<Batch> {
        self.release_head()
    }

    fn release_head(&mut self) -> Option<Batch> {
        let key = self.pending.front()?.key.clone();
        let mut requests = Vec::new();
        let mut width = 0;
        let mut kept = VecDeque::with_capacity(self.pending.len());
        for req in self.pending.drain(..) {
            let take = req.key == key
                && (requests.is_empty() || width + req.width() <= self.policy.max_batch);
            if take {
                width += req.width();
                requests.push(req);
            } else {
                kept.push_back(req);
            }
        }
        self.pending = kept;
        Some(Batch { key, requests })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(name: &str) -> OpKey {
        OpKey::from_hash(name, 7, 1e-6)
    }

    fn req(id: u64, k: &str, arrival: f64, width: usize) -> Request {
        Request {
            id,
            key: key(k),
            arrival,
            rhs: Mat::zeros(4, width),
        }
    }

    #[test]
    fn admission_order_is_preserved_within_a_batch() {
        let mut q = AdmissionQueue::new(AdmissionPolicy {
            max_batch: 8,
            max_wait: 1.0,
        });
        for (i, t) in [(0u64, 0.00), (1, 0.01), (2, 0.02)] {
            q.push(req(i, "a", t, 3));
        }
        // 3 + 3 + 3 > 8: the batch takes the first two (6 cols), leaves #2.
        let b = q.poll(0.02).expect("width trigger");
        assert_eq!(b.width(), 6);
        assert_eq!(
            b.requests.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert_eq!(q.len(), 1);
        // Under-full remainder holds until its deadline...
        assert!(q.poll(0.5).is_none());
        // ...then flushes alone.
        let b2 = q.poll(1.02).expect("deadline trigger");
        assert_eq!(b2.requests[0].id, 2);
        assert!(q.is_empty());
    }

    #[test]
    fn head_key_is_never_starved_and_keys_do_not_mix() {
        let mut q = AdmissionQueue::new(AdmissionPolicy {
            max_batch: 4,
            max_wait: 10.0,
        });
        q.push(req(0, "a", 0.0, 1));
        q.push(req(1, "b", 0.1, 4));
        q.push(req(2, "a", 0.2, 3));
        // Key b alone has a full batch, but a holds the head: nothing fires
        // until a's width (1 + 3 = 4) completes it.
        let b = q.poll(0.2).expect("head key fills");
        assert_eq!(b.key, key("a"));
        assert_eq!(
            b.requests.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![0, 2]
        );
        // b is next, now at the head and full.
        let b2 = q.poll(0.2).expect("b fires");
        assert_eq!(b2.key, key("b"));
        assert_eq!(b2.width(), 4);
    }

    #[test]
    fn max_wait_flushes_underfull_head() {
        let mut q = AdmissionQueue::new(AdmissionPolicy {
            max_batch: 32,
            max_wait: 0.25,
        });
        q.push(req(0, "a", 1.0, 2));
        assert!(q.poll(1.2).is_none());
        assert_eq!(q.next_deadline(), Some(1.25));
        let b = q.poll(1.25).expect("deadline flush");
        assert_eq!(b.width(), 2);
    }

    #[test]
    fn oversize_request_is_released_alone() {
        let mut q = AdmissionQueue::new(AdmissionPolicy {
            max_batch: 4,
            max_wait: 1.0,
        });
        q.push(req(0, "a", 0.0, 9));
        let b = q.poll(0.0).expect("width >= max_batch fires immediately");
        assert_eq!(b.width(), 9, "requests are never split");
    }
}
