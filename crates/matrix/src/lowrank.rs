//! Low-rank updated operators: `A' = A + P Qᵀ`.
//!
//! The paper's third application (§V.A) recompresses "an existing H2
//! representation of the covariance matrix [updated] with an additional
//! low-rank product", the situation arising in hierarchical LU and
//! multifrontal Schur-complement updates. [`LowRankUpdate`] supplies both
//! black-box inputs for that experiment: the sampler is the fast H2 matvec
//! plus a thin product, and entry evaluation combines H2 extraction with a
//! row-dot of the factors.

use h2_dense::{gemm, matmul, EntryAccess, LinOp, Mat, MatMut, MatRef, Op};

/// A base operator combined with a low-rank product `base + P Qᵀ`.
///
/// For a symmetric update (needed by the symmetric construction), use
/// `P = Q`. Factors are in tree-permuted coordinates, like everything else.
pub struct LowRankUpdate<'a> {
    pub base: &'a dyn LinOpEntry,
    pub p: Mat,
    pub q: Mat,
}

/// Helper trait alias: an operator providing both black-box inputs.
pub trait LinOpEntry: LinOp + EntryAccess {}
impl<T: LinOp + EntryAccess> LinOpEntry for T {}

impl<'a> LowRankUpdate<'a> {
    /// Symmetric rank-`k` update `base + P Pᵀ` (the paper's configuration is
    /// a rank-32 product).
    pub fn symmetric(base: &'a dyn LinOpEntry, p: Mat) -> Self {
        let q = p.clone();
        LowRankUpdate { base, p, q }
    }

    pub fn rank(&self) -> usize {
        self.p.cols()
    }
}

impl LinOp for LowRankUpdate<'_> {
    fn nrows(&self) -> usize {
        self.base.nrows()
    }

    fn ncols(&self) -> usize {
        self.base.ncols()
    }

    fn apply(&self, x: MatRef<'_>, mut y: MatMut<'_>) {
        self.base.apply(x, y.rb_mut());
        // y += P (Q^T x): two thin products, O(N k d).
        let qtx = matmul(Op::Trans, Op::NoTrans, self.q.rf(), x);
        gemm(Op::NoTrans, Op::NoTrans, 1.0, self.p.rf(), qtx.rf(), 1.0, y);
    }
}

impl EntryAccess for LowRankUpdate<'_> {
    fn entry(&self, i: usize, j: usize) -> f64 {
        let mut s = self.base.entry(i, j);
        for c in 0..self.p.cols() {
            s += self.p[(i, c)] * self.q[(j, c)];
        }
        s
    }

    fn block(&self, rows: &[usize], cols: &[usize], out: &mut MatMut<'_>) {
        self.base.block(rows, cols, out);
        let pr = self.p.select_rows(rows);
        let qc = self.q.select_rows(cols);
        gemm(
            Op::NoTrans,
            Op::Trans,
            1.0,
            pr.rf(),
            qc.rf(),
            1.0,
            out.rb_mut(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2_dense::{gaussian_mat, DenseOp};

    #[test]
    fn updated_apply_and_entries_match_dense_sum() {
        let n = 24;
        let a = {
            let g = gaussian_mat(n, n, 71);
            // symmetrize
            let mut s = g.clone();
            s.axpy(1.0, &g.transpose());
            s
        };
        let p = gaussian_mat(n, 3, 72);
        let op = DenseOp::new(a.clone());
        let upd = LowRankUpdate::symmetric(&op, p.clone());
        assert_eq!(upd.rank(), 3);

        let mut want = a.clone();
        let ppt = matmul(Op::NoTrans, Op::Trans, p.rf(), p.rf());
        want.axpy(1.0, &ppt);

        // apply
        let x = gaussian_mat(n, 2, 73);
        let y = upd.apply_mat(&x);
        let yw = matmul(Op::NoTrans, Op::NoTrans, want.rf(), x.rf());
        let mut d = y;
        d.axpy(-1.0, &yw);
        assert!(d.norm_max() < 1e-12);

        // entries + block
        assert!((upd.entry(3, 7) - want[(3, 7)]).abs() < 1e-13);
        let rows = [0usize, 5, 11];
        let cols = [2usize, 3];
        let b = upd.block_mat(&rows, &cols);
        for (ii, &i) in rows.iter().enumerate() {
            for (jj, &j) in cols.iter().enumerate() {
                assert!((b[(ii, jj)] - want[(i, j)]).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn asymmetric_update_supported() {
        let n = 10;
        let a = gaussian_mat(n, n, 74);
        let p = gaussian_mat(n, 2, 75);
        let q = gaussian_mat(n, 2, 76);
        let op = DenseOp::new(a.clone());
        let upd = LowRankUpdate {
            base: &op,
            p: p.clone(),
            q: q.clone(),
        };
        let pqt = matmul(Op::NoTrans, Op::Trans, p.rf(), q.rf());
        let mut want = a;
        want.axpy(1.0, &pqt);
        assert!((upd.entry(4, 9) - want[(4, 9)]).abs() < 1e-13);
    }
}
