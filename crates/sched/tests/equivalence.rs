//! Satellite acceptance tests: the sharded executor must reproduce the
//! single-device results exactly (within fp tolerance) for device counts
//! 1, 2, 3 and 7 in both symmetry regimes — including partitions small
//! enough that some devices get zero nodes — and its measured work/traffic
//! totals must agree with the `DeviceModel` simulator's predictions on the
//! same `LevelSpec`s.

use h2_core::{level_specs, sketch_construct, sketch_construct_unsym, SketchConfig};
use h2_dense::gaussian_mat;
use h2_kernels::{ConvectionKernel, ExponentialKernel, KernelMatrix, UnsymKernelMatrix};
use h2_matrix::H2Matrix;
use h2_runtime::{DeviceModel, Runtime, TransferKind};
use h2_sched::{
    compare_with_simulator, shard_construct, shard_construct_unsym, shard_matvec,
    shard_matvec_with_report, DeviceFabric,
};
use h2_tree::{Admissibility, ClusterTree, Partition};
use std::sync::Arc;

const DEVICE_COUNTS: [usize; 4] = [1, 2, 3, 7];

fn sym_problem(
    n: usize,
    leaf: usize,
    seed: u64,
) -> (
    Arc<ClusterTree>,
    Arc<Partition>,
    KernelMatrix<ExponentialKernel>,
) {
    let pts = h2_tree::uniform_cube(n, seed);
    let tree = Arc::new(ClusterTree::build(&pts, leaf));
    let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
    assert!(part.top_far_level(&tree).is_some(), "problem too small");
    let km = KernelMatrix::new(ExponentialKernel::default(), tree.points.clone());
    (tree, part, km)
}

fn unsym_problem(
    n: usize,
    leaf: usize,
    seed: u64,
) -> (
    Arc<ClusterTree>,
    Arc<Partition>,
    UnsymKernelMatrix<ConvectionKernel>,
) {
    let pts = h2_tree::uniform_cube(n, seed);
    let tree = Arc::new(ClusterTree::build(&pts, leaf));
    let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
    assert!(part.top_far_level(&tree).is_some(), "problem too small");
    let km = UnsymKernelMatrix::new(ConvectionKernel::default(), tree.points.clone());
    (tree, part, km)
}

fn cfg() -> SketchConfig {
    SketchConfig {
        initial_samples: 64,
        ..Default::default()
    }
}

/// Max relative matvec discrepancy between two H2 matrices on a few probes.
fn matvec_gap(a: &H2Matrix, b: &H2Matrix, n: usize, seed: u64) -> f64 {
    let x = gaussian_mat(n, 3, seed);
    let ya = a.apply_permuted_mat(&x);
    let yb = b.apply_permuted_mat(&x);
    let mut d = ya;
    d.axpy(-1.0, &yb);
    d.norm_max() / yb.norm_max().max(1.0)
}

#[test]
fn sym_construction_matches_single_device() {
    let (tree, part, km) = sym_problem(1400, 16, 71);
    let rt = Runtime::parallel();
    let (reference, ref_stats) =
        sketch_construct(&km, &km, tree.clone(), part.clone(), &rt, &cfg());
    for devices in DEVICE_COUNTS {
        let fabric = DeviceFabric::new(devices);
        let (h2, stats, report) =
            shard_construct(&fabric, &km, &km, tree.clone(), part.clone(), &cfg());
        h2.validate().unwrap();
        assert_eq!(stats.total_samples, ref_stats.total_samples);
        let gap = matvec_gap(&h2, &reference, 1400, 72);
        assert!(
            gap < 1e-11,
            "D={devices}: sharded construction diverged by {gap}"
        );
        // One epoch per processed level.
        let top = part.top_far_level(&tree).unwrap();
        let levels = tree.leaf_level() - top + 1;
        assert!(
            report.epochs.len() >= levels,
            "D={devices}: {} epochs for {levels} levels",
            report.epochs.len()
        );
        if devices == 1 {
            assert_eq!(
                report.total_comm_bytes(),
                0,
                "one device never communicates"
            );
        }
    }
}

#[test]
fn unsym_construction_matches_single_device() {
    let (tree, part, km) = unsym_problem(1200, 16, 73);
    let rt = Runtime::parallel();
    let (reference, _) = sketch_construct_unsym(&km, &km, tree.clone(), part.clone(), &rt, &cfg());
    for devices in DEVICE_COUNTS {
        let fabric = DeviceFabric::new(devices);
        let (h2, _, report) =
            shard_construct_unsym(&fabric, &km, &km, tree.clone(), part.clone(), &cfg());
        h2.validate().unwrap();
        assert!(!h2.is_symmetric());
        let gap = matvec_gap(&h2, &reference, 1200, 74);
        assert!(
            gap < 1e-11,
            "D={devices}: sharded unsym construction diverged by {gap}"
        );
        // The transpose product must also coincide.
        let x = gaussian_mat(1200, 2, 75);
        let ya = h2.apply_transpose_permuted_mat(&x);
        let yb = reference.apply_transpose_permuted_mat(&x);
        let mut d = ya;
        d.axpy(-1.0, &yb);
        assert!(d.norm_max() < 1e-11 * yb.norm_max().max(1.0));
        if devices > 1 {
            assert!(
                report.total_comm_bytes() > 0,
                "D={devices}: two sharded streams must communicate"
            );
        }
    }
}

#[test]
fn sharded_matvec_matches_inprocess_sym_and_unsym() {
    let (tree, part, km) = sym_problem(1000, 16, 76);
    let rt = Runtime::parallel();
    let (sym, _) = sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg());
    let (treeu, partu, kmu) = unsym_problem(900, 16, 77);
    let (unsym, _) = sketch_construct_unsym(&kmu, &kmu, treeu, partu, &rt, &cfg());

    for (h2, n) in [(&sym, 1000usize), (&unsym, 900usize)] {
        let x = gaussian_mat(n, 3, 78);
        for transpose in [false, true] {
            let want = if transpose {
                h2.apply_transpose_permuted_mat(&x)
            } else {
                h2.apply_permuted_mat(&x)
            };
            for devices in DEVICE_COUNTS {
                let fabric = DeviceFabric::new(devices);
                let got = shard_matvec(&fabric, h2, &x, transpose);
                let mut d = got;
                d.axpy(-1.0, &want);
                assert!(
                    d.norm_max() < 1e-11 * want.norm_max().max(1.0),
                    "D={devices} transpose={transpose}: sharded matvec diverged by {}",
                    d.norm_max()
                );
            }
        }
    }
}

#[test]
fn zero_node_devices_are_harmless() {
    // A weak (HSS-style) partition processes levels all the way up to the
    // 2-node level: on 7 devices most chunks are empty there.
    let pts = h2_tree::uniform_cube(450, 79);
    let tree = Arc::new(ClusterTree::build(&pts, 16));
    let part = Arc::new(Partition::build(&tree, Admissibility::Weak));
    let km = KernelMatrix::new(ExponentialKernel { l: 2.0 }, tree.points.clone());
    let top = part.top_far_level(&tree).unwrap();
    // Some processed level must be narrower than 7 nodes for the test to
    // exercise the empty-chunk path.
    assert!(
        (top..=tree.leaf_level()).any(|l| tree.level_len(l) < 7),
        "test geometry must have a level narrower than the device count"
    );
    let rt = Runtime::parallel();
    let (reference, _) = sketch_construct(&km, &km, tree.clone(), part.clone(), &rt, &cfg());
    let fabric = DeviceFabric::new(7);
    let (h2, _, _) = shard_construct(&fabric, &km, &km, tree.clone(), part, &cfg());
    h2.validate().unwrap();
    let gap = matvec_gap(&h2, &reference, 450, 80);
    assert!(gap < 1e-11, "zero-node devices corrupted the result: {gap}");
    let x = gaussian_mat(450, 2, 81);
    let want = h2.apply_permuted_mat(&x);
    let got = shard_matvec(&fabric, &h2, &x, false);
    let mut d = got;
    d.axpy(-1.0, &want);
    assert!(d.norm_max() < 1e-11 * want.norm_max().max(1.0));
}

/// Acceptance: measured work/traffic totals equal the simulator's
/// prediction on the same `LevelSpec`s; the makespan (executor counts
/// projected through the same `DeviceModel`) agrees within the documented
/// 3x band (the two sides schedule generator round-robin and launches
/// differently; see `h2_sched::exec`).
fn assert_consistent_with_simulator(h2: &H2Matrix, report: &h2_sched::ExecReport, d: usize) {
    let specs = level_specs(h2);
    let model = DeviceModel::default();
    let cmp = compare_with_simulator(report, &specs, d, &model);
    assert!(
        cmp.flops_rel_err() < 1e-9,
        "work totals diverge: measured {} vs predicted {} ({:.3e} rel)",
        cmp.measured_flop_equiv,
        cmp.predicted_flop_equiv,
        cmp.flops_rel_err()
    );
    assert!(
        cmp.bytes_match(),
        "traffic totals diverge: measured {} vs predicted {} bytes",
        cmp.measured_bytes,
        cmp.predicted_bytes
    );
    let ratio = cmp.makespan_ratio();
    assert!(
        (1.0 / 3.0..=3.0).contains(&ratio),
        "makespan ratio {ratio} outside the documented 3x band"
    );
}

#[test]
fn executor_accounting_matches_simulator_sym() {
    let (tree, part, km) = sym_problem(1400, 16, 82);
    for devices in [1usize, 3] {
        let fabric = DeviceFabric::new(devices);
        let (h2, stats, report) =
            shard_construct(&fabric, &km, &km, tree.clone(), part.clone(), &cfg());
        // The spec comparison assumes the single-pass regime (the specs
        // describe one sweep at the final sample width).
        assert_eq!(stats.rounds, 0, "config must converge without adaptation");
        assert_consistent_with_simulator(&h2, &report, stats.total_samples);
    }
}

#[test]
fn executor_accounting_matches_simulator_unsym() {
    let (tree, part, km) = unsym_problem(1200, 16, 83);
    for devices in [2usize, 7] {
        let fabric = DeviceFabric::new(devices);
        let (h2, stats, report) =
            shard_construct_unsym(&fabric, &km, &km, tree.clone(), part.clone(), &cfg());
        assert_eq!(stats.rounds, 0, "config must converge without adaptation");
        assert_consistent_with_simulator(&h2, &report, stats.total_samples);
    }
}

#[test]
fn matvec_report_shows_expected_traffic_shape() {
    let (tree, part, km) = sym_problem(1000, 16, 84);
    let rt = Runtime::parallel();
    let (h2, _) = sketch_construct(&km, &km, tree.clone(), part, &rt, &cfg());
    let x = gaussian_mat(1000, 2, 85);
    // One device: no communication at all.
    let f1 = DeviceFabric::new(1);
    let (_, r1) = shard_matvec_with_report(&f1, &h2, &x, false);
    assert_eq!(r1.total_comm_bytes(), 0);
    // Several devices: coupling fetches appear, and per-device busy time is
    // spread over more than one device.
    let f4 = DeviceFabric::new(4);
    let (_, r4) = shard_matvec_with_report(&f4, &h2, &x, false);
    assert!(r4.bytes_of_kind(TransferKind::OmegaFetch) > 0);
    let busy = r4.busy_per_device();
    assert!(
        busy.iter().filter(|b| !b.is_zero()).count() >= 2,
        "work must land on multiple devices"
    );
    // Work totals are device-invariant.
    let (fl1, fl4) = (r1.total_flops(), r4.total_flops());
    assert!(
        (fl1 - fl4).abs() < 1e-9 * fl1.max(1.0),
        "matvec work must be conserved: {fl1} vs {fl4}"
    );
}
