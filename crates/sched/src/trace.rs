//! Observability exporters for sharded runs: Chrome-trace timelines built
//! from an [`ExecReport`]'s epoch records, and sim-drift attribution
//! tables pairing measured epochs with the closed-form simulators.
//!
//! ## Timeline export
//!
//! [`export_chrome_trace`] renders the per-device timeline the fabric
//! accounted: for every epoch, each device's busy / stall / overlapped /
//! idle slices (which tile the epoch span exactly — see
//! [`DeviceFabric::close_epoch`](crate::DeviceFabric::close_epoch)), each
//! issued transfer as an instant on a per-destination "link" row carrying
//! its byte/precision payload, arena-rotation marks, and one labeled slice
//! per epoch. Summing the `bytes` argument over the link rows recovers
//! [`ExecReport::total_comm_bytes`] exactly — the CI trace validator
//! asserts it. [`export_chrome_trace_with_spans`] additionally renders
//! live [`Tracer`](h2_obs::Tracer) events (phase spans, job spans, Krylov
//! iterations) on separate process rows, skipping the tracer's own
//! `transfer` instants so link bytes stay single-counted.
//!
//! Load the written file at <https://ui.perfetto.dev> or
//! `chrome://tracing`.
//!
//! ## Drift attribution
//!
//! [`drift_construct`] / [`drift_matvec`] / [`drift_solve`] join the
//! measured per-epoch schedule projection
//! ([`ExecReport::epoch_makespan`]) against the per-level predictions of
//! `simulate_prec_mode` / [`simulate_matvec`](crate::simulate_matvec) /
//! `simulate_solve_prec_mode`, each evaluated under the report's own
//! pipeline mode. The rows cover *all* measured epochs and *all*
//! predicted levels, so the table's measured total is exactly
//! [`ExecReport::modeled_makespan`] and its predicted total exactly the
//! simulator makespan — which makes the per-row shares sum identically to
//! the makespan ratio the equivalence suite checks against its 2x/3x
//! bands. The table answers *which epoch* contributes the gap.

use crate::fabric::ExecReport;
use crate::matvec::{MatvecSim, MatvecSimEpoch};
use h2_obs::{ns_to_us, ChromeTrace, DriftPart, DriftRow, DriftTable, Event, Json};
use h2_runtime::{
    simulate_prec_mode, simulate_solve_prec_mode, DeviceModel, LevelSpec, PipelineMode, Precision,
    SolveSpec,
};

/// Process row for host-thread tracer spans.
pub const THREAD_PID: u64 = 0;
/// Process row for the synthesized per-device timeline.
pub const DEVICE_PID: u64 = 1;
/// Process row for per-destination transfer instants.
pub const LINK_PID: u64 = 2;
/// Process row for live device-track tracer spans (kept separate from the
/// synthesized timeline so the two clocks cannot be confused).
pub const SPAN_DEVICE_PID: u64 = 3;

fn prec_name(p: Precision) -> &'static str {
    match p {
        Precision::F64 => "f64",
        Precision::F32 => "f32",
    }
}

/// Render an [`ExecReport`] as a Chrome trace: one thread row per device
/// (busy/stall/overlapped/idle slices tiling each epoch span), one link
/// row per destination device (transfer instants with byte payloads), an
/// epoch row, arena-rotation marks and a cumulative comm-bytes counter.
///
/// Epochs are laid out sequentially from 0 using their recorded spans, so
/// the timeline is the epoch schedule the makespan projection sums — not
/// raw wall clock (the fabric records per-epoch durations, not per-event
/// timestamps; the live-span exporter carries those).
pub fn export_chrome_trace(report: &ExecReport) -> ChromeTrace {
    let mut tr = ChromeTrace::new();
    tr.process_name(DEVICE_PID, "fabric devices");
    tr.process_name(LINK_PID, "fabric links");
    for dev in 0..report.devices {
        tr.thread_name(DEVICE_PID, dev as u64, &format!("device {dev}"));
        tr.thread_name(LINK_PID, dev as u64, &format!("link -> dev{dev}"));
    }
    tr.thread_name(DEVICE_PID, report.devices as u64, "epochs");

    let mut cursor_ns: u64 = 0;
    let mut cumulative_bytes: u64 = 0;
    for (i, e) in report.epochs.iter().enumerate() {
        let span_ns = e.span.as_nanos() as u64;
        let t0 = ns_to_us(cursor_ns);
        let span_us = ns_to_us(span_ns);
        tr.complete(
            DEVICE_PID,
            report.devices as u64,
            "epoch",
            &e.label,
            t0,
            span_us,
            Json::obj(vec![
                ("comm_bytes", Json::u64(e.comm_bytes)),
                ("comm_messages", Json::u64(e.comm_messages as u64)),
            ]),
        );
        for (dev, d) in e.per_device.iter().enumerate() {
            let mut t = cursor_ns;
            let slices = [
                ("busy", "compute", d.busy),
                ("stall", "comm", d.stall),
                ("overlapped", "comm", d.overlapped),
                ("idle", "idle", d.idle),
            ];
            for (name, cat, dur) in slices {
                let ns = dur.as_nanos() as u64;
                if ns > 0 {
                    tr.complete(
                        DEVICE_PID,
                        dev as u64,
                        cat,
                        name,
                        ns_to_us(t),
                        ns_to_us(ns),
                        Json::obj(vec![("epoch", Json::str(e.label.clone()))]),
                    );
                }
                t += ns;
            }
            tr.instant(
                DEVICE_PID,
                dev as u64,
                "arena",
                "arena rotate",
                ns_to_us(cursor_ns + span_ns),
                Json::obj(vec![("peak_bytes", Json::u64(d.arena_peak as u64))]),
            );
        }
        // Spread the epoch's transfers over its span so per-track
        // timestamps stay monotone; the byte payloads are the accounting
        // truth, the placement is presentational.
        let epoch_transfers: Vec<_> = report
            .transfers
            .iter()
            .filter(|(ep, _, _)| *ep == i)
            .collect();
        let n = epoch_transfers.len();
        for (k, (_, t, retry)) in epoch_transfers.into_iter().enumerate() {
            let ts = t0 + span_us * (k as f64 + 1.0) / (n as f64 + 1.0);
            let mut args = vec![
                ("bytes", Json::u64(t.bytes)),
                ("src", Json::u64(t.src as u64)),
                ("prec", Json::str(prec_name(t.prec))),
            ];
            if *retry {
                // Charged re-transfer of a fault plan: `trace_check` pairs
                // these one-to-one with the detected-fault instants.
                args.push(("stage", Json::str("retry")));
            }
            tr.instant(
                LINK_PID,
                t.dst as u64,
                "transfer",
                t.kind.name(),
                ts,
                Json::obj(args),
            );
        }
        cumulative_bytes += e.comm_bytes;
        tr.counter(
            LINK_PID,
            "comm_bytes",
            t0 + span_us,
            vec![("bytes", cumulative_bytes as f64)],
        );
        cursor_ns += span_ns;
    }
    tr
}

/// [`export_chrome_trace`] plus live tracer events on their own process
/// rows: thread-track spans (`Runtime::phase`, construction levels, ULV
/// phases, Krylov iterations) under [`THREAD_PID`], device-track spans
/// (fabric job spans) under [`SPAN_DEVICE_PID`]. The tracer's `transfer`
/// instants are skipped — the synthesized link rows already carry every
/// transfer, and the CI validator sums bytes over exactly one
/// representation.
pub fn export_chrome_trace_with_spans(report: &ExecReport, events: &[Event]) -> ChromeTrace {
    let mut tr = export_chrome_trace(report);
    tr.process_name(THREAD_PID, "host threads");
    tr.process_name(SPAN_DEVICE_PID, "device spans (live)");
    let filtered: Vec<Event> = events
        .iter()
        .filter(|e| e.cat != "transfer")
        .cloned()
        .collect();
    tr.add_span_events(&filtered, THREAD_PID, SPAN_DEVICE_PID);
    tr
}

/// Pair each measured epoch with a predicted `(label, seconds)` level by
/// index; rows cover the longer of the two sides so the totals are exact.
fn paired_table(
    report: &ExecReport,
    model: &DeviceModel,
    predicted: Vec<(String, f64)>,
) -> DriftTable {
    let n = report.epochs.len().max(predicted.len());
    let rows = (0..n)
        .map(|i| {
            let (measured, label_m, parts) = if i < report.epochs.len() {
                let (compute, comm, launch) = report.epoch_terms(i, model);
                (
                    report.epoch_makespan(i, model),
                    Some(report.epochs[i].label.clone()),
                    vec![
                        DriftPart {
                            name: "compute",
                            measured: compute,
                            predicted: 0.0,
                        },
                        DriftPart {
                            name: "comm",
                            measured: comm,
                            predicted: 0.0,
                        },
                        DriftPart {
                            name: "launch",
                            measured: launch,
                            predicted: 0.0,
                        },
                    ],
                )
            } else {
                (0.0, None, Vec::new())
            };
            let (pred, label_p) = predicted
                .get(i)
                .map(|(l, v)| (*v, Some(l.clone())))
                .unwrap_or((0.0, None));
            let label = match (label_m, label_p) {
                (Some(m), Some(p)) if m == p => m,
                (Some(m), Some(p)) => format!("{m} / {p}"),
                (Some(m), None) => m,
                (None, Some(p)) => format!("{p} (unmeasured)"),
                (None, None) => format!("epoch {i}"),
            };
            DriftRow {
                label,
                measured,
                predicted: pred,
                parts,
            }
        })
        .collect();
    DriftTable { rows }
}

/// Drift table for a construction run: measured epochs (one per processed
/// level plus any tail) against `simulate_prec_mode` on the same level
/// specs, device count, wire precision *and* pipeline mode — the mode
/// decides how each level's three schedule terms combine
/// ([`h2_runtime::combine_terms`]). The measured total equals
/// [`ExecReport::modeled_makespan`] and the predicted total equals the
/// simulator's makespan (the sum of its sequential level makespans), so
/// [`DriftTable::ratio`] is exactly
/// [`crate::SimComparison::makespan_ratio`].
pub fn drift_construct(
    report: &ExecReport,
    specs: &[LevelSpec],
    d_samples: usize,
    model: &DeviceModel,
) -> DriftTable {
    let sim = simulate_prec_mode(
        specs,
        d_samples,
        report.devices,
        model,
        report.wire,
        report.mode,
    );
    let predicted = sim
        .levels
        .iter()
        .enumerate()
        .map(|(i, l)| (format!("sim level {i}"), l.makespan))
        .collect();
    paired_table(report, model, predicted)
}

/// Predicted makespan of one matvec sim epoch — the identical formula
/// [`MatvecSim::makespan`] sums, evaluated per epoch so the drift rows
/// decompose it exactly.
fn matvec_epoch_makespan(e: &MatvecSimEpoch, mode: PipelineMode, model: &DeviceModel) -> f64 {
    let compute_max = e
        .flops
        .iter()
        .map(|f| f / model.flops_per_sec)
        .fold(0.0, f64::max);
    let comm =
        e.comm_bytes as f64 / model.link_bandwidth + e.comm_messages as f64 * model.link_latency;
    let launches_max = e.launches.iter().copied().max().unwrap_or(0);
    h2_runtime::combine_terms(
        mode,
        compute_max,
        comm,
        launches_max as f64 * model.launch_overhead,
    )
}

/// Drift table for a sharded matvec: measured epochs against the
/// closed-form [`MatvecSim`] (built for the same mode/wire), paired label
/// by label — the executor and simulator close identically labeled epochs
/// in the same order.
pub fn drift_matvec(report: &ExecReport, sim: &MatvecSim, model: &DeviceModel) -> DriftTable {
    let predicted = sim
        .epochs
        .iter()
        .map(|e| (e.label.clone(), matvec_epoch_makespan(e, sim.mode, model)))
        .collect();
    paired_table(report, model, predicted)
}

/// Drift table for a sharded ULV solve sweep: measured epochs (forward
/// levels, root, backward levels, tail) against `simulate_solve_prec_mode`
/// on the factorization's own [`SolveSpec`], under the report's own
/// pipeline mode.
pub fn drift_solve(report: &ExecReport, spec: &SolveSpec, model: &DeviceModel) -> DriftTable {
    let sim = simulate_solve_prec_mode(spec, report.devices, model, report.wire, report.mode);
    let predicted = sim
        .levels
        .iter()
        .enumerate()
        .map(|(i, l)| (format!("sim solve level {i}"), l.makespan))
        .collect();
    paired_table(report, model, predicted)
}
