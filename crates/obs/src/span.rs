//! The span/event tracer: RAII scoped spans with parent links, tagged with
//! the emitting thread or virtual device, timestamped against one tracer
//! epoch, sunk into a lock-free ring buffer ([`crate::ring::Ring`]).
//!
//! Emission is wait-free for producers (one atomic claim per event) and
//! never blocks an instrumented hot path: when the ring is full, events
//! are dropped and counted ([`Tracer::dropped`]) instead of stalling a
//! device worker. Spans nest through a thread-local stack, so an event's
//! `parent` link reflects the dynamic scope that opened it — e.g. a
//! fabric job span emitted on a worker thread inside `Runtime::phase`'s
//! span on the issuing thread carries its own thread's innermost open
//! span (device workers start their own root scopes).

use crate::ring::Ring;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Where an event happened: a host thread (arbitrary stable id) or a
/// virtual device of the fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Track {
    Thread(u64),
    Device(usize),
}

/// Typed event argument (rendered into the Chrome trace `args` object).
#[derive(Clone, Debug, PartialEq)]
pub enum ArgValue {
    U64(u64),
    F64(f64),
    Str(&'static str),
}

/// One finished span or instant event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Unique id (1-based; 0 is "no span").
    pub id: u64,
    /// Id of the span that was open on the emitting thread, 0 for roots.
    pub parent: u64,
    /// Taxonomy category (see the crate docs for the span taxonomy).
    pub cat: &'static str,
    pub name: String,
    pub track: Track,
    /// Start time in nanoseconds since the tracer's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds; `None` marks an instant event.
    pub dur_ns: Option<u64>,
    pub args: Vec<(&'static str, ArgValue)>,
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static THREAD_TRACK: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
}

static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

/// Stable per-thread track id (assigned on first use).
pub fn current_thread_track() -> u64 {
    THREAD_TRACK.with(|t| *t)
}

/// The tracer: shared epoch, id allocator, and ring-buffer sink. Cheap to
/// clone behind an `Arc`; every emitting subsystem holds one.
pub struct Tracer {
    ring: Ring<Event>,
    epoch: Instant,
    next_id: AtomicU64,
}

impl Tracer {
    /// A tracer whose sink holds up to `capacity` events (rounded up to a
    /// power of two). 64Ki events is plenty for any bench in this repo.
    pub fn new(capacity: usize) -> Arc<Tracer> {
        Arc::new(Tracer {
            ring: Ring::with_capacity(capacity),
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
        })
    }

    /// Nanoseconds since the tracer's epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn alloc_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Open a scoped span on the current thread's track. The span is
    /// recorded when the guard drops.
    pub fn span(&self, cat: &'static str, name: impl Into<String>) -> SpanGuard<'_> {
        self.span_on(cat, name, Track::Thread(current_thread_track()))
    }

    /// Open a scoped span attributed to a virtual device's track.
    pub fn span_on_device(
        &self,
        cat: &'static str,
        name: impl Into<String>,
        device: usize,
    ) -> SpanGuard<'_> {
        self.span_on(cat, name, Track::Device(device))
    }

    fn span_on(&self, cat: &'static str, name: impl Into<String>, track: Track) -> SpanGuard<'_> {
        let id = self.alloc_id();
        let parent = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied().unwrap_or(0);
            s.push(id);
            parent
        });
        SpanGuard {
            tracer: self,
            id,
            parent,
            cat,
            name: name.into(),
            track,
            start_ns: self.now_ns(),
            args: Vec::new(),
        }
    }

    /// Record an instant event on the current thread's track.
    pub fn instant(
        &self,
        cat: &'static str,
        name: impl Into<String>,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        self.instant_on(cat, name, Track::Thread(current_thread_track()), args);
    }

    /// Record an instant event on a device track.
    pub fn instant_on_device(
        &self,
        cat: &'static str,
        name: impl Into<String>,
        device: usize,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        self.instant_on(cat, name, Track::Device(device), args);
    }

    fn instant_on(
        &self,
        cat: &'static str,
        name: impl Into<String>,
        track: Track,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        let parent = SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0));
        self.ring.push(Event {
            id: self.alloc_id(),
            parent,
            cat,
            name: name.into(),
            track,
            start_ns: self.now_ns(),
            dur_ns: None,
            args,
        });
    }

    /// Drain every recorded event, sorted by start time.
    pub fn drain(&self) -> Vec<Event> {
        let mut events = Vec::new();
        while let Some(e) = self.ring.pop() {
            events.push(e);
        }
        events.sort_by_key(|e| (e.start_ns, e.id));
        events
    }

    /// Events rejected because the sink was full.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }
}

/// RAII guard for an open span; records the event (with duration) on drop.
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    id: u64,
    parent: u64,
    cat: &'static str,
    name: String,
    track: Track,
    start_ns: u64,
    args: Vec<(&'static str, ArgValue)>,
}

impl SpanGuard<'_> {
    /// Attach an argument to the span (shows in the trace viewer).
    pub fn arg(&mut self, key: &'static str, value: ArgValue) {
        self.args.push((key, value));
    }

    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Guards drop in reverse open order on a thread; defend against
            // a leaked guard by searching from the top.
            if let Some(i) = s.iter().rposition(|&id| id == self.id) {
                s.remove(i);
            }
        });
        let end = self.tracer.now_ns();
        self.tracer.ring.push(Event {
            id: self.id,
            parent: self.parent,
            cat: self.cat,
            name: std::mem::take(&mut self.name),
            track: self.track,
            start_ns: self.start_ns,
            dur_ns: Some(end.saturating_sub(self.start_ns)),
            args: std::mem::take(&mut self.args),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record_parent_links() {
        let tracer = Tracer::new(64);
        {
            let outer = tracer.span("phase", "outer");
            let outer_id = outer.id();
            {
                let inner = tracer.span("kernel", "inner");
                assert_ne!(inner.id(), outer_id);
            }
            tracer.instant("mark", "tick", vec![("n", ArgValue::U64(3))]);
            let _ = outer_id;
        }
        let events = tracer.drain();
        assert_eq!(events.len(), 3);
        let outer = events.iter().find(|e| e.name == "outer").unwrap();
        let inner = events.iter().find(|e| e.name == "inner").unwrap();
        let tick = events.iter().find(|e| e.name == "tick").unwrap();
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.parent, outer.id);
        assert_eq!(tick.parent, outer.id);
        assert!(inner.dur_ns.is_some() && tick.dur_ns.is_none());
        assert!(inner.start_ns >= outer.start_ns);
        // inner closed before outer.
        assert!(inner.start_ns + inner.dur_ns.unwrap() <= outer.start_ns + outer.dur_ns.unwrap());
    }

    #[test]
    fn device_tracks_and_thread_tracks_are_distinct() {
        let tracer = Tracer::new(64);
        {
            let _d = tracer.span_on_device("job", "dev job", 2);
        }
        let worker = {
            let tracer = tracer.clone();
            std::thread::spawn(move || {
                let _s = tracer.span("phase", "worker span");
            })
        };
        worker.join().unwrap();
        {
            let _s = tracer.span("phase", "main span");
        }
        let events = tracer.drain();
        let dev = events.iter().find(|e| e.name == "dev job").unwrap();
        assert_eq!(dev.track, Track::Device(2));
        let t_main = events.iter().find(|e| e.name == "main span").unwrap();
        let t_worker = events.iter().find(|e| e.name == "worker span").unwrap();
        assert_ne!(t_main.track, t_worker.track, "threads get distinct tracks");
    }
}
