//! Sharded construction drivers and the simulator cross-validation.
//!
//! [`shard_construct`] / [`shard_construct_unsym`] run Algorithm 1 on a
//! [`DeviceFabric`]-backed [`Runtime`]: every batched kernel of the level
//! loop (both sketch streams of the unsymmetric engine) executes its
//! contiguous per-device chunks on the fabric's worker threads, with the
//! `Ω_b` fetches and boundary sibling merges of §IV.B recorded on the
//! explicit transfer queue. The construction's level markers close one
//! accounting epoch per processed level, so the returned [`ExecReport`]
//! lines up one-to-one with the `LevelSpec`s of
//! [`h2_core::level_specs`] — [`compare_with_simulator`] checks that the
//! executor moved exactly the work and bytes the closed-form
//! [`h2_runtime::simulate`] model predicts.

use crate::fabric::{DeviceFabric, ExecReport};
use h2_core::{sketch_construct, sketch_construct_unsym, SketchConfig, SketchStats};
use h2_dense::{EntryAccess, LinOp};
use h2_fault::{FaultPlan, OccurrenceMap};
use h2_matrix::H2Matrix;
use h2_runtime::{
    simulate_prec_mode, transfer_census, DeviceModel, LevelSpec, Runtime, ShardDispatch,
};
use h2_tree::{ClusterTree, Partition};
use std::sync::Arc;

/// A [`Runtime`] whose batched kernels execute sharded on `fabric`.
pub fn sharded_runtime(fabric: &Arc<DeviceFabric>) -> Runtime {
    let rt = Runtime::sharded(fabric.clone() as Arc<dyn ShardDispatch>);
    match fabric.tracer() {
        Some(t) => rt.with_tracer(t),
        None => rt,
    }
}

/// Symmetric sketching construction executed on the device fabric.
/// Resets the fabric, runs, and returns the result together with the
/// fabric's execution report (one epoch per processed level).
pub fn shard_construct(
    fabric: &Arc<DeviceFabric>,
    sampler: &dyn LinOp,
    gen: &dyn EntryAccess,
    tree: Arc<ClusterTree>,
    partition: Arc<Partition>,
    cfg: &SketchConfig,
) -> (H2Matrix, SketchStats, ExecReport) {
    fabric.reset();
    let rt = sharded_runtime(fabric);
    let (h2, stats) = sketch_construct(sampler, gen, tree, partition, &rt, cfg);
    (h2, stats, fabric.report("construct tail"))
}

/// Unsymmetric (two-stream) sketching construction executed on the device
/// fabric. Both the `Y = K Ω` and `Z = Kᵀ Ψ` streams shard.
pub fn shard_construct_unsym(
    fabric: &Arc<DeviceFabric>,
    sampler: &dyn LinOp,
    gen: &dyn EntryAccess,
    tree: Arc<ClusterTree>,
    partition: Arc<Partition>,
    cfg: &SketchConfig,
) -> (H2Matrix, SketchStats, ExecReport) {
    fabric.reset();
    let rt = sharded_runtime(fabric);
    let (h2, stats) = sketch_construct_unsym(sampler, gen, tree, partition, &rt, cfg);
    (h2, stats, fabric.report("construct tail"))
}

/// Measured-vs-simulated comparison of one construction run on the same
/// [`LevelSpec`]s.
///
/// With a non-adaptive pass (no extra sampling rounds, which is the regime
/// `level_specs` describes) the executor performs *exactly* the kernel
/// populations of the specs, so the modeled work and traffic totals agree
/// to rounding — in **both** fabric modes: the pipelined executor issues
/// the same transfer descriptors (early, as prefetches) and attributes the
/// same owner-chunk flops, so `bytes_match` holds exactly regardless of
/// overlap. The makespans agree only up to scheduling detail — the
/// simulator round-robins generator blocks over one concatenated per-level
/// list and charges `active·(6 + Csp)` launches, while the executor issues
/// its real launch pattern — so [`SimComparison::makespan_ratio`] is
/// checked against a documented factor rather than equality: **3x** for
/// the synchronous fabric (exposed per-batch communication and join
/// pattern differences), tightened to **2x** for the pipelined fabric,
/// whose overlap-aware projection ([`ExecReport::modeled_makespan`])
/// hides transfer time behind compute exactly the way the simulator's
/// serialized formula cannot exceed.
#[derive(Clone, Debug)]
pub struct SimComparison {
    /// Executor work total, in flop-equivalents under the model.
    pub measured_flop_equiv: f64,
    /// Simulator work total (compute seconds × flop rate).
    pub predicted_flop_equiv: f64,
    /// Executor bytes on the transfer queue.
    pub measured_bytes: u64,
    /// Simulator cross-device traffic.
    pub predicted_bytes: u64,
    /// Executor counts projected through the model (see
    /// [`ExecReport::modeled_makespan`]).
    pub measured_makespan: f64,
    /// Simulator makespan.
    pub predicted_makespan: f64,
}

impl SimComparison {
    /// Relative flop-equivalent discrepancy.
    pub fn flops_rel_err(&self) -> f64 {
        let scale = self.predicted_flop_equiv.max(1.0);
        (self.measured_flop_equiv - self.predicted_flop_equiv).abs() / scale
    }

    /// Whether byte totals agree exactly.
    pub fn bytes_match(&self) -> bool {
        self.measured_bytes == self.predicted_bytes
    }

    /// `measured / predicted` makespan ratio (1.0 = perfect agreement).
    pub fn makespan_ratio(&self) -> f64 {
        if self.predicted_makespan == 0.0 {
            return 1.0;
        }
        self.measured_makespan / self.predicted_makespan
    }
}

/// Compare an execution report against the simulator's prediction for the
/// same level specs, sample width and device count. The simulator runs
/// under the report's own execution discipline
/// ([`h2_runtime::simulate_prec_mode`]), so both sides compose their
/// per-level compute/comm/launch terms the same way and the makespan band
/// measures population drift, not mode mismatch.
pub fn compare_with_simulator(
    report: &ExecReport,
    specs: &[LevelSpec],
    d_samples: usize,
    model: &DeviceModel,
) -> SimComparison {
    let sim = simulate_prec_mode(
        specs,
        d_samples,
        report.devices,
        model,
        report.wire,
        report.mode,
    );
    SimComparison {
        measured_flop_equiv: report.flop_equiv(model.entry_cost),
        predicted_flop_equiv: sim.compute_total() * model.flops_per_sec,
        measured_bytes: report.total_comm_bytes(),
        predicted_bytes: sim.total_comm_bytes,
        measured_makespan: report.modeled_makespan(model),
        predicted_makespan: sim.makespan,
    }
}

/// Predicted retry traffic of one faulted construction:
/// `(retry_bytes, retry_messages)` over the executor-granularity transfer
/// multiset of [`h2_runtime::transfer_census`], replaying the plan's
/// per-fingerprint occurrence draws exactly as the fabric does. Because
/// fault decisions are pure functions of `(seed, fingerprint, occurrence,
/// attempt)` and the census enumerates the same multiset of fingerprints
/// the executor issues, the predicted retry bytes equal the fabric's
/// charged re-transfer bytes *exactly* — the faulted extension of the
/// byte-equality trust invariant.
pub fn predicted_fault_traffic(
    specs: &[LevelSpec],
    d_samples: usize,
    devices: usize,
    wire: h2_runtime::Precision,
    plan: &FaultPlan,
) -> (u64, usize) {
    let mut occ = OccurrenceMap::new();
    let (mut bytes, mut msgs) = (0u64, 0usize);
    for t in transfer_census(specs, d_samples, devices, wire) {
        let fp = t.fingerprint();
        let failures = plan.failed_attempts(fp, occ.next(fp));
        bytes += failures as u64 * t.bytes;
        msgs += failures as usize;
    }
    (bytes, msgs)
}

/// [`SimComparison`] extended with the fault plan's predicted retry
/// traffic: the executor's measured bytes (which include every charged
/// re-transfer) are checked against `sim + retries` instead of `sim`.
#[derive(Clone, Debug)]
pub struct FaultComparison {
    /// The fault-free comparison (its `predicted_bytes` excludes retries).
    pub base: SimComparison,
    /// Retry bytes the plan predicts over the transfer census.
    pub predicted_retry_bytes: u64,
    /// Retry messages the plan predicts over the transfer census.
    pub predicted_retry_messages: usize,
}

impl FaultComparison {
    /// Total predicted bytes including retry traffic.
    pub fn predicted_bytes(&self) -> u64 {
        self.base.predicted_bytes + self.predicted_retry_bytes
    }

    /// Whether the executor's byte total (retries included) exactly equals
    /// the extended simulator's prediction.
    pub fn bytes_match(&self) -> bool {
        self.base.measured_bytes == self.predicted_bytes()
    }
}

/// Compare a faulted execution report against the simulator's prediction
/// extended with `plan`'s deterministic retry traffic. The base
/// comparison is [`compare_with_simulator`] unchanged; on top of it the
/// census replay predicts exactly which transfers fail how many attempts
/// and therefore how many re-transfer bytes the fabric charged.
pub fn compare_with_simulator_faulted(
    report: &ExecReport,
    specs: &[LevelSpec],
    d_samples: usize,
    model: &DeviceModel,
    plan: &FaultPlan,
) -> FaultComparison {
    let base = compare_with_simulator(report, specs, d_samples, model);
    let (predicted_retry_bytes, predicted_retry_messages) =
        predicted_fault_traffic(specs, d_samples, report.devices, report.wire, plan);
    FaultComparison {
        base,
        predicted_retry_bytes,
        predicted_retry_messages,
    }
}
