//! Sherman–Morrison–Woodbury solves for low-rank-updated operators.
//!
//! The paper's third application recompresses `A + P Qᵀ` (an H2 matrix plus
//! a low-rank product, [`h2_matrix::LowRankUpdate`]). When the goal is a
//! *solve* rather than a recompression, the Woodbury identity avoids
//! refactoring:
//!
//! `(A + P Qᵀ)⁻¹ b = A⁻¹ b - A⁻¹ P (I + Qᵀ A⁻¹ P)⁻¹ Qᵀ A⁻¹ b`
//!
//! Any solver for `A` works as the inner solve — a [`crate::UlvFactor`], a
//! converged Krylov iteration, or a dense factorization in tests.

use h2_dense::{gemm, lu_factor, matmul, Mat, Op};

/// Solve `(A + P Qᵀ) X = B` given a solver for `A`.
///
/// `solve_a` must apply `A⁻¹` to a block of vectors. Returns `None` when the
/// `k × k` capacitance system `I + Qᵀ A⁻¹ P` is singular (the update makes
/// the operator singular). The tiny-block products read their operands
/// through `gemm`'s transpose flags like the ULV elimination — no
/// materialized transposes, no per-call scratch beyond the capacitance.
pub fn woodbury_solve(solve_a: &dyn Fn(&Mat) -> Mat, p: &Mat, q: &Mat, b: &Mat) -> Option<Mat> {
    let n = b.rows();
    assert_eq!(p.rows(), n, "woodbury: P rows");
    assert_eq!(q.rows(), n, "woodbury: Q rows");
    assert_eq!(p.cols(), q.cols(), "woodbury: update rank mismatch");
    let k = p.cols();

    let ai_b = solve_a(b);
    if k == 0 {
        return Some(ai_b);
    }
    let ai_p = solve_a(p);

    // Capacitance: C = I + Qᵀ A⁻¹ P.
    let mut cap = matmul(Op::Trans, Op::NoTrans, q.rf(), ai_p.rf());
    for i in 0..k {
        cap[(i, i)] += 1.0;
    }
    let lu = lu_factor(cap)?;

    // t = C⁻¹ Qᵀ A⁻¹ b;  x = A⁻¹ b - A⁻¹ P t.
    let qt_aib = matmul(Op::Trans, Op::NoTrans, q.rf(), ai_b.rf());
    let t = lu.solve(&qt_aib);
    let mut x = ai_b;
    gemm(
        Op::NoTrans,
        Op::NoTrans,
        -1.0,
        ai_p.rf(),
        t.rf(),
        1.0,
        x.rm(),
    );
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2_dense::{gaussian_mat, matmul};

    #[test]
    fn woodbury_matches_dense_solve() {
        let n = 60;
        let k = 5;
        let g = gaussian_mat(n, n, 31);
        let mut a = matmul(Op::NoTrans, Op::Trans, g.rf(), g.rf());
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        let p = gaussian_mat(n, k, 32);
        let q = gaussian_mat(n, k, 33);
        let b = gaussian_mat(n, 2, 34);

        let lu_a = lu_factor(a.clone()).unwrap();
        let solve_a = |rhs: &Mat| lu_a.solve(rhs);
        let x = woodbury_solve(&solve_a, &p, &q, &b).unwrap();

        // Dense reference: (A + P Qᵀ) x = b.
        let mut full = a;
        let pqt = matmul(Op::NoTrans, Op::Trans, p.rf(), q.rf());
        full.axpy(1.0, &pqt);
        let want = lu_factor(full).unwrap().solve(&b);
        let mut d = x;
        d.axpy(-1.0, &want);
        assert!(d.norm_max() < 1e-9, "woodbury mismatch {}", d.norm_max());
    }

    #[test]
    fn rank_zero_update_is_plain_solve() {
        let n = 20;
        let g = gaussian_mat(n, n, 35);
        let mut a = matmul(Op::NoTrans, Op::Trans, g.rf(), g.rf());
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        let lu_a = lu_factor(a).unwrap();
        let solve_a = |rhs: &Mat| lu_a.solve(rhs);
        let b = gaussian_mat(n, 1, 36);
        let p = Mat::zeros(n, 0);
        let q = Mat::zeros(n, 0);
        let x = woodbury_solve(&solve_a, &p, &q, &b).unwrap();
        let mut d = x;
        d.axpy(-1.0, &lu_a.solve(&b));
        assert_eq!(d.norm_max(), 0.0);
    }

    #[test]
    fn singular_capacitance_reported() {
        // A = I, P = Q = e1: A + P Qᵀ has (1 + 1) = 2 in the corner — fine.
        // Make it singular instead: P = e1, Q = -e1 -> 1 + qᵀp = 0.
        let n = 10;
        let a = Mat::eye(n);
        let lu_a = lu_factor(a).unwrap();
        let solve_a = |rhs: &Mat| lu_a.solve(rhs);
        let mut p = Mat::zeros(n, 1);
        p[(0, 0)] = 1.0;
        let mut q = Mat::zeros(n, 1);
        q[(0, 0)] = -1.0;
        let b = gaussian_mat(n, 1, 37);
        assert!(woodbury_solve(&solve_a, &p, &q, &b).is_none());
    }
}
