//! Fig. 5(a-c): construction time of Algorithm 1 vs problem size, with the
//! top-down comparators and their total-sample labels.
//!
//! Series reproduced per application (`--app cov | ie | update`):
//! * **CPU** — Algorithm 1 on the sequential backend,
//! * **GPU-sim** — Algorithm 1 on the parallel batched backend (the paper's
//!   GPU execution model; speedup bounded by the machine's core count),
//! * **top-down (ButterflyPACK-style)** — strong-admissibility peeling with
//!   graph colouring: samples grow with log N (paper labels 262→513),
//! * **HODLR-route (H2Opus-style)** — weak-admissibility peeling whose
//!   samples blow up on 3-D geometry (paper labels 4386→18920, then OOM);
//!   run with a sample budget so exhaustion is reported instead of OOM.
//!
//! The black-box sampler `Kblk` is the O(N) matvec of a reference H2 matrix
//! built by the direct constructor (the role H2Opus's matvec plays in the
//! paper).
//!
//! Usage: `--app cov --sizes 8192,16384,32768 [--leaf 64] [--eta 0.7]
//!         [--tol 1e-6] [--d0 256] [--skip-hodlr] [--budget 4096]
//!         [--trace trace.json]`

use h2_baselines::{hodlr_peel, topdown_peel, PeelConfig};
use h2_bench::{build_problem, header, reference_h2, row, App, Args, TraceSink};
use h2_core::{sketch_construct, SketchConfig};
use h2_dense::relative_error_2;
use h2_matrix::LowRankUpdate;
use h2_runtime::Runtime;
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let app = App::from_str(&args.get::<String>("app", "cov".into())).expect("bad --app");
    let sizes = args.sizes("sizes", &[4096, 8192, 16384, 32768]);
    let leaf: usize = args.get("leaf", 64);
    let eta: f64 = args.get("eta", 0.7);
    let tol: f64 = args.get("tol", 1e-6);
    let d0: usize = args.get("d0", 256);
    let budget: usize = args.get("budget", 4096);
    let skip_hodlr = args.flag("skip-hodlr");
    let sink = TraceSink::from_args(&args);

    println!(
        "# Fig. 5({}): construction time vs N  (leaf={leaf}, eta={eta}, tol={tol}, d0={d0})\n",
        app.name()
    );
    header(&[
        "N",
        "t_cpu (s)",
        "t_gpu-sim (s)",
        "speedup",
        "samples (ours)",
        "rel err",
        "t_topdown (s)",
        "samples (topdown)",
        "t_hodlr (s)",
        "samples (hodlr)",
    ]);

    for &n in &sizes {
        let problem = build_problem(
            if app == App::LowRankUpdate {
                App::Covariance
            } else {
                app
            },
            n,
            leaf,
            eta,
            0xF165,
        );
        // Fast reference operator (plays H2Opus's matvec role).
        let reference = reference_h2(&problem, tol * 1e-2);

        // Low-rank update factors (paper: rank 32).
        let update = if app == App::LowRankUpdate {
            let mut p = h2_dense::gaussian_mat(n, 32, 0xF166);
            p.scale(0.05 / (n as f64).sqrt());
            Some(p)
        } else {
            None
        };

        let cfg = SketchConfig {
            tol,
            initial_samples: d0,
            sample_block: 32,
            ..Default::default()
        };

        let run = |rt: &Runtime| {
            let t = Instant::now();
            let (h2, stats) = match &update {
                Some(p) => {
                    let op = LowRankUpdate::symmetric(&reference, p.clone());
                    sketch_construct(
                        &op,
                        &op,
                        problem.tree.clone(),
                        problem.partition.clone(),
                        rt,
                        &cfg,
                    )
                }
                None => sketch_construct(
                    &reference,
                    &problem.kernel,
                    problem.tree.clone(),
                    problem.partition.clone(),
                    rt,
                    &cfg,
                ),
            };
            (t.elapsed().as_secs_f64(), h2, stats)
        };

        let (t_cpu, _, _) = run(&Runtime::sequential());
        let (t_gpu, h2, stats) = run(&sink.runtime());
        let err = match &update {
            Some(p) => {
                let op = LowRankUpdate::symmetric(&reference, p.clone());
                relative_error_2(&op, &h2, 12, 0xF167)
            }
            None => relative_error_2(&reference, &h2, 12, 0xF167),
        };

        // Top-down comparators sketch the same reference operator.
        let pcfg = PeelConfig {
            tol,
            d_block: 32,
            max_samples: budget * 8,
            ..Default::default()
        };
        let t = Instant::now();
        let (_, td_stats) = topdown_peel(
            &reference,
            &problem.kernel,
            problem.tree.clone(),
            problem.partition.clone(),
            &pcfg,
        );
        let t_td = t.elapsed().as_secs_f64();

        let (t_hodlr, hodlr_samples) = if skip_hodlr {
            (f64::NAN, "skipped".to_string())
        } else {
            let hcfg = PeelConfig {
                tol,
                d_block: 64,
                max_samples: budget,
                ..Default::default()
            };
            let t = Instant::now();
            let (_, h_stats) = hodlr_peel(&reference, &problem.kernel, problem.tree.clone(), &hcfg);
            let label = if h_stats.budget_exhausted {
                format!("{} (budget exhausted — paper: OOM)", h_stats.total_samples)
            } else {
                h_stats.total_samples.to_string()
            };
            (t.elapsed().as_secs_f64(), label)
        };

        row(&[
            n.to_string(),
            format!("{t_cpu:.3}"),
            format!("{t_gpu:.3}"),
            format!("{:.2}x", t_cpu / t_gpu),
            stats.total_samples.to_string(),
            format!("{err:.2e}"),
            format!("{t_td:.3}"),
            td_stats.total_samples.to_string(),
            format!("{t_hodlr:.3}"),
            hodlr_samples,
        ]);
    }
    println!("\n(Absolute times are container-scale; the reproduction targets are the O(N) slope of ours,\n the parallel-over-sequential speedup, and the sample-count separation between bottom-up and top-down.)");
    sink.finish();
}
