//! The H2 matrix representation.
//!
//! An H2 matrix (paper §II.A) stores:
//! * explicit bases `U_τ` at leaf clusters,
//! * transfer matrices `E_{ν1}, E_{ν2}` at inner clusters (stored stacked as
//!   one `(k_{ν1}+k_{ν2}) x k_τ` matrix — the nested-basis property,
//!   eq. (2)),
//! * small coupling matrices `B_{s,t} = K(Ĩ_s, Ĩ_t)` for admissible pairs,
//! * dense blocks `D_{s,t} = K(I_s, I_t)` for inadmissible leaf pairs.
//!
//! The matrix is assumed symmetric (paper simplification `V_t = U_t`), so
//! blocks are stored once per unordered pair `(min(s,t), max(s,t))` and the
//! transposed side is applied on the fly.

use h2_dense::Mat;
use h2_tree::{ClusterTree, Partition};
use std::collections::HashMap;
use std::sync::Arc;

/// Storage for per-pair blocks, deduplicated by symmetry (`s <= t`).
#[derive(Default)]
pub struct BlockStore {
    /// Unordered pairs, `s <= t` (node ids).
    pub pairs: Vec<(usize, usize)>,
    /// `blocks[i]` is the block of `pairs[i]`, stored as `K(rows(s), cols(t))`.
    pub blocks: Vec<Mat>,
    index: HashMap<(usize, usize), usize>,
}

impl BlockStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert the block for pair `(s, t)` (stored under the unordered key;
    /// pass the matrix oriented as `K(s-rows, t-cols)` with `s <= t`).
    pub fn insert(&mut self, s: usize, t: usize, block: Mat) {
        assert!(s <= t, "BlockStore stores unordered pairs; pass s <= t");
        let idx = self.blocks.len();
        let prev = self.index.insert((s, t), idx);
        assert!(prev.is_none(), "duplicate block ({s},{t})");
        self.pairs.push((s, t));
        self.blocks.push(block);
    }

    /// Look up the block for the ordered pair `(s, t)`. Returns the stored
    /// matrix and whether it must be transposed (`true` when `s > t`).
    pub fn get(&self, s: usize, t: usize) -> Option<(&Mat, bool)> {
        let key = (s.min(t), s.max(t));
        self.index.get(&key).map(|&i| (&self.blocks[i], s > t))
    }

    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Heap bytes of all blocks.
    pub fn memory_bytes(&self) -> usize {
        self.blocks.iter().map(|b| b.memory_bytes()).sum()
    }
}

/// A symmetric H2 matrix over a cluster tree and block partition.
pub struct H2Matrix {
    pub tree: Arc<ClusterTree>,
    pub partition: Arc<Partition>,
    /// Per node id: leaf basis `U_τ` (`m x k`) or stacked transfer
    /// `[E_{ν1}; E_{ν2}]` (`(k1+k2) x k`). Empty (0x0) for nodes above the
    /// top admissible level, which need no basis.
    pub basis: Vec<Mat>,
    /// Per node id: skeleton (global permuted) indices `Ĩ_τ`, length = rank.
    pub skel: Vec<Vec<usize>>,
    /// Coupling blocks `B_{s,t}` keyed by unordered admissible pairs.
    pub coupling: BlockStore,
    /// Dense leaf blocks `D_{s,t}` keyed by unordered inadmissible leaf pairs.
    pub dense: BlockStore,
}

impl H2Matrix {
    /// An empty shell ready to be populated by a constructor.
    pub fn new_shell(tree: Arc<ClusterTree>, partition: Arc<Partition>) -> Self {
        let nnodes = tree.nodes.len();
        H2Matrix {
            tree,
            partition,
            basis: (0..nnodes).map(|_| Mat::zeros(0, 0)).collect(),
            skel: vec![Vec::new(); nnodes],
            coupling: BlockStore::new(),
            dense: BlockStore::new(),
        }
    }

    pub fn n(&self) -> usize {
        self.tree.npoints()
    }

    /// Rank of node `τ` (0 when it has no basis).
    pub fn rank(&self, node: usize) -> usize {
        self.basis[node].cols()
    }

    /// Whether node `τ` carries a basis.
    pub fn has_basis(&self, node: usize) -> bool {
        self.rank(node) > 0
    }

    /// Total heap bytes of the representation (the paper's Fig. 6 metric).
    pub fn memory_bytes(&self) -> usize {
        let basis: usize = self.basis.iter().map(|b| b.memory_bytes()).sum();
        let skel: usize =
            self.skel.iter().map(|s| s.len() * std::mem::size_of::<usize>()).sum();
        basis + skel + self.coupling.memory_bytes() + self.dense.memory_bytes()
    }

    /// Memory broken down by component, in bytes.
    pub fn memory_breakdown(&self) -> MemoryBreakdown {
        MemoryBreakdown {
            basis: self.basis.iter().map(|b| b.memory_bytes()).sum(),
            coupling: self.coupling.memory_bytes(),
            dense: self.dense.memory_bytes(),
        }
    }

    /// `(min, max)` rank over all nodes with a basis (Table II "Rank range").
    pub fn rank_range(&self) -> (usize, usize) {
        let ranks: Vec<usize> =
            (0..self.basis.len()).map(|i| self.rank(i)).filter(|&r| r > 0).collect();
        match (ranks.iter().min(), ranks.iter().max()) {
            (Some(&a), Some(&b)) => (a, b),
            _ => (0, 0),
        }
    }

    /// Per-level `(min, max, mean)` rank statistics.
    pub fn rank_stats_per_level(&self) -> Vec<(usize, usize, f64)> {
        (0..self.tree.nlevels())
            .map(|l| {
                let ranks: Vec<usize> =
                    self.tree.level(l).map(|id| self.rank(id)).filter(|&r| r > 0).collect();
                if ranks.is_empty() {
                    (0, 0, 0.0)
                } else {
                    let mn = *ranks.iter().min().unwrap();
                    let mx = *ranks.iter().max().unwrap();
                    let mean = ranks.iter().sum::<usize>() as f64 / ranks.len() as f64;
                    (mn, mx, mean)
                }
            })
            .collect()
    }

    /// Structural sanity checks: basis shapes consistent with tree and
    /// children ranks, skeleton indices inside cluster ranges, block shapes
    /// consistent with ranks / cluster sizes, all partition blocks present.
    pub fn validate(&self) -> Result<(), String> {
        let tree = &self.tree;
        let leaf_level = tree.leaf_level();
        for (id, c) in tree.nodes.iter().enumerate() {
            let k = self.rank(id);
            if k == 0 {
                continue;
            }
            let b = &self.basis[id];
            if tree.level_of(id) == leaf_level {
                if b.rows() != c.len() {
                    return Err(format!("leaf {id}: basis rows {} != cluster size {}", b.rows(), c.len()));
                }
            } else {
                let (c1, c2) = c.children.unwrap();
                let want = self.rank(c1) + self.rank(c2);
                if b.rows() != want {
                    return Err(format!(
                        "inner {id}: transfer rows {} != child ranks {want}",
                        b.rows()
                    ));
                }
            }
            if self.skel[id].len() != k {
                return Err(format!("node {id}: skeleton len != rank"));
            }
            for &i in &self.skel[id] {
                if i < c.begin || i >= c.end {
                    return Err(format!("node {id}: skeleton index {i} outside cluster"));
                }
            }
        }
        // Every admissible pair has a coupling block of matching shape.
        for (s, list) in self.partition.far_of.iter().enumerate() {
            for &t in list.iter().filter(|&&t| s <= t) {
                match self.coupling.get(s, t) {
                    None => return Err(format!("missing coupling block ({s},{t})")),
                    Some((b, _)) => {
                        if b.rows() != self.rank(s) || b.cols() != self.rank(t) {
                            return Err(format!(
                                "coupling ({s},{t}) shape {}x{} != ranks {}x{}",
                                b.rows(),
                                b.cols(),
                                self.rank(s),
                                self.rank(t)
                            ));
                        }
                    }
                }
            }
        }
        // Every near pair has a dense block of matching shape.
        for (s, list) in self.partition.near_of.iter().enumerate() {
            for &t in list.iter().filter(|&&t| s <= t) {
                match self.dense.get(s, t) {
                    None => return Err(format!("missing dense block ({s},{t})")),
                    Some((b, _)) => {
                        if b.rows() != tree.nodes[s].len() || b.cols() != tree.nodes[t].len() {
                            return Err(format!("dense ({s},{t}) shape mismatch"));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Bytes per component of an [`H2Matrix`].
#[derive(Clone, Copy, Debug)]
pub struct MemoryBreakdown {
    pub basis: usize,
    pub coupling: usize,
    pub dense: usize,
}

impl MemoryBreakdown {
    pub fn total(&self) -> usize {
        self.basis + self.coupling + self.dense
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_store_symmetric_lookup() {
        let mut s = BlockStore::new();
        s.insert(2, 5, Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let (b, t) = s.get(2, 5).unwrap();
        assert!(!t);
        assert_eq!(b[(0, 1)], 2.0);
        let (b2, t2) = s.get(5, 2).unwrap();
        assert!(t2);
        assert_eq!(b2[(0, 1)], 2.0);
        assert!(s.get(1, 1).is_none());
    }

    #[test]
    #[should_panic(expected = "s <= t")]
    fn block_store_rejects_unordered() {
        let mut s = BlockStore::new();
        s.insert(5, 2, Mat::zeros(1, 1));
    }

    #[test]
    fn memory_accounting() {
        let mut s = BlockStore::new();
        s.insert(0, 1, Mat::zeros(10, 10));
        s.insert(1, 2, Mat::zeros(5, 4));
        assert_eq!(s.memory_bytes(), (100 + 20) * 8);
    }
}
