//! Sherman–Morrison–Woodbury solves for low-rank-updated operators.
//!
//! The paper's third application recompresses `A + P Qᵀ` (an H2 matrix plus
//! a low-rank product, [`h2_matrix::LowRankUpdate`]). When the goal is a
//! *solve* rather than a recompression, the Woodbury identity avoids
//! refactoring:
//!
//! `(A + P Qᵀ)⁻¹ b = A⁻¹ b - A⁻¹ P (I + Qᵀ A⁻¹ P)⁻¹ Qᵀ A⁻¹ b`
//!
//! Any solver for `A` works as the inner solve — a [`crate::UlvFactor`], a
//! converged Krylov iteration, or a dense factorization in tests.

use h2_dense::{gemm_rhs, lu_factor, matmul, Mat, MatMut, MatRef, Op};

/// Solve `(A + P Qᵀ) X = B` given a solver for `A`.
///
/// `solve_a` applies `A⁻¹` to a block of vectors *into a caller-owned
/// buffer* — the `apply_inv_into` shape of [`crate::Preconditioner`], so an
/// inner [`crate::UlvFactor`] (or any blocked solver) runs allocation-free
/// and a multi-column `B` flows through one blocked inner solve per
/// application instead of a column loop. Returns `None` when the `k × k`
/// capacitance system `I + Qᵀ A⁻¹ P` is singular (the update makes the
/// operator singular). The tiny-block products read their operands through
/// `gemm`'s transpose flags like the ULV elimination — no materialized
/// transposes, no per-call scratch beyond the capacitance; the rank-update
/// correction uses [`gemm_rhs`] so each solution column is bitwise
/// independent of the block width, matching the blocked sweep it wraps.
pub fn woodbury_solve<F: Fn(MatRef<'_>, MatMut<'_>)>(
    solve_a: F,
    p: &Mat,
    q: &Mat,
    b: &Mat,
) -> Option<Mat> {
    let n = b.rows();
    assert_eq!(p.rows(), n, "woodbury: P rows");
    assert_eq!(q.rows(), n, "woodbury: Q rows");
    assert_eq!(p.cols(), q.cols(), "woodbury: update rank mismatch");
    let k = p.cols();

    let mut ai_b = Mat::zeros(n, b.cols());
    solve_a(b.rf(), ai_b.rm());
    if k == 0 {
        return Some(ai_b);
    }
    let mut ai_p = Mat::zeros(n, k);
    solve_a(p.rf(), ai_p.rm());

    // Capacitance: C = I + Qᵀ A⁻¹ P.
    let mut cap = matmul(Op::Trans, Op::NoTrans, q.rf(), ai_p.rf());
    for i in 0..k {
        cap[(i, i)] += 1.0;
    }
    let lu = lu_factor(cap)?;

    // t = C⁻¹ Qᵀ A⁻¹ b;  x = A⁻¹ b - A⁻¹ P t.
    let qt_aib = matmul(Op::Trans, Op::NoTrans, q.rf(), ai_b.rf());
    let t = lu.solve(&qt_aib);
    let mut x = ai_b;
    gemm_rhs(
        Op::NoTrans,
        Op::NoTrans,
        -1.0,
        ai_p.rf(),
        t.rf(),
        1.0,
        x.rm(),
    );
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2_dense::{gaussian_mat, matmul};

    #[test]
    fn woodbury_matches_dense_solve() {
        let n = 60;
        let k = 5;
        let g = gaussian_mat(n, n, 31);
        let mut a = matmul(Op::NoTrans, Op::Trans, g.rf(), g.rf());
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        let p = gaussian_mat(n, k, 32);
        let q = gaussian_mat(n, k, 33);
        let b = gaussian_mat(n, 2, 34);

        let lu_a = lu_factor(a.clone()).unwrap();
        let solve_a =
            |rhs: MatRef<'_>, mut out: MatMut<'_>| out.copy_from(lu_a.solve(&rhs.to_mat()).rf());
        let x = woodbury_solve(solve_a, &p, &q, &b).unwrap();

        // Dense reference: (A + P Qᵀ) x = b.
        let mut full = a;
        let pqt = matmul(Op::NoTrans, Op::Trans, p.rf(), q.rf());
        full.axpy(1.0, &pqt);
        let want = lu_factor(full).unwrap().solve(&b);
        let mut d = x;
        d.axpy(-1.0, &want);
        assert!(d.norm_max() < 1e-9, "woodbury mismatch {}", d.norm_max());
    }

    #[test]
    fn multi_column_rhs_through_one_blocked_path() {
        // The k>1 pin: an 8-column B must go through the same blocked inner
        // solves, and each column must equal its own single-column solve
        // bitwise (the inner solver here is column-independent LU).
        let n = 48;
        let k = 4;
        let d = 8;
        let g = gaussian_mat(n, n, 41);
        let mut a = matmul(Op::NoTrans, Op::Trans, g.rf(), g.rf());
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        let p = gaussian_mat(n, k, 42);
        let q = gaussian_mat(n, k, 43);
        let b = gaussian_mat(n, d, 44);
        let lu_a = lu_factor(a).unwrap();
        let calls = std::cell::Cell::new(0usize);
        let solve_a = |rhs: MatRef<'_>, mut out: MatMut<'_>| {
            calls.set(calls.get() + 1);
            out.copy_from(lu_a.solve(&rhs.to_mat()).rf());
        };
        let x = woodbury_solve(solve_a, &p, &q, &b).unwrap();
        // Exactly two inner applications regardless of d: A⁻¹B and A⁻¹P.
        assert_eq!(calls.get(), 2);
        for j in 0..d {
            let bj = b.col_block(j, 1).to_mat();
            let xj = woodbury_solve(solve_a, &p, &q, &bj).unwrap();
            assert_eq!(
                x.col(j),
                xj.as_slice(),
                "blocked woodbury column {j} drifted from its single solve"
            );
        }
    }

    #[test]
    fn rank_zero_update_is_plain_solve() {
        let n = 20;
        let g = gaussian_mat(n, n, 35);
        let mut a = matmul(Op::NoTrans, Op::Trans, g.rf(), g.rf());
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        let lu_a = lu_factor(a).unwrap();
        let solve_a =
            |rhs: MatRef<'_>, mut out: MatMut<'_>| out.copy_from(lu_a.solve(&rhs.to_mat()).rf());
        let b = gaussian_mat(n, 1, 36);
        let p = Mat::zeros(n, 0);
        let q = Mat::zeros(n, 0);
        let x = woodbury_solve(solve_a, &p, &q, &b).unwrap();
        let mut d = x;
        d.axpy(-1.0, &lu_a.solve(&b));
        assert_eq!(d.norm_max(), 0.0);
    }

    #[test]
    fn singular_capacitance_reported() {
        // A = I, P = Q = e1: A + P Qᵀ has (1 + 1) = 2 in the corner — fine.
        // Make it singular instead: P = e1, Q = -e1 -> 1 + qᵀp = 0.
        let n = 10;
        let a = Mat::eye(n);
        let lu_a = lu_factor(a).unwrap();
        let solve_a =
            |rhs: MatRef<'_>, mut out: MatMut<'_>| out.copy_from(lu_a.solve(&rhs.to_mat()).rf());
        let mut p = Mat::zeros(n, 1);
        p[(0, 0)] = 1.0;
        let mut q = Mat::zeros(n, 1);
        q[(0, 0)] = -1.0;
        let b = gaussian_mat(n, 1, 37);
        assert!(woodbury_solve(solve_a, &p, &q, &b).is_none());
    }
}
