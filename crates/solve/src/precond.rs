//! Preconditioners assembled from H2 representations.

use h2_dense::{lu_factor, EntryAccess, LuFactor, Mat, MatMut, MatRef};
use h2_matrix::H2Matrix;
use h2_tree::ClusterTree;
use rayon::prelude::*;

/// Application of an (approximate) inverse `z = M⁻¹ r`.
pub trait Preconditioner: Sync {
    fn n(&self) -> usize;

    /// Apply `M⁻¹` to a block of vectors.
    fn apply_inv(&self, r: &Mat) -> Mat;

    /// Apply `M⁻¹` into a caller-owned buffer — the per-iteration entry
    /// point of the Krylov methods, so a preconditioner that can solve in
    /// place (identity, diagonal and block scalings) pays no allocation
    /// per application. The default routes through [`Preconditioner::apply_inv`].
    fn apply_inv_into(&self, r: MatRef<'_>, mut z: MatMut<'_>) {
        z.copy_from(self.apply_inv(&r.to_mat()).rf());
    }
}

/// No preconditioning (`M = I`).
pub struct Identity {
    pub n: usize,
}

impl Preconditioner for Identity {
    fn n(&self) -> usize {
        self.n
    }

    fn apply_inv(&self, r: &Mat) -> Mat {
        r.clone()
    }

    fn apply_inv_into(&self, r: MatRef<'_>, mut z: MatMut<'_>) {
        z.copy_from(r);
    }
}

/// Point-Jacobi: `M = diag(A)`.
pub struct DiagJacobi {
    inv_diag: Vec<f64>,
}

impl DiagJacobi {
    /// Build from entry access; zero diagonal entries are left unscaled.
    pub fn new(gen: &dyn EntryAccess, n: usize) -> Self {
        let inv_diag = (0..n)
            .map(|i| {
                let d = gen.entry(i, i);
                if d != 0.0 {
                    1.0 / d
                } else {
                    1.0
                }
            })
            .collect();
        DiagJacobi { inv_diag }
    }
}

impl Preconditioner for DiagJacobi {
    fn n(&self) -> usize {
        self.inv_diag.len()
    }

    fn apply_inv(&self, r: &Mat) -> Mat {
        let mut z = Mat::zeros(r.rows(), r.cols());
        self.apply_inv_into(r.rf(), z.rm());
        z
    }

    fn apply_inv_into(&self, r: MatRef<'_>, mut z: MatMut<'_>) {
        for j in 0..r.cols() {
            let src = r.col(j);
            let dst = z.col_mut(j);
            for i in 0..src.len() {
                dst[i] = src[i] * self.inv_diag[i];
            }
        }
    }
}

/// Block-Jacobi from the leaf diagonal blocks of the cluster tree:
/// `M = blockdiag(K(I_τ, I_τ))` over leaves `τ`, each block LU-factored.
///
/// For an H2 matrix these are exactly the stored near-field diagonal
/// blocks, so assembly costs nothing beyond the factorizations.
pub struct BlockJacobi {
    ranges: Vec<(usize, usize)>,
    factors: Vec<LuFactor>,
    n: usize,
}

/// Blocks must be nonsingular; returns the offending leaf range otherwise.
#[derive(Debug)]
pub struct SingularBlock(pub (usize, usize));

impl BlockJacobi {
    /// Assemble from the stored diagonal blocks of an H2 matrix.
    pub fn from_h2(h2: &H2Matrix) -> Result<Self, SingularBlock> {
        let tree = &h2.tree;
        let leaves: Vec<usize> = tree.level(tree.leaf_level()).collect();
        let blocks: Vec<Mat> = leaves
            .iter()
            .map(|&s| {
                let (blk, _) = h2.dense.get(s, s).expect("diagonal block");
                blk.clone()
            })
            .collect();
        let ranges: Vec<(usize, usize)> = leaves.iter().map(|&s| tree.range(s)).collect();
        Self::from_blocks(ranges, blocks, tree.npoints())
    }

    /// Assemble by evaluating diagonal blocks from entry access.
    pub fn from_entry(gen: &dyn EntryAccess, tree: &ClusterTree) -> Result<Self, SingularBlock> {
        let leaves: Vec<usize> = tree.level(tree.leaf_level()).collect();
        let ranges: Vec<(usize, usize)> = leaves.iter().map(|&s| tree.range(s)).collect();
        let blocks: Vec<Mat> = ranges
            .par_iter()
            .map(|&(b, e)| {
                let idx: Vec<usize> = (b..e).collect();
                gen.block_mat(&idx, &idx)
            })
            .collect();
        Self::from_blocks(ranges, blocks, tree.npoints())
    }

    fn from_blocks(
        ranges: Vec<(usize, usize)>,
        blocks: Vec<Mat>,
        n: usize,
    ) -> Result<Self, SingularBlock> {
        let factors: Vec<Result<LuFactor, SingularBlock>> = blocks
            .into_par_iter()
            .zip(ranges.par_iter())
            .map(|(blk, &rng)| lu_factor(blk).ok_or(SingularBlock(rng)))
            .collect();
        let mut out = Vec::with_capacity(factors.len());
        for f in factors {
            out.push(f?);
        }
        Ok(BlockJacobi {
            ranges,
            factors: out,
            n,
        })
    }
}

impl Preconditioner for BlockJacobi {
    fn n(&self) -> usize {
        self.n
    }

    fn apply_inv(&self, r: &Mat) -> Mat {
        assert_eq!(r.rows(), self.n);
        let d = r.cols();
        let pieces: Vec<(usize, Mat)> = self
            .ranges
            .par_iter()
            .zip(self.factors.par_iter())
            .map(|(&(b, e), f)| {
                let rb = r.view(b, 0, e - b, d).to_mat();
                (b, f.solve(&rb))
            })
            .collect();
        let mut z = Mat::zeros(self.n, d);
        for (b, piece) in pieces {
            z.view_mut(b, 0, piece.rows(), d).copy_from(piece.rf());
        }
        z
    }

    /// Into-buffer application. With one worker the input is copied once
    /// and each leaf block solves in place (allocation-free); with a pool
    /// the disjoint leaf solves run in parallel like
    /// [`BlockJacobi::apply_inv`] — per-iteration wall clock beats the
    /// small per-piece allocations there.
    fn apply_inv_into(&self, r: MatRef<'_>, mut z: MatMut<'_>) {
        assert_eq!(r.rows(), self.n);
        let d = r.cols();
        if rayon::current_num_threads() <= 1 {
            z.copy_from(r);
            for (&(b, e), f) in self.ranges.iter().zip(self.factors.iter()) {
                f.solve_in_place(&mut z.rb_mut().into_view(b, 0, e - b, d));
            }
            return;
        }
        let pieces: Vec<(usize, Mat)> = self
            .ranges
            .par_iter()
            .zip(self.factors.par_iter())
            .map(|(&(b, e), f)| {
                let rb = r.view(b, 0, e - b, d).to_mat();
                (b, f.solve(&rb))
            })
            .collect();
        for (b, piece) in pieces {
            z.rb_mut()
                .into_view(b, 0, piece.rows(), d)
                .copy_from(piece.rf());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2_dense::DenseOp;

    #[test]
    fn identity_is_identity() {
        let r = Mat::from_fn(5, 2, |i, j| (i + 10 * j) as f64);
        let m = Identity { n: 5 };
        assert_eq!(m.apply_inv(&r), r);
    }

    #[test]
    fn diag_jacobi_scales_by_inverse_diagonal() {
        let a = Mat::from_rows(&[&[4.0, 1.0], &[1.0, 2.0]]);
        let op = DenseOp::new(a);
        let m = DiagJacobi::new(&op, 2);
        let r = Mat::from_rows(&[&[8.0], &[4.0]]);
        let z = m.apply_inv(&r);
        assert_eq!(z[(0, 0)], 2.0);
        assert_eq!(z[(1, 0)], 2.0);
    }

    #[test]
    fn diag_jacobi_skips_zero_diagonal() {
        let a = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 2.0]]);
        let op = DenseOp::new(a);
        let m = DiagJacobi::new(&op, 2);
        let r = Mat::from_rows(&[&[3.0], &[4.0]]);
        let z = m.apply_inv(&r);
        assert_eq!(z[(0, 0)], 3.0, "zero diagonal left unscaled");
        assert_eq!(z[(1, 0)], 2.0);
    }

    #[test]
    fn block_jacobi_exact_on_block_diagonal_matrix() {
        use h2_tree::ClusterTree;
        // Points on a line so the KD tree gives predictable leaves.
        let pts: Vec<[f64; 3]> = (0..64).map(|i| [i as f64, 0.0, 0.0]).collect();
        let tree = ClusterTree::build(&pts, 16);
        // A block-diagonal matrix matching the leaf structure exactly.
        let mut a = Mat::zeros(64, 64);
        for s in tree.level(tree.leaf_level()) {
            let (b, e) = tree.range(s);
            for i in b..e {
                for j in b..e {
                    a[(i, j)] = if i == j { 4.0 } else { 0.5 };
                }
            }
        }
        let op = DenseOp::new(a.clone());
        let m = BlockJacobi::from_entry(&op, &tree).unwrap();
        let b = h2_dense::gaussian_mat(64, 2, 7);
        let z = m.apply_inv(&b);
        // M = A here, so A z = b.
        let az = h2_dense::matmul(h2_dense::Op::NoTrans, h2_dense::Op::NoTrans, a.rf(), z.rf());
        let mut d = az;
        d.axpy(-1.0, &b);
        assert!(
            d.norm_max() < 1e-12,
            "block-Jacobi must invert its own blocks"
        );
    }

    #[test]
    fn block_jacobi_reports_singular_block() {
        use h2_tree::ClusterTree;
        let pts: Vec<[f64; 3]> = (0..32).map(|i| [i as f64, 0.0, 0.0]).collect();
        let tree = ClusterTree::build(&pts, 16);
        let op = DenseOp::new(Mat::zeros(32, 32));
        assert!(BlockJacobi::from_entry(&op, &tree).is_err());
    }
}
