//! Property tests for the `batchedBSRGemm` kernel: equivalence with a dense
//! block-matrix product over random patterns, block orientations, and both
//! backends, plus conflict-freedom of the slot decomposition.

use h2_dense::{gaussian_mat, gemm, Op};
use h2_runtime::{bsr_gemm, BsrBlock, BsrPattern, Runtime, VarBatch};
use proptest::prelude::*;

/// Random level structure: row sizes, column sizes, adjacency, orientation.
#[derive(Debug, Clone)]
struct Case {
    row_sizes: Vec<usize>,
    col_sizes: Vec<usize>,
    adj: Vec<Vec<usize>>,
    transposed: Vec<Vec<bool>>,
    d: usize,
    seed: u64,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (2usize..6, 2usize..6, 1usize..5, 0u64..10_000).prop_flat_map(|(nr, nc, d, seed)| {
        let row_sizes = proptest::collection::vec(1usize..7, nr..=nr);
        let col_sizes = proptest::collection::vec(1usize..7, nc..=nc);
        let adj = proptest::collection::vec(proptest::collection::vec(0usize..nc, 0..nc), nr..=nr);
        (row_sizes, col_sizes, adj).prop_flat_map(move |(rs, cs, mut adj)| {
            // Dedup partners within a row (BSR positions are unique).
            for a in adj.iter_mut() {
                a.sort_unstable();
                a.dedup();
            }
            let flips: Vec<usize> = adj.iter().map(|a| a.len()).collect();
            let total: usize = flips.iter().sum();
            proptest::collection::vec(proptest::bool::ANY, total..=total).prop_map(move |bits| {
                let mut transposed = Vec::new();
                let mut it = bits.into_iter();
                for a in &adj {
                    transposed.push(a.iter().map(|_| it.next().unwrap()).collect());
                }
                Case {
                    row_sizes: rs.clone(),
                    col_sizes: cs.clone(),
                    adj: adj.clone(),
                    transposed,
                    d,
                    seed,
                }
            })
        })
    })
}

fn run_case(case: &Case, rt: &Runtime) -> (VarBatch, VarBatch) {
    let pattern = BsrPattern::from_rows(&case.adj);
    assert!(pattern.validate());

    // Blocks: op(block) must map X_col (col_size x d) into Y_row.
    let mut mats = Vec::new();
    let mut rng_seed = case.seed;
    for (r, partners) in case.adj.iter().enumerate() {
        for (pi, &c) in partners.iter().enumerate() {
            rng_seed = rng_seed.wrapping_add(1);
            let (m, n) = (case.row_sizes[r], case.col_sizes[c]);
            let stored = if case.transposed[r][pi] {
                gaussian_mat(n, m, rng_seed)
            } else {
                gaussian_mat(m, n, rng_seed)
            };
            mats.push(stored);
        }
    }
    let mut blocks = Vec::new();
    let mut k = 0;
    for (r, partners) in case.adj.iter().enumerate() {
        for (pi, _) in partners.iter().enumerate() {
            blocks.push(BsrBlock {
                mat: &mats[k],
                transposed: case.transposed[r][pi],
            });
            k += 1;
        }
    }

    // Inputs and outputs.
    let mut x = VarBatch::zeros_uniform_cols(case.col_sizes.clone(), case.d);
    for i in 0..x.count() {
        let g = gaussian_mat(case.col_sizes[i], case.d, case.seed ^ (i as u64 + 99));
        x.set(i, g.rf());
    }
    let mut y = VarBatch::zeros_uniform_cols(case.row_sizes.clone(), case.d);
    for i in 0..y.count() {
        let g = gaussian_mat(case.row_sizes[i], case.d, case.seed ^ (i as u64 + 777));
        y.set(i, g.rf());
    }
    let y0 = y.clone_like();

    bsr_gemm(rt, &pattern, &blocks, &x, &mut y, -1.0);

    // Dense reference.
    let mut want = y0;
    let mut k = 0;
    for (r, partners) in case.adj.iter().enumerate() {
        for (pi, &c) in partners.iter().enumerate() {
            let op = if case.transposed[r][pi] {
                Op::Trans
            } else {
                Op::NoTrans
            };
            let mut m = want.to_mat(r);
            gemm(op, Op::NoTrans, -1.0, mats[k].rf(), x.mat(c), 1.0, m.rm());
            want.set(r, m.rf());
            k += 1;
        }
    }
    (y, want)
}

/// VarBatch lacks Clone; local helper for the reference copy.
trait CloneLike {
    fn clone_like(&self) -> VarBatch;
}

impl CloneLike for VarBatch {
    fn clone_like(&self) -> VarBatch {
        let rows: Vec<usize> = (0..self.count()).map(|i| self.rows_of(i)).collect();
        let cols: Vec<usize> = (0..self.count()).map(|i| self.cols_of(i)).collect();
        let mut out = VarBatch::zeros(rows, cols);
        for i in 0..self.count() {
            out.set(i, self.mat(i));
        }
        out
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// bsr_gemm == dense block product, on both backends, for any pattern
    /// and any mix of stored orientations.
    #[test]
    fn bsr_matches_dense_reference(case in case_strategy()) {
        for rt in [Runtime::sequential(), Runtime::parallel()] {
            let (got, want) = run_case(&case, &rt);
            for i in 0..got.count() {
                let g = got.to_mat(i);
                let w = want.to_mat(i);
                let mut d = g;
                d.axpy(-1.0, &w);
                prop_assert!(d.norm_max() < 1e-11,
                    "row {i} mismatch {} on {:?}", d.norm_max(), rt.backend());
            }
        }
    }

    /// The slot decomposition launches at most Csp kernels and touches each
    /// block exactly once.
    #[test]
    fn slot_decomposition_is_csp_bounded(case in case_strategy()) {
        let pattern = BsrPattern::from_rows(&case.adj);
        let csp = case.adj.iter().map(|a| a.len()).max().unwrap_or(0);
        prop_assert_eq!(pattern.csp(), csp);
        let rt = Runtime::sequential();
        let before = rt.profile().launches(h2_runtime::Kernel::BsrGemm);
        let (_, _) = run_case(&case, &rt);
        let after = rt.profile().launches(h2_runtime::Kernel::BsrGemm);
        prop_assert_eq!(after - before, csp, "one launch per slot");
    }
}

/// Alpha scaling: bsr_gemm with alpha and -alpha cancel.
#[test]
fn alpha_linearity() {
    let adj = vec![vec![0, 1], vec![1]];
    let pattern = BsrPattern::from_rows(&adj);
    let b0 = gaussian_mat(3, 2, 1);
    let b1 = gaussian_mat(3, 4, 2);
    let b2 = gaussian_mat(2, 4, 3);
    let blocks = vec![
        BsrBlock::plain(&b0),
        BsrBlock::plain(&b1),
        BsrBlock::plain(&b2),
    ];
    let mut x = VarBatch::zeros_uniform_cols(vec![2, 4], 3);
    x.set(0, gaussian_mat(2, 3, 4).rf());
    x.set(1, gaussian_mat(4, 3, 5).rf());
    let mut y = VarBatch::zeros_uniform_cols(vec![3, 2], 3);
    let rt = Runtime::sequential();
    bsr_gemm(&rt, &pattern, &blocks, &x, &mut y, 2.5);
    bsr_gemm(&rt, &pattern, &blocks, &x, &mut y, -2.5);
    for i in 0..2 {
        assert!(y.to_mat(i).norm_max() < 1e-12);
    }
}
