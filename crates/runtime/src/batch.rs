//! Variable-size batched matrix workspaces.
//!
//! The paper avoids per-node allocations by computing the total size of each
//! level's workspace with a parallel prefix sum and making a *single*
//! allocation per operation (§IV.A). [`VarBatch`] reproduces that layout: one
//! contiguous buffer holding `count` column-major matrices of per-entry
//! shapes `(rows[i], cols[i])`, with offsets from the prefix sum.

use h2_dense::{Mat, MatMut, MatRef};
use rayon::prelude::*;

/// Contiguous chunk bounds over `n` batch entries such that every chunk
/// carries roughly the same total `cost` — the cost-aware analogue of
/// [`crate::shard::chunk_bounds`], used by every threaded and sharded batch
/// path to size its *execution* chunks by estimated flops instead of entry
/// count. A prefix sum over the per-entry costs is cut at the `parts`
/// equal-cost quantiles, so a handful of huge top-level blocks no longer
/// land in one chunk with a thousand leaves in another.
///
/// Degenerate inputs fall back to count-based chunking (all-zero costs) and
/// the result always satisfies `bounds[0] == 0`, `bounds[parts] == n`,
/// monotone — the same contract as `chunk_bounds`.
pub fn cost_chunk_bounds<C: Fn(usize) -> f64>(n: usize, parts: usize, cost: C) -> Vec<usize> {
    let parts = parts.max(1);
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0.0f64);
    let mut acc = 0.0f64;
    for i in 0..n {
        let c = cost(i);
        acc += if c.is_finite() && c > 0.0 { c } else { 0.0 };
        prefix.push(acc);
    }
    if acc <= 0.0 {
        return crate::shard::chunk_bounds(n, parts);
    }
    let mut bounds = Vec::with_capacity(parts + 1);
    bounds.push(0usize);
    let mut lo = 0usize;
    for d in 1..parts {
        let target = acc * d as f64 / parts as f64;
        // First i with prefix[i] >= target, kept monotone w.r.t. prior cuts.
        let i = lo + prefix[lo..].partition_point(|&v| v < target);
        let i = i.min(n);
        bounds.push(i);
        lo = i;
    }
    bounds.push(n);
    bounds
}

/// A batch of variable-size column-major matrices in one allocation.
pub struct VarBatch {
    rows: Vec<usize>,
    cols: Vec<usize>,
    offsets: Vec<usize>, // length count + 1 (exclusive prefix sum)
    buf: Vec<f64>,
}

impl VarBatch {
    /// Allocate a zero-filled batch with the given per-entry shapes.
    ///
    /// The offset table is an exclusive prefix sum over `rows[i] * cols[i]` —
    /// the direct analogue of the paper's Thrust `exclusive_scan` +
    /// single `cudaMalloc`.
    pub fn zeros(rows: Vec<usize>, cols: Vec<usize>) -> Self {
        assert_eq!(rows.len(), cols.len(), "VarBatch: shape arrays must align");
        let mut offsets = Vec::with_capacity(rows.len() + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for i in 0..rows.len() {
            acc += rows[i] * cols[i];
            offsets.push(acc);
        }
        VarBatch {
            rows,
            cols,
            offsets,
            buf: vec![0.0; acc],
        }
    }

    /// Batch with the same column count `d` for every entry (the per-level
    /// sample layout: row counts vary with cluster size/rank, `d` is shared).
    pub fn zeros_uniform_cols(rows: Vec<usize>, d: usize) -> Self {
        let cols = vec![d; rows.len()];
        VarBatch::zeros(rows, cols)
    }

    pub fn count(&self) -> usize {
        self.rows.len()
    }

    pub fn rows_of(&self, i: usize) -> usize {
        self.rows[i]
    }

    pub fn cols_of(&self, i: usize) -> usize {
        self.cols[i]
    }

    /// Total scalar footprint of the batch.
    pub fn total_len(&self) -> usize {
        *self.offsets.last().unwrap_or(&0)
    }

    pub fn memory_bytes(&self) -> usize {
        self.buf.len() * std::mem::size_of::<f64>()
    }

    /// Immutable view of entry `i`.
    pub fn mat(&self, i: usize) -> MatRef<'_> {
        let (r, c) = (self.rows[i], self.cols[i]);
        MatRef::from_parts(
            r,
            c,
            r.max(1),
            &self.buf[self.offsets[i]..self.offsets[i + 1]],
        )
    }

    /// Mutable view of entry `i`.
    pub fn mat_mut(&mut self, i: usize) -> MatMut<'_> {
        let (r, c) = (self.rows[i], self.cols[i]);
        let range = self.offsets[i]..self.offsets[i + 1];
        MatMut::from_parts(r, c, r.max(1), &mut self.buf[range])
    }

    /// Owned copy of entry `i`.
    pub fn to_mat(&self, i: usize) -> Mat {
        self.mat(i).to_mat()
    }

    /// Copy a same-shape matrix into entry `i`.
    pub fn set(&mut self, i: usize, src: MatRef<'_>) {
        self.mat_mut(i).copy_from(src);
    }

    /// Visit every entry mutably, in parallel when `parallel` is set.
    ///
    /// The entries occupy disjoint sub-slices of the shared buffer (strictly
    /// increasing offsets), so handing each worker its own `MatMut` is safe;
    /// we materialize that disjointness with `split_at_mut` chains.
    pub fn for_each_mut<F>(&mut self, parallel: bool, f: F)
    where
        F: Fn(usize, MatMut<'_>) + Sync + Send,
    {
        let slices = split_disjoint(&mut self.buf, &self.offsets);
        let rows = &self.rows;
        let cols = &self.cols;
        let run = |(i, s): (usize, &mut [f64])| {
            let m = MatMut::from_parts(rows[i], cols[i], rows[i].max(1), s);
            f(i, m);
        };
        if parallel {
            slices.into_par_iter().enumerate().for_each(run);
        } else {
            slices.into_iter().enumerate().for_each(run);
        }
    }

    /// Visit every entry immutably with an index, in parallel when requested,
    /// collecting results in entry order.
    pub fn map<R, F>(&self, parallel: bool, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, MatRef<'_>) -> R + Sync + Send,
    {
        if parallel {
            (0..self.count())
                .into_par_iter()
                .map(|i| f(i, self.mat(i)))
                .collect()
        } else {
            (0..self.count()).map(|i| f(i, self.mat(i))).collect()
        }
    }

    /// Cost-aware variant of [`VarBatch::for_each_mut`]: entries are
    /// grouped into contiguous chunks of roughly equal total `cost`
    /// ([`cost_chunk_bounds`], ~4 chunks per thread so the work-stealing
    /// pool can balance the residual skew), and each chunk runs as one
    /// parallel task. Entry visit order within a chunk is ascending, so
    /// side effects on disjoint targets behave exactly like `for_each_mut`.
    pub fn for_each_mut_costed<F, C>(&mut self, parallel: bool, cost: C, f: F)
    where
        F: Fn(usize, MatMut<'_>) + Sync + Send,
        C: Fn(usize) -> f64,
    {
        if !parallel || self.count() < 2 {
            self.for_each_mut(false, f);
            return;
        }
        let n = self.count();
        let parts = (rayon::current_num_threads() * 4).min(n);
        let bounds = cost_chunk_bounds(n, parts, cost);
        let rows = &self.rows;
        let cols = &self.cols;
        let mut slices = split_disjoint(&mut self.buf, &self.offsets).into_iter();
        let mut chunks: Vec<(usize, Vec<&mut [f64]>)> = Vec::with_capacity(parts);
        for d in 0..parts {
            let (b, e) = (bounds[d], bounds[d + 1]);
            if e > b {
                chunks.push((b, slices.by_ref().take(e - b).collect()));
            }
        }
        let f = &f;
        chunks.into_par_iter().for_each(move |(start, chunk)| {
            for (k, s) in chunk.into_iter().enumerate() {
                let i = start + k;
                f(i, MatMut::from_parts(rows[i], cols[i], rows[i].max(1), s));
            }
        });
    }

    /// Split the batch into one mutable matrix view per entry. The views
    /// alias disjoint sub-slices of the shared buffer, so they can be moved
    /// to different worker threads — the handle the sharded dispatch path
    /// uses to give each virtual device its contiguous chunk of entries.
    pub fn split_mut(&mut self) -> Vec<MatMut<'_>> {
        let rows = &self.rows;
        let cols = &self.cols;
        split_disjoint(&mut self.buf, &self.offsets)
            .into_iter()
            .enumerate()
            .map(|(i, s)| MatMut::from_parts(rows[i], cols[i], rows[i].max(1), s))
            .collect()
    }

    /// Zip two batches (same count) and visit `(i, a_i, b_i_mut)`.
    pub fn zip_for_each_mut<F>(&mut self, other: &VarBatch, parallel: bool, f: F)
    where
        F: Fn(usize, MatRef<'_>, MatMut<'_>) + Sync + Send,
    {
        assert_eq!(self.count(), other.count(), "zip: batch count mismatch");
        let slices = split_disjoint(&mut self.buf, &self.offsets);
        let rows = &self.rows;
        let cols = &self.cols;
        let run = |(i, s): (usize, &mut [f64])| {
            let m = MatMut::from_parts(rows[i], cols[i], rows[i].max(1), s);
            f(i, other.mat(i), m);
        };
        if parallel {
            slices.into_par_iter().enumerate().for_each(run);
        } else {
            slices.into_iter().enumerate().for_each(run);
        }
    }
}

/// Split `buf` into the disjoint per-entry sub-slices described by
/// `offsets` (exclusive prefix sum, last element = total length).
fn split_disjoint<'a>(buf: &'a mut [f64], offsets: &[usize]) -> Vec<&'a mut [f64]> {
    let count = offsets.len() - 1;
    let mut out = Vec::with_capacity(count);
    let mut rest = buf;
    let mut consumed = 0usize;
    for i in 0..count {
        let len = offsets[i + 1] - offsets[i];
        let (head, tail) = rest.split_at_mut(len);
        debug_assert_eq!(offsets[i], consumed);
        consumed += len;
        out.push(head);
        rest = tail;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_matches_prefix_sum() {
        let b = VarBatch::zeros(vec![2, 3, 0, 1], vec![4, 2, 5, 1]);
        assert_eq!(b.count(), 4);
        assert_eq!(b.total_len(), 8 + 6 + 1);
        assert_eq!(b.mat(1).rows(), 3);
        assert_eq!(b.mat(2).cols(), 5);
    }

    #[test]
    fn entries_are_independent() {
        let mut b = VarBatch::zeros_uniform_cols(vec![2, 3], 2);
        b.mat_mut(0).fill(1.0);
        b.mat_mut(1).fill(2.0);
        assert_eq!(b.mat(0).at(1, 1), 1.0);
        assert_eq!(b.mat(1).at(2, 0), 2.0);
    }

    #[test]
    fn parallel_for_each_writes_all() {
        let mut b = VarBatch::zeros_uniform_cols(vec![3; 64], 2);
        b.for_each_mut(true, |i, mut m| m.fill(i as f64));
        for i in 0..64 {
            assert_eq!(b.mat(i).at(2, 1), i as f64);
        }
    }

    #[test]
    fn map_collects_in_order() {
        let mut b = VarBatch::zeros_uniform_cols(vec![1, 2, 3], 1);
        b.for_each_mut(false, |i, mut m| m.fill((i + 1) as f64));
        let sums: Vec<f64> = b.map(true, |_, m| m.col(0).iter().sum());
        assert_eq!(sums, vec![1.0, 4.0, 9.0]);
    }

    #[test]
    fn zero_sized_entries_ok() {
        let mut b = VarBatch::zeros(vec![0, 2, 0], vec![3, 2, 0]);
        b.for_each_mut(true, |_, mut m| m.fill(7.0));
        assert_eq!(b.mat(0).rows(), 0);
        assert_eq!(b.mat(1).at(0, 0), 7.0);
    }

    #[test]
    fn cost_bounds_cover_and_balance() {
        // Uniform costs reduce to near-count chunking.
        let b = cost_chunk_bounds(12, 3, |_| 1.0);
        assert_eq!(b, vec![0, 4, 8, 12]);
        // One huge entry gets a chunk of its own.
        let costs = [1.0, 1.0, 100.0, 1.0, 1.0, 1.0];
        let b = cost_chunk_bounds(6, 3, |i| costs[i]);
        assert_eq!(b[0], 0);
        assert_eq!(b[3], 6);
        for d in 0..3 {
            assert!(b[d] <= b[d + 1]);
        }
        // The chunk holding entry 2 must be narrow: the huge entry is not
        // bundled with the whole tail.
        let owner = (0..3).find(|&d| b[d] <= 2 && 2 < b[d + 1]).unwrap();
        assert!(
            b[owner + 1] - b[owner] <= 3,
            "huge entry bundled into chunk {:?}",
            &b
        );
    }

    #[test]
    fn cost_bounds_zero_costs_fall_back_to_count() {
        let b = cost_chunk_bounds(10, 3, |_| 0.0);
        assert_eq!(b, crate::shard::chunk_bounds(10, 3));
        let b = cost_chunk_bounds(0, 4, |_| 1.0);
        assert_eq!(*b.last().unwrap(), 0);
    }

    #[test]
    fn costed_for_each_visits_every_entry() {
        let rows: Vec<usize> = (0..97).map(|i| 1 + (i * 13) % 40).collect();
        let mut b = VarBatch::zeros_uniform_cols(rows.clone(), 2);
        b.for_each_mut_costed(
            true,
            |i| (rows[i] * 2) as f64,
            |i, mut m| m.fill(i as f64 + 1.0),
        );
        for i in 0..97 {
            assert_eq!(b.mat(i).at(rows[i] - 1, 1), i as f64 + 1.0);
        }
    }

    #[test]
    fn zip_reads_other_batch() {
        let mut a = VarBatch::zeros_uniform_cols(vec![2, 2], 2);
        let mut b = VarBatch::zeros_uniform_cols(vec![2, 2], 2);
        a.for_each_mut(false, |i, mut m| m.fill((i + 1) as f64));
        b.zip_for_each_mut(&a, false, |_, src, mut dst| {
            dst.axpy(2.0, src);
        });
        assert_eq!(b.mat(1).at(0, 0), 4.0);
    }
}
