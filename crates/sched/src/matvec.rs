//! Device-sharded H2 matvec: the three-pass algorithm executed level by
//! level over contiguous node chunks on the fabric, with per-device partial
//! outputs and explicit transfers.
//!
//! Phase mapping (§IV.A chunking, §IV.B communication):
//!
//! * **upsweep** — each level's nodes shard by [`h2_runtime::owner`]; a
//!   parent whose second child lives across a chunk boundary reads that
//!   child's `x̂` through a [`TransferKind::ChildGather`] (the matvec
//!   analogue of the line-24 sibling merge);
//! * **coupling** — rows shard per level; reading the `x̂_t` of an
//!   off-device partner is a [`TransferKind::OmegaFetch`], deduplicated per
//!   `(device, partner)` per level exactly like the construction's `Ω_b`
//!   fetches;
//! * **downsweep** — children shard per level; a child on a different
//!   device than its parent reads the parent's `ŷ` partial sum
//!   ([`TransferKind::PartialSum`]);
//! * **leaves** — leaf row ranges are disjoint, so the per-device partial
//!   outputs assemble into `y` without a reduction.
//!
//! ## Pipelined schedule
//!
//! On a [`h2_runtime::PipelineMode::Pipelined`] fabric the same arithmetic
//! runs under an overlapped schedule:
//!
//! * upsweep child-gather descriptors are **issued one level ahead** (their
//!   predicate depends only on basis shapes), so the virtual copies for
//!   level *l* run behind level *l+1*'s compute; the level-*l* jobs are
//!   gated on the tickets instead of a synchronous service;
//! * the **coupling products of all levels run in one flush scope**: every
//!   level's `x̂_t` fetches are prefetched up front, per-device jobs for
//!   every level are enqueued on the ordered queues, and a single barrier
//!   closes the phase — a device that finishes level *l* immediately starts
//!   level *l+1* instead of idling at a per-level join. The phase closes as
//!   one epoch, so the makespan projection sees `max_dev Σ_levels` instead
//!   of `Σ_levels max_dev`;
//! * downsweep partial-sum descriptors are data-dependent (a parent's `ŷ`
//!   may be empty), so they are issued at their own level — still as
//!   prefetches the level's jobs are gated on.
//!
//! Per-device queue order plus per-level job granularity keeps the
//! floating-point accumulation order identical to the synchronous schedule,
//! so outputs are bit-identical — the property the pipeline tests assert.
//!
//! The global input `x` (and the stored blocks) are treated as
//! device-resident, consistent with the simulator treating the generator
//! and initial sample scatter as free — only `x̂`/`ŷ` movement counts.

use crate::fabric::{DeviceFabric, ExecReport};
use h2_dense::Mat;
use h2_matrix::H2Matrix;
use h2_runtime::multidev::cost;
use h2_runtime::{chunk_bounds, owner, PipelineMode, ShardJob, Transfer, TransferKind};
use std::collections::HashSet;

/// `y = K x` (or `Kᵀ x`) executed sharded on the fabric, in tree-permuted
/// coordinates. Numerically identical to [`H2Matrix::apply_permuted`] /
/// `apply_transpose_permuted` — the same [`h2_matrix::ApplyPhases`] kernels
/// run, only the scheduling differs (synchronous fork-join or the
/// pipelined overlap described in the module docs, depending on the
/// fabric's mode).
pub fn shard_matvec(fabric: &DeviceFabric, h2: &H2Matrix, x: &Mat, transpose: bool) -> Mat {
    let n = h2.n();
    assert_eq!(x.rows(), n, "shard_matvec: x rows");
    let d = x.cols();
    let devices = fabric.devices();
    let pipelined = fabric.mode() == PipelineMode::Pipelined;
    let ph = h2.apply_phases(transpose);
    let in_basis = ph.in_basis();
    let out_basis = ph.out_basis();
    let tree = &h2.tree;
    let nnodes = tree.nodes.len();
    let leaf_level = tree.leaf_level();

    // Child-gather descriptors of one upsweep level (predicate is basis
    // shapes only, so these can be issued a level ahead).
    let upsweep_transfers = |l: usize| -> Vec<Transfer> {
        let mut out = Vec::new();
        if l >= leaf_level {
            return out;
        }
        let ids: Vec<usize> = tree.level(l).collect();
        let nl = ids.len();
        let ncl = tree.level_len(l + 1);
        for (local, &id) in ids.iter().enumerate() {
            if in_basis[id].cols() == 0 {
                continue;
            }
            let dev = owner(local, nl, devices);
            let (c1, c2) = tree.nodes[id].children.unwrap();
            for c in [c1, c2] {
                let cdev = owner(tree.local_index(c), ncl, devices);
                if cdev != dev && in_basis[c].cols() > 0 {
                    out.push(Transfer {
                        src: cdev,
                        dst: dev,
                        bytes: cost::fetch_bytes(in_basis[c].cols(), d),
                        kind: TransferKind::ChildGather,
                    });
                }
            }
        }
        out
    };

    // Issue a transfer list as prefetches, grouping the tickets by
    // destination device so only the consuming device's queue gates on
    // each copy.
    let prefetch_by_dev = |ts: Vec<Transfer>| -> Vec<Vec<u64>> {
        let mut by = vec![Vec::new(); devices];
        for t in ts {
            let tk = fabric.prefetch_transfer(t);
            if tk != 0 {
                by[t.dst].push(tk);
            }
        }
        by
    };

    // ---- upward pass: x̂_τ, leaf level first ----
    let mut xhat: Vec<Mat> = vec![Mat::zeros(0, 0); nnodes];
    // Tickets pre-issued for the next level's gathers (pipelined only).
    let mut ahead: Option<(usize, Vec<Vec<u64>>)> = None;
    for l in (0..tree.nlevels()).rev() {
        let ids: Vec<usize> = tree.level(l).collect();
        let nl = ids.len();
        let bounds = chunk_bounds(nl, devices);
        let mut any = false;
        for (local, &id) in ids.iter().enumerate() {
            let v = &in_basis[id];
            if v.cols() == 0 {
                continue;
            }
            any = true;
            let dev = owner(local, nl, devices);
            fabric.record_flops(dev, cost::upsweep_flops(v.rows(), v.cols(), d));
            fabric.arena_charge(dev, v.cols() * d * 8);
        }
        let tickets: Vec<Vec<u64>> = if pipelined {
            match ahead.take() {
                Some((al, tk)) if al == l => tk,
                _ => prefetch_by_dev(upsweep_transfers(l)),
            }
        } else {
            for t in upsweep_transfers(l) {
                fabric.record_transfer(t);
            }
            vec![Vec::new(); devices]
        };
        if !any {
            continue;
        }
        let mut results: Vec<Vec<(usize, Mat)>> = (0..devices).map(|_| Vec::new()).collect();
        {
            let (xhat_ref, ids_ref, ph_ref) = (&xhat, &ids, &ph);
            for (dev, slot) in results.iter_mut().enumerate() {
                let (b, e) = (bounds[dev], bounds[dev + 1]);
                if e > b {
                    fabric.record_launches(dev, 1);
                }
                let job: ShardJob<'_> = Box::new(move || {
                    for local in b..e {
                        let id = ids_ref[local];
                        if let Some(m) = ph_ref.upsweep_node(id, x.rf(), xhat_ref) {
                            slot.push((id, m));
                        }
                    }
                });
                // SAFETY: flushed below before `results`/`xhat` borrows end.
                unsafe { fabric.enqueue(dev, &tickets[dev], job) };
            }
            // Issue the next level's gathers while this level computes.
            if pipelined && l > 0 {
                ahead = Some((l - 1, prefetch_by_dev(upsweep_transfers(l - 1))));
            }
            fabric.flush();
        }
        for (id, m) in results.into_iter().flatten() {
            xhat[id] = m;
        }
        fabric.close_epoch(&format!("matvec upsweep L{l}"));
    }

    // ---- coupling products per level: ŷ_s = Σ_t op(B) x̂_t ----
    let mut yhat: Vec<Mat> = vec![Mat::zeros(0, 0); nnodes];
    if pipelined {
        // All levels in one flush scope: prefetch every level's fetches up
        // front, enqueue every level's per-device jobs on the ordered
        // queues, barrier once. Levels only read the completed `xhat`, and
        // each level's output nodes are disjoint, so per-device FIFO order
        // reproduces the synchronous arithmetic exactly.
        struct LevelPlan {
            ids: Vec<usize>,
            bounds: Vec<usize>,
            /// Fetch tickets grouped by destination device.
            tickets: Vec<Vec<u64>>,
            /// Per-device workspace bytes of this level (outputs + fetches).
            arena: Vec<usize>,
        }
        let mut plans: Vec<LevelPlan> = Vec::new();
        for l in 0..tree.nlevels() {
            let ids: Vec<usize> = tree.level(l).collect();
            let nl = ids.len();
            let bounds = chunk_bounds(nl, devices);
            let mut any = false;
            let mut fetched: HashSet<(usize, usize)> = HashSet::new();
            let mut tickets: Vec<Vec<u64>> = vec![Vec::new(); devices];
            let mut arena = vec![0usize; devices];
            for (local, &s) in ids.iter().enumerate() {
                if h2.partition.far_of[s].is_empty() {
                    continue;
                }
                any = true;
                let dev = owner(local, nl, devices);
                let ks = out_basis[s].cols();
                arena[dev] += ks * d * 8;
                for &t in &h2.partition.far_of[s] {
                    let kt = in_basis[t].cols();
                    if ks == 0 || kt == 0 {
                        continue;
                    }
                    fabric.record_flops(dev, cost::bsr_flops(ks, kt, d));
                    let tdev = owner(tree.local_index(t), nl, devices);
                    if tdev != dev && fetched.insert((dev, t)) {
                        let bytes = cost::fetch_bytes(kt, d);
                        let tk = fabric.prefetch_transfer(Transfer {
                            src: tdev,
                            dst: dev,
                            bytes,
                            kind: TransferKind::OmegaFetch,
                        });
                        if tk != 0 {
                            tickets[dev].push(tk);
                        }
                        arena[dev] += bytes as usize;
                    }
                }
            }
            if any {
                plans.push(LevelPlan {
                    ids,
                    bounds,
                    tickets,
                    arena,
                });
            }
        }
        // Double-buffered workspace discipline across the merged phase: a
        // device's level-l workspace is dead once its level-l job drains,
        // while level l+1's is already marshaled — so the live peak per
        // device is the largest *adjacent pair* of level workspaces, not
        // the sum over all levels.
        for dev in 0..devices {
            let peak = (0..plans.len())
                .map(|i| plans[i].arena[dev] + plans.get(i + 1).map(|p| p.arena[dev]).unwrap_or(0))
                .max()
                .unwrap_or(0);
            if peak > 0 {
                fabric.arena_charge(dev, peak);
            }
        }
        let mut results: Vec<Vec<Vec<(usize, Mat)>>> = plans
            .iter()
            .map(|_| (0..devices).map(|_| Vec::new()).collect())
            .collect();
        {
            let (xhat_ref, ph_ref) = (&xhat, &ph);
            for (plan, res) in plans.iter().zip(results.iter_mut()) {
                for (dev, slot) in res.iter_mut().enumerate() {
                    let (b, e) = (plan.bounds[dev], plan.bounds[dev + 1]);
                    if e > b {
                        fabric.record_launches(dev, 1);
                    }
                    let ids_ref = &plan.ids;
                    let job: ShardJob<'_> = Box::new(move || {
                        for local in b..e {
                            let s = ids_ref[local];
                            if let Some(m) = ph_ref.coupling_node(s, xhat_ref, d) {
                                slot.push((s, m));
                            }
                        }
                    });
                    // SAFETY: flushed below before `results`/`plans` drop.
                    unsafe { fabric.enqueue(dev, &plan.tickets[dev], job) };
                }
            }
            fabric.flush();
        }
        for res in results {
            for (s, m) in res.into_iter().flatten() {
                yhat[s] = m;
            }
        }
        fabric.close_epoch("matvec coupling (overlapped)");
    } else {
        for l in 0..tree.nlevels() {
            let ids: Vec<usize> = tree.level(l).collect();
            let nl = ids.len();
            let bounds = chunk_bounds(nl, devices);
            let mut any = false;
            let mut fetched: HashSet<(usize, usize)> = HashSet::new();
            for (local, &s) in ids.iter().enumerate() {
                if h2.partition.far_of[s].is_empty() {
                    continue;
                }
                any = true;
                let dev = owner(local, nl, devices);
                let ks = out_basis[s].cols();
                fabric.arena_charge(dev, ks * d * 8);
                for &t in &h2.partition.far_of[s] {
                    let kt = in_basis[t].cols();
                    if ks == 0 || kt == 0 {
                        continue;
                    }
                    fabric.record_flops(dev, cost::bsr_flops(ks, kt, d));
                    let tdev = owner(tree.local_index(t), nl, devices);
                    if tdev != dev && fetched.insert((dev, t)) {
                        let bytes = cost::fetch_bytes(kt, d);
                        fabric.record_transfer(Transfer {
                            src: tdev,
                            dst: dev,
                            bytes,
                            kind: TransferKind::OmegaFetch,
                        });
                        fabric.arena_charge(dev, bytes as usize);
                    }
                }
            }
            if !any {
                continue;
            }
            let mut results: Vec<Vec<(usize, Mat)>> = (0..devices).map(|_| Vec::new()).collect();
            {
                let (xhat_ref, ids_ref, ph_ref) = (&xhat, &ids, &ph);
                let mut jobs: Vec<ShardJob<'_>> = Vec::with_capacity(devices);
                for (dev, slot) in results.iter_mut().enumerate() {
                    let (b, e) = (bounds[dev], bounds[dev + 1]);
                    if e > b {
                        fabric.record_launches(dev, 1);
                    }
                    jobs.push(Box::new(move || {
                        for local in b..e {
                            let s = ids_ref[local];
                            if let Some(m) = ph_ref.coupling_node(s, xhat_ref, d) {
                                slot.push((s, m));
                            }
                        }
                    }));
                }
                fabric.run_jobs(jobs);
            }
            for (s, m) in results.into_iter().flatten() {
                yhat[s] = m;
            }
            fabric.close_epoch(&format!("matvec coupling L{l}"));
        }
    }

    // ---- downward pass: children read the parent's ŷ partial sum ----
    for l in 0..leaf_level {
        let ids: Vec<usize> = tree.level(l + 1).collect();
        let nl = ids.len();
        let np = tree.level_len(l);
        let bounds = chunk_bounds(nl, devices);
        let mut any = false;
        let mut tickets: Vec<Vec<u64>> = vec![Vec::new(); devices];
        for (local, &child) in ids.iter().enumerate() {
            let Some(parent) = tree.nodes[child].parent else {
                continue;
            };
            if yhat[parent].rows() == 0
                || out_basis[parent].cols() == 0
                || out_basis[child].cols() == 0
            {
                continue;
            }
            any = true;
            let dev = owner(local, nl, devices);
            let kp = out_basis[parent].cols();
            fabric.record_flops(dev, cost::upsweep_flops(out_basis[child].cols(), kp, d));
            let pdev = owner(tree.local_index(parent), np, devices);
            if pdev != dev {
                let t = Transfer {
                    src: pdev,
                    dst: dev,
                    bytes: cost::fetch_bytes(kp, d),
                    kind: TransferKind::PartialSum,
                };
                if pipelined {
                    // Data-dependent predicate (the parent's partial sum
                    // must exist), so issue at this level — still an async
                    // prefetch the consuming device's jobs are gated on.
                    let tk = fabric.prefetch_transfer(t);
                    if tk != 0 {
                        tickets[dev].push(tk);
                    }
                } else {
                    fabric.record_transfer(t);
                }
            }
        }
        if !any {
            continue;
        }
        let mut results: Vec<Vec<(usize, Mat)>> = (0..devices).map(|_| Vec::new()).collect();
        {
            let (yhat_ref, ids_ref, ph_ref) = (&yhat, &ids, &ph);
            for (dev, slot) in results.iter_mut().enumerate() {
                let (b, e) = (bounds[dev], bounds[dev + 1]);
                if e > b {
                    fabric.record_launches(dev, 1);
                }
                let job: ShardJob<'_> = Box::new(move || {
                    for local in b..e {
                        let child = ids_ref[local];
                        if let Some(m) = ph_ref.downsweep_child(child, yhat_ref, d) {
                            slot.push((child, m));
                        }
                    }
                });
                // SAFETY: flushed below before `results`/`yhat` borrows end.
                unsafe { fabric.enqueue(dev, &tickets[dev], job) };
            }
            fabric.flush();
        }
        for (child, m) in results.into_iter().flatten() {
            if yhat[child].rows() == 0 {
                yhat[child] = m;
            } else {
                yhat[child].axpy(1.0, &m);
            }
        }
        fabric.close_epoch(&format!("matvec downsweep L{}", l + 1));
    }

    // ---- leaf expansion + dense near field: disjoint per-device partial
    // outputs, assembled without reduction ----
    let ids: Vec<usize> = tree.level(leaf_level).collect();
    let nl = ids.len();
    let bounds = chunk_bounds(nl, devices);
    for (local, &s) in ids.iter().enumerate() {
        let dev = owner(local, nl, devices);
        let (b, e) = tree.range(s);
        fabric.arena_charge(dev, (e - b) * d * 8);
        if yhat[s].rows() > 0 && out_basis[s].cols() > 0 {
            fabric.record_flops(dev, cost::upsweep_flops(e - b, out_basis[s].cols(), d));
        }
        for &t in &h2.partition.near_of[s] {
            let (tb, te) = tree.range(t);
            fabric.record_flops(dev, cost::bsr_flops(e - b, te - tb, d));
        }
    }
    let mut y = Mat::zeros(n, d);
    let mut results: Vec<Vec<(usize, Mat)>> = (0..devices).map(|_| Vec::new()).collect();
    {
        let (yhat_ref, ids_ref, ph_ref) = (&yhat, &ids, &ph);
        let mut jobs: Vec<ShardJob<'_>> = Vec::with_capacity(devices);
        for (dev, slot) in results.iter_mut().enumerate() {
            let (b, e) = (bounds[dev], bounds[dev + 1]);
            if e > b {
                fabric.record_launches(dev, 1);
            }
            jobs.push(Box::new(move || {
                for local in b..e {
                    let s = ids_ref[local];
                    slot.push(ph_ref.leaf_node(s, x.rf(), yhat_ref));
                }
            }));
        }
        fabric.run_jobs(jobs);
    }
    for (b, m) in results.into_iter().flatten() {
        y.view_mut(b, 0, m.rows(), d).copy_from(m.rf());
    }
    fabric.close_epoch("matvec leaves");
    y
}

/// [`shard_matvec`] with a fresh accounting scope: resets the fabric, runs,
/// and returns the result together with the execution report.
pub fn shard_matvec_with_report(
    fabric: &DeviceFabric,
    h2: &H2Matrix,
    x: &Mat,
    transpose: bool,
) -> (Mat, ExecReport) {
    fabric.reset();
    let y = shard_matvec(fabric, h2, x, transpose);
    (y, fabric.report("matvec tail"))
}
