//! Triangular solves (BLAS `trsm`-style) for the handful of variants the
//! workspace needs: interpolation-matrix computation (`R1^{-1} R2`),
//! Cholesky-based frontal elimination, and LU back-substitution.

use crate::mat::{MatMut, MatRef};

/// Which triangle of the coefficient matrix holds the data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Triangle {
    Lower,
    Upper,
}

/// Whether the triangular matrix has an implicit unit diagonal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Diag {
    NonUnit,
    Unit,
}

/// Solve `T X = B` in place (`B` overwritten by `X`), `T` `n x n`, `B` `n x k`.
pub fn solve_triangular_left(tri: Triangle, diag: Diag, t: MatRef<'_>, b: &mut MatMut<'_>) {
    let n = t.rows();
    assert_eq!(t.cols(), n, "triangular matrix must be square");
    assert_eq!(b.rows(), n, "rhs row mismatch");
    match tri {
        Triangle::Upper => {
            for j in 0..b.cols() {
                for i in (0..n).rev() {
                    let mut s = b.at(i, j);
                    for l in (i + 1)..n {
                        s -= t.at(i, l) * b.at(l, j);
                    }
                    if diag == Diag::NonUnit {
                        s /= t.at(i, i);
                    }
                    *b.at_mut(i, j) = s;
                }
            }
        }
        Triangle::Lower => {
            for j in 0..b.cols() {
                for i in 0..n {
                    let mut s = b.at(i, j);
                    for l in 0..i {
                        s -= t.at(i, l) * b.at(l, j);
                    }
                    if diag == Diag::NonUnit {
                        s /= t.at(i, i);
                    }
                    *b.at_mut(i, j) = s;
                }
            }
        }
    }
}

/// Solve `X T = B` in place (`B` overwritten by `X`), `T` `n x n`, `B` `k x n`.
pub fn solve_triangular_right(tri: Triangle, diag: Diag, t: MatRef<'_>, b: &mut MatMut<'_>) {
    let n = t.rows();
    assert_eq!(t.cols(), n, "triangular matrix must be square");
    assert_eq!(b.cols(), n, "rhs col mismatch");
    match tri {
        // X U = B  =>  column sweep left-to-right.
        Triangle::Upper => {
            for j in 0..n {
                for l in 0..j {
                    let s = t.at(l, j);
                    if s != 0.0 {
                        for i in 0..b.rows() {
                            let v = b.at(i, l);
                            *b.at_mut(i, j) -= s * v;
                        }
                    }
                }
                if diag == Diag::NonUnit {
                    let d = t.at(j, j);
                    for i in 0..b.rows() {
                        *b.at_mut(i, j) /= d;
                    }
                }
            }
        }
        // X L = B  =>  column sweep right-to-left.
        Triangle::Lower => {
            for j in (0..n).rev() {
                for l in (j + 1)..n {
                    let s = t.at(l, j);
                    if s != 0.0 {
                        for i in 0..b.rows() {
                            let v = b.at(i, l);
                            *b.at_mut(i, j) -= s * v;
                        }
                    }
                }
                if diag == Diag::NonUnit {
                    let d = t.at(j, j);
                    for i in 0..b.rows() {
                        *b.at_mut(i, j) /= d;
                    }
                }
            }
        }
    }
}

/// Solve `T^T X = B` in place.
pub fn solve_triangular_left_transposed(
    tri: Triangle,
    diag: Diag,
    t: MatRef<'_>,
    b: &mut MatMut<'_>,
) {
    let n = t.rows();
    assert_eq!(t.cols(), n);
    assert_eq!(b.rows(), n);
    match tri {
        // U^T is lower triangular.
        Triangle::Upper => {
            for j in 0..b.cols() {
                for i in 0..n {
                    let mut s = b.at(i, j);
                    for l in 0..i {
                        s -= t.at(l, i) * b.at(l, j);
                    }
                    if diag == Diag::NonUnit {
                        s /= t.at(i, i);
                    }
                    *b.at_mut(i, j) = s;
                }
            }
        }
        // L^T is upper triangular.
        Triangle::Lower => {
            for j in 0..b.cols() {
                for i in (0..n).rev() {
                    let mut s = b.at(i, j);
                    for l in (i + 1)..n {
                        s -= t.at(l, i) * b.at(l, j);
                    }
                    if diag == Diag::NonUnit {
                        s /= t.at(i, i);
                    }
                    *b.at_mut(i, j) = s;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul, Op};
    use crate::mat::Mat;
    use crate::rand::gaussian_mat;

    fn well_conditioned_tri(n: usize, tri: Triangle, seed: u64) -> Mat {
        let g = gaussian_mat(n, n, seed);
        Mat::from_fn(n, n, |i, j| {
            let keep = match tri {
                Triangle::Lower => i >= j,
                Triangle::Upper => i <= j,
            };
            if !keep {
                0.0
            } else if i == j {
                3.0 + g[(i, j)].abs()
            } else {
                g[(i, j)] * 0.3
            }
        })
    }

    #[test]
    fn left_solves() {
        for tri in [Triangle::Lower, Triangle::Upper] {
            let t = well_conditioned_tri(6, tri, 1);
            let x0 = gaussian_mat(6, 3, 2);
            let mut b = matmul(Op::NoTrans, Op::NoTrans, t.rf(), x0.rf());
            solve_triangular_left(tri, Diag::NonUnit, t.rf(), &mut b.rm());
            let mut d = b;
            d.axpy(-1.0, &x0);
            assert!(d.norm_max() < 1e-12, "{tri:?}");
        }
    }

    #[test]
    fn right_solves() {
        for tri in [Triangle::Lower, Triangle::Upper] {
            let t = well_conditioned_tri(5, tri, 3);
            let x0 = gaussian_mat(4, 5, 4);
            let mut b = matmul(Op::NoTrans, Op::NoTrans, x0.rf(), t.rf());
            solve_triangular_right(tri, Diag::NonUnit, t.rf(), &mut b.rm());
            let mut d = b;
            d.axpy(-1.0, &x0);
            assert!(d.norm_max() < 1e-12, "{tri:?}");
        }
    }

    #[test]
    fn transposed_left_solves() {
        for tri in [Triangle::Lower, Triangle::Upper] {
            let t = well_conditioned_tri(7, tri, 5);
            let x0 = gaussian_mat(7, 2, 6);
            let mut b = matmul(Op::Trans, Op::NoTrans, t.rf(), x0.rf());
            solve_triangular_left_transposed(tri, Diag::NonUnit, t.rf(), &mut b.rm());
            let mut d = b;
            d.axpy(-1.0, &x0);
            assert!(d.norm_max() < 1e-12, "{tri:?}");
        }
    }

    #[test]
    fn unit_diagonal_ignores_diag_entries() {
        let mut t = well_conditioned_tri(4, Triangle::Lower, 7);
        // Unit solve must not read the stored diagonal.
        for i in 0..4 {
            t[(i, i)] = f64::NAN;
        }
        let tl = Mat::from_fn(4, 4, |i, j| {
            if i == j {
                1.0
            } else if i > j {
                t[(i, j)]
            } else {
                0.0
            }
        });
        let x0 = gaussian_mat(4, 2, 8);
        let mut b = matmul(Op::NoTrans, Op::NoTrans, tl.rf(), x0.rf());
        solve_triangular_left(Triangle::Lower, Diag::Unit, t.rf(), &mut b.rm());
        let mut d = b;
        d.axpy(-1.0, &x0);
        assert!(d.norm_max() < 1e-12);
    }
}
