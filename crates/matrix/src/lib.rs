//! # h2-matrix
//!
//! The side-generic H2 matrix format and its operations:
//!
//! * [`H2Matrix`] — nested bases (leaf `U`, stacked transfers `E`) on a
//!   *row* side plus an optional independent *column* side `V` (absent for
//!   symmetric matrices, where `V_t = U_t` aliases the row side), one
//!   [`BlockStore`] type for coupling/dense blocks in both the
//!   unordered-symmetric and ordered-unsymmetric keying disciplines, and
//!   shared memory/rank statistics,
//! * O(N) [matvec](H2Matrix::apply_permuted) and
//!   [transpose matvec](H2Matrix::apply_transpose_permuted) through one
//!   side-swapping implementation (the fast black-box samplers `K·Ω` and
//!   `Kᵀ·Ψ` of the two sketch streams),
//! * [entry/sub-block extraction](H2Matrix::extract_block) from the
//!   compressed representation (the `batchedGen` input of the low-rank
//!   update experiment),
//! * a [direct proxy-ID constructor](direct::direct_construct) standing in
//!   for H2Opus's entry-based construction (bootstraps reference operators),
//! * [`LowRankUpdate`] — `A + P Qᵀ` operators for the recompression
//!   experiment,
//! * a **storage precision tier**: every basis and coupling/dense block
//!   carries a [`Precision`], and the norm-aware demotion rule
//!   ([`BlockStore::demote_pending`] / [`H2Matrix::demote_level`]) moves a
//!   block to f32 storage only when the f32 rounding error provably stays
//!   below the construction tolerance; demoted blocks are consumed through
//!   the promote-on-pack mixed GEMM (f32 storage, f64 accumulation).
//!
//! [`H2MatrixUnsym`] survives as a type alias: the unsymmetric matrix *is*
//! an [`H2Matrix`] whose column side is stored.

pub mod direct;
pub mod entry;
pub mod format;
pub mod io;
pub mod lowrank;
pub mod matvec;
pub mod orthog;

pub use direct::{direct_construct, fill_blocks, DirectConfig};
pub use format::{BasisSide, BlockStore, H2Matrix, MemoryBreakdown, StoreLayout};
pub use h2_dense::Precision;
pub use lowrank::{LinOpEntry, LowRankUpdate};
pub use matvec::ApplyPhases;

/// An unsymmetric H2 matrix: the unified [`H2Matrix`] with its column side
/// stored (`col.is_some()`) and ordered block stores.
pub type H2MatrixUnsym = H2Matrix;

#[cfg(test)]
mod tests {
    use super::*;
    use h2_dense::{relative_error_2, EntryAccess, LinOp, Mat};
    use h2_kernels::{ExponentialKernel, HelmholtzKernel, KernelMatrix};
    use h2_tree::{Admissibility, ClusterTree, Partition};
    use std::sync::Arc;

    fn setup(
        n: usize,
        leaf: usize,
        eta: f64,
        seed: u64,
    ) -> (
        Arc<ClusterTree>,
        Arc<Partition>,
        KernelMatrix<ExponentialKernel>,
    ) {
        let pts = h2_tree::uniform_cube(n, seed);
        let tree = Arc::new(ClusterTree::build(&pts, leaf));
        let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta }));
        let km = KernelMatrix::new(ExponentialKernel::default(), tree.points.clone());
        (tree, part, km)
    }

    #[test]
    fn direct_construction_approximates_kernel() {
        let (tree, part, km) = setup(600, 32, 0.7, 80);
        let cfg = DirectConfig {
            tol: 1e-8,
            n_proxy: 120,
            ..Default::default()
        };
        let h2 = direct_construct(&km, tree.clone(), part, &cfg);
        h2.validate().unwrap();
        let dense = Mat::from_fn(600, 600, |i, j| km.entry(i, j));
        let rec = h2.to_dense();
        let mut d = rec;
        d.axpy(-1.0, &dense);
        let rel = d.norm_fro() / dense.norm_fro();
        assert!(rel < 1e-6, "direct construction rel error {rel}");
    }

    #[test]
    fn matvec_matches_extraction_and_dense() {
        let (tree, part, km) = setup(500, 16, 0.7, 81);
        let h2 = direct_construct(&km, tree.clone(), part, &DirectConfig::default());
        let x = h2_dense::gaussian_mat(500, 3, 82);
        let y_fast = h2.apply_permuted_mat(&x);
        let dense_h2 = h2.to_dense();
        let y_slow = h2_dense::matmul(
            h2_dense::Op::NoTrans,
            h2_dense::Op::NoTrans,
            dense_h2.rf(),
            x.rf(),
        );
        let mut d = y_fast;
        d.axpy(-1.0, &y_slow);
        // matvec and extraction must agree to machine precision: they read
        // the same representation.
        assert!(
            d.norm_max() < 1e-10 * dense_h2.norm_max().max(1.0),
            "{}",
            d.norm_max()
        );
        // and the representation approximates the kernel
        let e = relative_error_2(&km, &h2, 20, 83);
        assert!(e < 1e-6, "rel err {e}");
    }

    #[test]
    fn helmholtz_direct_construction() {
        let pts = h2_tree::uniform_cube(700, 84);
        let tree = Arc::new(ClusterTree::build(&pts, 32));
        let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
        let km = KernelMatrix::new(HelmholtzKernel::paper(700), tree.points.clone());
        let h2 = direct_construct(&km, tree.clone(), part, &DirectConfig::default());
        h2.validate().unwrap();
        let e = relative_error_2(&km, &h2, 20, 85);
        assert!(e < 1e-6, "rel err {e}");
    }

    #[test]
    fn entry_extraction_exact_on_dense_blocks() {
        let (tree, part, km) = setup(300, 16, 0.7, 86);
        let h2 = direct_construct(&km, tree.clone(), part.clone(), &DirectConfig::default());
        // Near-field entries are stored exactly.
        let leaf = tree.leaf_level();
        let first_leaf = tree.level(leaf).next().unwrap();
        let (b, e) = tree.range(first_leaf);
        for i in b..(b + 3).min(e) {
            for j in b..(b + 3).min(e) {
                assert_eq!(
                    h2.entry(i, j),
                    km.entry(i, j),
                    "diagonal block entries are exact"
                );
            }
        }
    }

    #[test]
    fn entry_extraction_accurate_on_far_blocks() {
        let (tree, part, km) = setup(400, 16, 0.7, 87);
        let h2 = direct_construct(&km, tree.clone(), part.clone(), &DirectConfig::default());
        // Pick an admissible leaf pair and compare extracted entries.
        let leaf = tree.leaf_level();
        let (s, t) = tree
            .level(leaf)
            .flat_map(|s| part.far_of[s].iter().map(move |&t| (s, t)))
            .next()
            .expect("some admissible leaf pair");
        let (sb, _) = tree.range(s);
        let (tb, _) = tree.range(t);
        for i in sb..sb + 3 {
            for j in tb..tb + 3 {
                let got = h2.entry(i, j);
                let want = km.entry(i, j);
                assert!(
                    (got - want).abs() < 1e-6,
                    "entry ({i},{j}): {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn weak_admissibility_hss_pattern_construction() {
        // The same machinery builds an HSS-style approximation with the weak
        // partition (used by the Fig. 6(b) baselines).
        let pts = h2_tree::uniform_cube(300, 88);
        let tree = Arc::new(ClusterTree::build(&pts, 32));
        let part = Arc::new(Partition::build(&tree, Admissibility::Weak));
        let km = KernelMatrix::new(ExponentialKernel { l: 2.0 }, tree.points.clone());
        let cfg = DirectConfig {
            tol: 1e-10,
            n_proxy: 250,
            max_rank: 128,
            seed: 7,
        };
        let h2 = direct_construct(&km, tree.clone(), part, &cfg);
        h2.validate().unwrap();
        let e = relative_error_2(&km, &h2, 20, 89);
        // Weak admissibility on 3D points has large ranks; with a smooth
        // kernel (l=2.0) it should still compress decently.
        assert!(e < 1e-4, "rel err {e}");
    }

    #[test]
    fn memory_grows_linearly() {
        // Compare sizes past the pre-asymptotic regime (at N=1000 the η=0.7
        // partition is still essentially all-dense). 4x the points must cost
        // clearly less than the 16x of a dense representation; the remaining
        // super-linearity is the still-growing sparsity constant.
        let mem_at = |n: usize| {
            let (tree, part, km) = setup(n, 32, 0.7, 90);
            let h2 = direct_construct(&km, tree, part, &DirectConfig::default());
            h2.memory_bytes()
        };
        // Measured: ~66 MB -> ~842 MB (12.8x for 4x points). The extra
        // factor over linear is the sparsity constant still growing toward
        // its η=0.7 geometric saturation (~343 near blocks/row in 3D) plus
        // new coupling levels; dense storage would be 16x. The asymptotic
        // O(N) slope is exercised at bench scale (fig6a harness).
        let m1 = mem_at(4000);
        let m2 = mem_at(16000);
        assert!(m2 < 14 * m1, "memory {m1} -> {m2} is quadratic-like");
    }

    #[test]
    fn lowrank_updated_operator_consistency() {
        let (tree, part, km) = setup(400, 32, 0.7, 91);
        let h2 = direct_construct(&km, tree.clone(), part, &DirectConfig::default());
        let p = h2_dense::gaussian_mat(400, 8, 92);
        let upd = LowRankUpdate::symmetric(&h2, p.clone());
        let x = h2_dense::gaussian_mat(400, 2, 93);
        let y = upd.apply_mat(&x);
        // reference: h2*x + p p^T x
        let mut want = h2.apply_permuted_mat(&x);
        let ptx = h2_dense::matmul(h2_dense::Op::Trans, h2_dense::Op::NoTrans, p.rf(), x.rf());
        h2_dense::gemm(
            h2_dense::Op::NoTrans,
            h2_dense::Op::NoTrans,
            1.0,
            p.rf(),
            ptx.rf(),
            1.0,
            want.rm(),
        );
        let mut d = y;
        d.axpy(-1.0, &want);
        assert!(d.norm_max() < 1e-11);
        // entry consistency
        let e_got = upd.entry(5, 300);
        let mut e_want = h2.entry(5, 300);
        for c in 0..8 {
            e_want += p[(5, c)] * p[(300, c)];
        }
        assert!((e_got - e_want).abs() < 1e-12);
    }

    #[test]
    fn rank_range_reported() {
        // Leaf size 16 keeps the tree deep enough that the eta = 0.7
        // partition has admissible pairs (leaf 32 at this N is all-dense).
        let (tree, part, km) = setup(800, 16, 0.7, 94);
        let h2 = direct_construct(&km, tree, part, &DirectConfig::default());
        assert!(
            h2.partition.top_far_level(&h2.tree).is_some(),
            "test geometry must have admissible pairs"
        );
        let (lo, hi) = h2.rank_range();
        assert!(lo > 0 && hi >= lo && hi <= 256, "rank range ({lo},{hi})");
        let per_level = h2.rank_stats_per_level();
        assert!(per_level.iter().any(|&(_, mx, _)| mx > 0));
    }
}

#[cfg(test)]
mod rank_zero_tests {
    use super::*;
    use h2_dense::Mat;
    use h2_tree::{Admissibility, ClusterTree, Partition};
    use std::sync::Arc;

    /// Regression: nodes can legitimately end up with rank 0 (their whole
    /// far field falls below the truncation threshold). The matvec and
    /// extraction paths must handle rank-0 children of based parents.
    #[test]
    fn rank_zero_children_are_harmless() {
        let pts = h2_tree::uniform_cube(600, 301);
        let tree = Arc::new(ClusterTree::build(&pts, 16));
        let part = Arc::new(Partition::build(&tree, Admissibility::Strong { eta: 0.7 }));
        let km = h2_kernels::KernelMatrix::new(
            h2_kernels::ExponentialKernel { l: 0.01 }, // near-diagonal kernel
            tree.points.clone(),
        );
        // A very loose tolerance forces far-field blocks to vanish -> rank 0.
        let cfg = DirectConfig {
            tol: 0.5,
            n_proxy: 64,
            ..Default::default()
        };
        let mut h2 = direct_construct(&km, tree.clone(), part, &cfg);
        // Inject an explicit rank-0 leaf under a based parent to pin the
        // exact failure mode regardless of what the constructor produced.
        let leaf = tree.level(tree.leaf_level()).find(|&id| {
            tree.nodes[id]
                .parent
                .map(|p| h2.rank(p) > 0)
                .unwrap_or(false)
        });
        if let Some(leaf) = leaf {
            let parent = tree.nodes[leaf].parent.unwrap();
            let (c1, c2) = tree.nodes[parent].children.unwrap();
            let sibling = if leaf == c1 { c2 } else { c1 };
            // Zero out this leaf's basis; shrink the parent transfer to the
            // sibling's rows only.
            let k_sib = h2.rank(sibling);
            let k_par = h2.rank(parent);
            h2.basis[leaf] = Mat::zeros(tree.nodes[leaf].len(), 0);
            h2.skel[leaf] = Vec::new();
            let old = h2.basis[parent].clone();
            let off = if leaf == c1 { old.rows() - k_sib } else { 0 };
            h2.basis[parent] = old.view(off, 0, k_sib, k_par).to_mat();
            // Coupling blocks touching the rank-0 leaf become zero-dim,
            // exactly as the sketching constructor would produce them.
            let mut store = BlockStore::new();
            for i in 0..h2.coupling.pairs.len() {
                let (s, t) = h2.coupling.pairs[i];
                if s == leaf || t == leaf {
                    let r = if s == leaf {
                        0
                    } else {
                        h2.coupling.blocks[i].rows()
                    };
                    let c = if t == leaf {
                        0
                    } else {
                        h2.coupling.blocks[i].cols()
                    };
                    store.insert(s, t, Mat::zeros(r, c));
                } else {
                    store.insert(s, t, h2.coupling.blocks[i].clone());
                }
            }
            h2.coupling = store;
        }
        // These must not panic, whatever the rank pattern:
        let x = h2_dense::gaussian_mat(600, 2, 302);
        let y = h2.apply_permuted_mat(&x);
        assert!(y.norm_fro().is_finite());
        let rows: Vec<usize> = (0..600).step_by(37).collect();
        let b = h2.extract_block(&rows, &rows);
        assert!(b.norm_fro().is_finite());
    }
}
